//! Monitor suites: goal and subgoal monitors bound to architecture
//! locations (thesis Table 5.3).

use crate::correlate::{CorrelationReport, CorrelationRow, SubgoalStats};
use crate::violation::{IntervalTracker, ViolationInterval};
use esafe_logic::{
    CompiledMonitor, CompiledProgram, EvalError, Expr, Frame, FrameBatch, FrameTrace, FusedSuite,
    FusedSuiteBatch, FusedSuiteProgram, SignalTable,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Where in the architecture a monitor runs (e.g. `Vehicle`, `Arbiter`,
/// `CA`). Purely a label; the state samples are shared.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Location(String);

impl Location {
    /// Creates a location label.
    pub fn new(name: impl Into<String>) -> Self {
        Location(name.into())
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Location {
    fn from(s: &str) -> Self {
        Location::new(s)
    }
}

/// An evaluation error raised by a specific monitor in a suite.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorError {
    /// The failing monitor's id.
    pub monitor_id: String,
    /// The underlying evaluation error.
    pub source: EvalError,
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monitor `{}`: {}", self.monitor_id, self.source)
    }
}

impl std::error::Error for MonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A monitor's immutable identity — id, place in the goal hierarchy,
/// architecture location, source formula. Shared by `Arc` between a
/// suite's entries and the [`SuiteTemplate`] they were instantiated
/// from, so stamping out a suite clones no strings.
#[derive(Debug)]
struct EntryMeta {
    id: String,
    parent: Option<String>,
    location: Location,
    expr: Expr,
}

#[derive(Debug, Clone)]
struct Entry {
    meta: Arc<EntryMeta>,
    tracker: IntervalTracker,
}

/// How a suite evaluates its monitors each tick.
///
/// Both engines produce identical verdicts on error-free frames (pinned
/// by property tests and the workspace's golden sweeps); they differ
/// only in cost:
///
/// * `PerMonitor` — one [`CompiledMonitor`] per entry, each re-walking
///   its own expression tree. This is what incremental suite authoring
///   ([`MonitorSuite::add_goal`]) builds, and the reference engine the
///   fused path is tested against.
/// * `Fused` — the whole suite as one [`FusedSuite`]: a deduplicated
///   DAG in which every shared subformula is evaluated once per tick.
///   Stamped out by [`SuiteTemplate::instantiate`].
#[derive(Debug, Clone)]
enum Engine {
    /// Index-aligned with the suite's entries.
    PerMonitor(Vec<CompiledMonitor>),
    /// Roots index-aligned with the suite's entries.
    Fused(FusedSuite),
}

/// A set of goal and subgoal monitors fed from a shared [`Frame`] stream.
///
/// The suite is bound to one [`SignalTable`] at construction; every goal
/// formula is compiled against it
/// ([`CompiledMonitor::compile_in`]), so all variable references resolve
/// to [`SignalId`](esafe_logic::SignalId)s once and
/// [`MonitorSuite::observe`] is pure id-indexed slot access. A suite
/// instantiated from a [`SuiteTemplate`] runs *fused*: one deduplicated
/// DAG evaluates every monitor in a single pass per tick (see
/// [`FusedSuiteProgram`]).
///
/// Goals are top-level entries; subgoals name their parent goal. After the
/// run, [`MonitorSuite::correlate`] produces the hit / false-positive /
/// false-negative classification of §5.1.2.
#[derive(Debug, Clone)]
pub struct MonitorSuite {
    table: Arc<SignalTable>,
    entries: Vec<Entry>,
    engine: Engine,
}

impl MonitorSuite {
    /// Creates an empty suite over the given signal namespace.
    pub fn new(table: Arc<SignalTable>) -> Self {
        MonitorSuite {
            table,
            entries: Vec::new(),
            engine: Engine::PerMonitor(Vec::new()),
        }
    }

    /// The signal namespace the suite's monitors are compiled against.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Adds a system-level goal monitor.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if the goal contains future operators or
    /// references a signal outside the suite's table.
    pub fn add_goal(
        &mut self,
        id: impl Into<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        self.add_entry(id.into(), None, location, expr)
    }

    /// Adds a subgoal monitor under the parent goal `parent_id`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if the goal contains future operators or
    /// references a signal outside the suite's table.
    ///
    /// # Panics
    ///
    /// Panics if `parent_id` has not been added yet — the hierarchy is
    /// declared top-down.
    pub fn add_subgoal(
        &mut self,
        id: impl Into<String>,
        parent_id: impl Into<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        let parent_id = parent_id.into();
        assert!(
            self.entries
                .iter()
                .any(|e| e.meta.parent.is_none() && e.meta.id == parent_id),
            "parent goal `{parent_id}` must be added before its subgoals"
        );
        self.add_entry(id.into(), Some(parent_id), location, expr)
    }

    fn add_entry(
        &mut self,
        id: String,
        parent: Option<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        let Engine::PerMonitor(monitors) = &mut self.engine else {
            panic!(
                "cannot add monitors to a fused suite; author the suite \
                 per-monitor and fuse it via `template().instantiate()`"
            );
        };
        monitors.push(CompiledMonitor::compile_in(&expr, &self.table)?);
        self.entries.push(Entry {
            meta: Arc::new(EntryMeta {
                id,
                parent,
                location,
                expr,
            }),
            tracker: IntervalTracker::new(),
        });
        Ok(())
    }

    /// Whether the suite evaluates through the fused suite-level DAG
    /// (template-instantiated) rather than one monitor at a time.
    pub fn is_fused(&self) -> bool {
        matches!(self.engine, Engine::Fused(_))
    }

    /// Extracts the suite's compile-once artifacts as a
    /// [`SuiteTemplate`]: one shared `(meta, program)` pair per monitor
    /// **plus** the suite-level [`FusedSuiteProgram`] merging every
    /// formula into one deduplicated DAG. Building the template is the
    /// once-per-sweep compile point; stamping suites from it is
    /// O(monitors).
    pub fn template(&self) -> SuiteTemplate {
        let entries: Vec<TemplateEntry> = match &self.engine {
            Engine::PerMonitor(monitors) => self
                .entries
                .iter()
                .zip(monitors)
                .map(|(e, m)| TemplateEntry {
                    meta: Arc::clone(&e.meta),
                    program: Arc::clone(m.program()),
                })
                .collect(),
            Engine::Fused(_) => self
                .entries
                .iter()
                .map(|e| TemplateEntry {
                    meta: Arc::clone(&e.meta),
                    program: Arc::new(
                        CompiledProgram::compile(&e.meta.expr, &self.table)
                            .expect("formula compiled when the suite was built"),
                    ),
                })
                .collect(),
        };
        let fused = match &self.engine {
            Engine::Fused(f) => Arc::clone(f.program()),
            Engine::PerMonitor(_) => {
                let exprs: Vec<Expr> = self.entries.iter().map(|e| e.meta.expr.clone()).collect();
                Arc::new(
                    FusedSuiteProgram::compile(&exprs, &self.table)
                        .expect("every formula compiled per-monitor when the suite was built"),
                )
            }
        };
        SuiteTemplate {
            table: self.table.clone(),
            entries,
            fused,
        }
    }

    /// Returns every monitor to its pre-run state: compiled programs are
    /// kept, monitor history and recorded intervals are cleared in place
    /// (retaining buffer capacity). A reset suite is observationally
    /// identical to a freshly instantiated one — the property run-context
    /// pooling relies on.
    pub fn reset(&mut self) {
        match &mut self.engine {
            Engine::PerMonitor(monitors) => {
                for m in monitors {
                    m.reset();
                }
            }
            Engine::Fused(f) => f.reset(),
        }
        for e in &mut self.entries {
            e.tracker.reset();
        }
    }

    /// Feeds one frame to every monitor — the per-tick hot path: no
    /// string lookups, no allocation, one table identity check for the
    /// whole suite. A fused suite makes a single pass over the
    /// deduplicated DAG and then records one verdict per entry.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] naming the failing monitor.
    ///
    /// # Panics
    ///
    /// Panics if `frame` indexes a different table than the suite is
    /// bound to.
    pub fn observe(&mut self, frame: &Frame) -> Result<(), MonitorError> {
        assert!(
            Arc::ptr_eq(frame.table(), &self.table),
            "frame and suite must share one signal table"
        );
        match &mut self.engine {
            Engine::PerMonitor(monitors) => {
                for (e, m) in self.entries.iter_mut().zip(monitors) {
                    let ok = m.observe_trusted(frame).map_err(|err| MonitorError {
                        monitor_id: e.meta.id.clone(),
                        source: err,
                    })?;
                    e.tracker.record(ok);
                }
            }
            Engine::Fused(fused) => {
                fused.observe(frame).map_err(|err| MonitorError {
                    monitor_id: self.entries[err.monitor].meta.id.clone(),
                    source: err.source,
                })?;
                for (i, e) in self.entries.iter_mut().enumerate() {
                    e.tracker.record(fused.verdict(i));
                }
            }
        }
        Ok(())
    }

    /// Replays a recorded [`FrameTrace`] from a clean start: the suite
    /// is [`reset`](MonitorSuite::reset), fed every sample, and
    /// [`finish`](MonitorSuite::finish)ed — the offline re-monitoring
    /// path. Recordings captured from a live run (see the harness's
    /// frame-recording experiment option) can be re-monitored with a
    /// *different* goal suite without re-simulating, as long as both
    /// suites share the trace's signal table.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] naming the failing monitor.
    ///
    /// # Panics
    ///
    /// Panics if `trace` indexes a different table than the suite is
    /// bound to.
    ///
    /// # Example
    ///
    /// ```
    /// use esafe_logic::{parse, FrameTrace, SignalTable};
    /// use esafe_monitor::{Location, MonitorSuite};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = SignalTable::builder();
    /// let speed = b.real("speed");
    /// let table = b.finish();
    ///
    /// // A recorded run: speed ramps 1, 2, 3 (one sample per ms).
    /// let mut trace = FrameTrace::new(&table, 1);
    /// let mut frame = table.frame();
    /// for v in [1.0, 2.0, 3.0] {
    ///     frame.set(speed, v);
    ///     trace.push(&frame);
    /// }
    ///
    /// // Re-monitor the recording offline with a goal the live run
    /// // never compiled.
    /// let mut suite = MonitorSuite::new(table.clone());
    /// suite.add_goal("tighter", Location::new("Host"), parse("speed < 2.5")?)?;
    /// suite.replay(&trace)?;
    /// let violations = suite.violations("tighter").unwrap();
    /// assert_eq!(violations.len(), 1);
    /// assert_eq!(violations[0].start_tick, 2); // the 3.0 sample
    /// # Ok(())
    /// # }
    /// ```
    pub fn replay(&mut self, trace: &FrameTrace) -> Result<(), MonitorError> {
        assert!(
            Arc::ptr_eq(trace.table(), &self.table),
            "trace and suite must share one signal table"
        );
        self.reset();
        let mut frame = self.table.frame();
        for i in 0..trace.len() {
            trace.read_into(i, &mut frame);
            self.observe(&frame)?;
        }
        self.finish();
        Ok(())
    }

    /// Closes any open violation intervals (call once after the run).
    pub fn finish(&mut self) {
        for e in &mut self.entries {
            e.tracker.finish();
        }
    }

    /// Violation intervals recorded for monitor `id` (goals and subgoals).
    pub fn violations(&self, id: &str) -> Option<&[ViolationInterval]> {
        self.entries
            .iter()
            .find(|e| e.meta.id == id)
            .map(|e| e.tracker.intervals())
    }

    /// Drains the recorded violations into owned storage: one
    /// `(id, intervals)` pair per monitor with at least one interval, in
    /// insertion order. The intervals are *moved* out of the trackers
    /// (which keep running but report empty afterwards), so report
    /// assembly copies nothing per monitor beyond the violating ids —
    /// call [`MonitorSuite::correlate`] first, since correlation reads
    /// the same intervals.
    pub fn take_violations(&mut self) -> Vec<(String, Vec<ViolationInterval>)> {
        let mut out = Vec::new();
        for e in &mut self.entries {
            let intervals = e.tracker.take_intervals();
            if !intervals.is_empty() {
                out.push((e.meta.id.clone(), intervals));
            }
        }
        out
    }

    /// Ids of all top-level goals, in insertion order.
    pub fn goal_ids(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.meta.parent.is_none())
            .map(|e| e.meta.id.as_str())
            .collect()
    }

    /// Ids of the subgoals of `goal_id`, in insertion order.
    pub fn subgoal_ids(&self, goal_id: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.meta.parent.as_deref() == Some(goal_id))
            .map(|e| e.meta.id.as_str())
            .collect()
    }

    /// The `(location, formula)` of a monitor.
    pub fn describe(&self, id: &str) -> Option<(&Location, &Expr)> {
        self.entries
            .iter()
            .find(|e| e.meta.id == id)
            .map(|e| (&e.meta.location, &e.meta.expr))
    }

    /// The monitoring-location matrix: `(id, parent, location)` rows in
    /// insertion order (the shape of thesis Table 5.3). Borrowed views —
    /// rendering or report assembly decides what to copy.
    pub fn location_matrix(&self) -> Vec<(&str, Option<&str>, &Location)> {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.meta.id.as_str(),
                    e.meta.parent.as_deref(),
                    &e.meta.location,
                )
            })
            .collect()
    }

    /// Classifies detections per §5.1.2 with the given correlation
    /// `window` (ticks of slack between subgoal and goal violations).
    pub fn correlate(&self, window: u64) -> CorrelationReport {
        let entries: Vec<(&EntryMeta, &[ViolationInterval])> = self
            .entries
            .iter()
            .map(|e| (&*e.meta, e.tracker.intervals()))
            .collect();
        correlate_entries(&entries, window)
    }
}

/// The §5.1.2 hit / false-positive / false-negative classification over
/// one run's `(meta, recorded intervals)` rows, in suite order. **The
/// one implementation** behind [`MonitorSuite::correlate`] and
/// [`MonitorSuiteBatch::correlate_lane`], so the scalar and batched
/// engines classify identically by construction.
fn correlate_entries(
    entries: &[(&EntryMeta, &[ViolationInterval])],
    window: u64,
) -> CorrelationReport {
    let mut rows = Vec::new();
    for (goal, goal_violations) in entries.iter().filter(|(m, _)| m.parent.is_none()) {
        let subs: Vec<&(&EntryMeta, &[ViolationInterval])> = entries
            .iter()
            .filter(|(m, _)| m.parent.as_deref() == Some(goal.id.as_str()))
            .collect();

        let mut hits = 0usize;
        let mut false_negatives = 0usize;
        for gv in *goal_violations {
            let covered = subs
                .iter()
                .any(|(_, sv)| sv.iter().any(|sv| sv.overlaps(gv, window)));
            if covered {
                hits += 1;
            } else {
                false_negatives += 1;
            }
        }

        let mut false_positives = 0usize;
        let mut per_subgoal = Vec::new();
        for (meta, sub_viol) in &subs {
            let mut sub_fp = 0usize;
            for sv in *sub_viol {
                let matched = goal_violations.iter().any(|gv| gv.overlaps(sv, window));
                if !matched {
                    sub_fp += 1;
                }
            }
            false_positives += sub_fp;
            per_subgoal.push(SubgoalStats {
                subgoal_id: meta.id.clone(),
                location: meta.location.to_string(),
                violations: sub_viol.len(),
                false_positives: sub_fp,
            });
        }

        rows.push(CorrelationRow {
            goal_id: goal.id.clone(),
            goal_violations: goal_violations.len(),
            hits,
            false_negatives,
            false_positives,
            subgoals: per_subgoal,
        });
    }
    CorrelationReport { rows }
}

/// The compile-once form of a [`MonitorSuite`]: every goal/subgoal
/// formula of a substrate *family* compiled against the family's shared
/// [`SignalTable`], held as `Arc`-shared immutable programs — both the
/// per-monitor [`CompiledProgram`]s and the suite-level
/// [`FusedSuiteProgram`] that merges every formula into one
/// deduplicated DAG.
///
/// Building a suite parses and resolves ~`O(formula size)` work per
/// monitor; a sweep that rebuilt its suite per cell paid that ×cells.
/// A template is built **once per sweep** (typically via
/// [`MonitorSuite::template`] on the first suite compiled) and
/// [`SuiteTemplate::instantiate`] stamps out a per-cell *fused* suite in
/// O(monitors): Arc clones, two slab allocations, and a `memcpy` of the
/// temporal state cells. [`SuiteTemplate::instantiate_per_monitor`]
/// stamps the reference per-monitor engine instead.
///
/// An instantiated suite is observationally identical to one compiled
/// from scratch — same monitors, same ids, same verdicts — which the
/// workspace's golden sweep tests pin bit-for-bit.
#[derive(Debug, Clone)]
pub struct SuiteTemplate {
    table: Arc<SignalTable>,
    entries: Vec<TemplateEntry>,
    fused: Arc<FusedSuiteProgram>,
}

#[derive(Debug, Clone)]
struct TemplateEntry {
    meta: Arc<EntryMeta>,
    program: Arc<CompiledProgram>,
}

impl SuiteTemplate {
    /// The signal namespace the template's monitors are compiled against.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Number of monitors (goals + subgoals) in the template.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the template holds no monitors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The suite-level fused program: the deduplicated DAG every
    /// instantiated suite evaluates. Its
    /// [`source_nodes`](FusedSuiteProgram::source_nodes) /
    /// [`unique_nodes`](FusedSuiteProgram::unique_nodes) counts quantify
    /// the cross-monitor sharing (the `repro --grid --json` CSE fields).
    pub fn fused_program(&self) -> &Arc<FusedSuiteProgram> {
        &self.fused
    }

    /// Stamps out a fresh **fused** suite — the production engine: no
    /// parsing, no compilation, no string copies; every monitor verdict
    /// comes from one shared evaluation pass per tick.
    ///
    /// # Example
    ///
    /// ```
    /// use esafe_logic::{parse, SignalTable};
    /// use esafe_monitor::{Location, MonitorSuite};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = SignalTable::builder();
    /// let speed = b.real("speed");
    /// let table = b.finish();
    ///
    /// // Author once, template once, stamp per cell.
    /// let mut authored = MonitorSuite::new(table.clone());
    /// authored.add_goal("bound", Location::new("Host"), parse("speed < 3.0")?)?;
    /// let template = authored.template();
    ///
    /// let mut cell_suite = template.instantiate();
    /// assert!(cell_suite.is_fused());
    /// let mut frame = table.frame();
    /// frame.set(speed, 5.0);
    /// cell_suite.observe(&frame)?;
    /// cell_suite.finish();
    /// assert_eq!(cell_suite.violations("bound").unwrap().len(), 1);
    ///
    /// // Each instantiation starts clean — cells never share history.
    /// assert!(template.instantiate().violations("bound").unwrap().is_empty());
    /// # Ok(())
    /// # }
    /// ```
    pub fn instantiate(&self) -> MonitorSuite {
        MonitorSuite {
            table: self.table.clone(),
            entries: self.stamp_entries(),
            engine: Engine::Fused(self.fused.instantiate()),
        }
    }

    /// Stamps out a fresh suite on the **per-monitor** reference engine —
    /// each goal evaluated by its own [`CompiledMonitor`]. Verdicts are
    /// identical to [`SuiteTemplate::instantiate`]; this path exists for
    /// equivalence tests and benchmarks of the fused engine.
    pub fn instantiate_per_monitor(&self) -> MonitorSuite {
        MonitorSuite {
            table: self.table.clone(),
            entries: self.stamp_entries(),
            engine: Engine::PerMonitor(
                self.entries
                    .iter()
                    .map(|t| t.program.instantiate())
                    .collect(),
            ),
        }
    }

    /// Stamps out a **batched** suite evaluating `lanes` independent
    /// runs in lock-step through one slab-of-lanes pass per tick — the
    /// engine behind the harness's striped sweeps. Each lane carries its
    /// own violation trackers and temporal history; per-lane results are
    /// identical to `lanes` separate [`SuiteTemplate::instantiate`]d
    /// suites fed the same frames (see [`MonitorSuiteBatch`]).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn instantiate_batch(&self, lanes: usize) -> MonitorSuiteBatch {
        MonitorSuiteBatch {
            table: self.table.clone(),
            trackers: vec![IntervalTracker::new(); self.entries.len() * lanes],
            prev: vec![true; self.entries.len() * lanes],
            metas: self.entries.iter().map(|t| Arc::clone(&t.meta)).collect(),
            fused: self.fused.instantiate_batch(lanes),
            lanes,
            generation: 0,
            suspended_scratch: Vec::new(),
        }
    }

    fn stamp_entries(&self) -> Vec<Entry> {
        self.entries
            .iter()
            .map(|t| Entry {
                meta: Arc::clone(&t.meta),
                tracker: IntervalTracker::new(),
            })
            .collect()
    }
}

/// An evaluation error raised by a batched suite, naming the failing
/// lane (run) and monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMonitorError {
    /// Index of the failing lane within the batch.
    pub lane: usize,
    /// The failing monitor's id.
    pub monitor_id: String,
    /// The underlying evaluation error.
    pub source: EvalError,
}

impl fmt::Display for BatchMonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lane #{} monitor `{}`: {}",
            self.lane, self.monitor_id, self.source
        )
    }
}

impl std::error::Error for BatchMonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl BatchMonitorError {
    /// Drops the lane attribution, leaving the per-run error a scalar
    /// suite would have reported.
    pub fn into_monitor_error(self) -> MonitorError {
        MonitorError {
            monitor_id: self.monitor_id,
            source: self.source,
        }
    }
}

/// A [`MonitorSuite`] over **many runs at once**: `lanes` independent
/// runs advance in lock-step through one batched fused pass per tick
/// ([`FusedSuiteBatch`]), with one violation-tracker row per lane.
///
/// The batch is the monitor-side half of the harness's striped sweeps: a
/// stripe of same-template sweep cells ticks its simulators together and
/// feeds all observed frames to [`MonitorSuiteBatch::observe_batch`] —
/// each DAG node is then evaluated across the whole stripe in a
/// straight-line lane loop before moving to the next node, instead of
/// re-walking the suite once per run.
///
/// Lanes are observationally independent: verdicts, recorded intervals,
/// correlation, and violation reports per lane are **identical** to
/// running `lanes` separate [`SuiteTemplate::instantiate`]d suites over
/// the same frames (pinned by unit, property, and golden sweep tests) —
/// including when a lane [`retire`](MonitorSuiteBatch::retire_lane)s
/// early while its neighbours keep running.
///
/// The per-lane lifecycle mirrors the scalar suite's
/// observe → finish → correlate → take_violations:
/// [`observe_batch`](MonitorSuiteBatch::observe_batch) each tick, then
/// [`retire_lane`](MonitorSuiteBatch::retire_lane) when the lane's run
/// ends (early termination) or [`finish`](MonitorSuiteBatch::finish)
/// once for everything still live, then
/// [`correlate_lane`](MonitorSuiteBatch::correlate_lane) and
/// [`take_violations_lane`](MonitorSuiteBatch::take_violations_lane)
/// per lane.
#[derive(Debug, Clone)]
pub struct MonitorSuiteBatch {
    table: Arc<SignalTable>,
    metas: Vec<Arc<EntryMeta>>,
    /// Lane-major: `trackers[lane * metas.len() + entry]`, so one lane's
    /// rows are contiguous for per-lane extraction.
    trackers: Vec<IntervalTracker>,
    /// Monitor-major verdicts from the previous pass:
    /// `prev[entry * lanes + lane]`, matching the fused slab's row
    /// layout so recording diffs whole rows. Starts all-`true` (an
    /// initial `false` verdict is a recordable true→false edge).
    prev: Vec<bool>,
    fused: FusedSuiteBatch,
    lanes: usize,
    /// Which *suite generation* this batch belongs to — provenance for
    /// long-running services that hot-swap goal suites: every verdict or
    /// violation drained from this batch is attributed to this
    /// generation, never to the suite that replaced it.
    generation: u64,
    /// Reusable scratch for
    /// [`observe_slab_masked`](MonitorSuiteBatch::observe_slab_masked):
    /// the lanes temporarily suspended for the current pass.
    suspended_scratch: Vec<usize>,
}

impl MonitorSuiteBatch {
    /// The signal namespace the batch's monitors are compiled against.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Number of lanes (runs) in the batch, retired lanes included.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of lanes still advancing.
    pub fn active_lanes(&self) -> usize {
        self.fused.active_lanes()
    }

    /// Whether `lane` is still advancing.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn is_active(&self, lane: usize) -> bool {
        self.fused.is_active(lane)
    }

    /// Number of monitors (goals + subgoals) per lane.
    pub fn monitors(&self) -> usize {
        self.metas.len()
    }

    /// Number of frames `lane` has observed so far (frozen once the lane
    /// retires) — the tick clock violation provenance is expressed in.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn steps_observed(&self, lane: usize) -> u64 {
        self.fused.steps_observed(lane)
    }

    /// The suite generation this batch is tagged with (0 unless
    /// [`set_generation`](MonitorSuiteBatch::set_generation) was called).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Tags this batch with a suite generation. A service that hot-swaps
    /// goal suites stamps each instantiated batch with a monotonically
    /// increasing generation so drained violations stay attributed to
    /// the suite that actually produced them.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Whether every lane has retired — a *drained* batch. A draining
    /// suite (deactivated for new runs but still carrying live lanes)
    /// can be [`finish`](MonitorSuiteBatch::finish)ed and unloaded as
    /// soon as this turns true, without cutting any run short.
    pub fn drained(&self) -> bool {
        self.fused.active_lanes() == 0
    }

    /// Feeds the next frame of every active lane (`frames[lane]`;
    /// retired lanes' entries are ignored): one batched fused pass, then
    /// one verdict recording per monitor per active lane.
    ///
    /// # Errors
    ///
    /// Returns a [`BatchMonitorError`] naming the failing lane and
    /// monitor. As with the scalar suite, treat an error as fatal for
    /// the batch instance.
    ///
    /// # Panics
    ///
    /// Panics if `frames.len() != lanes`; debug builds also panic if an
    /// active lane's frame indexes a different table.
    pub fn observe_batch(&mut self, frames: &[Frame]) -> Result<(), BatchMonitorError> {
        self.fused
            .observe_batch(frames)
            .map_err(|err| BatchMonitorError {
                lane: err.lane,
                monitor_id: self.metas[err.monitor].id.clone(),
                source: err.source,
            })?;
        self.record_verdicts();
        Ok(())
    }

    /// [`observe_batch`](MonitorSuiteBatch::observe_batch) reading a
    /// lane-major [`FrameBatch`] slab **in place** — the zero-copy path
    /// for a batched simulator's state slab. Verdicts, intervals, and
    /// errors are identical to copying each lane out into a frame and
    /// calling [`observe_batch`](MonitorSuiteBatch::observe_batch).
    ///
    /// # Errors
    ///
    /// As [`observe_batch`](MonitorSuiteBatch::observe_batch).
    ///
    /// # Panics
    ///
    /// Panics if `slab.lanes() != lanes`; debug builds also panic if the
    /// slab indexes a different table.
    pub fn observe_slab(&mut self, slab: &FrameBatch) -> Result<(), BatchMonitorError> {
        self.fused
            .observe_slab(slab)
            .map_err(|err| BatchMonitorError {
                lane: err.lane,
                monitor_id: self.metas[err.monitor].id.clone(),
                source: err.source,
            })?;
        self.record_verdicts();
        Ok(())
    }

    /// [`observe_slab`](MonitorSuiteBatch::observe_slab) restricted to a
    /// **subset** of lanes: only lanes with `live[lane] == true` observe
    /// the pass; every other lane — retired or merely frameless this
    /// pass — is skipped with its temporal history, step counter, and
    /// recorded intervals left bit-exactly untouched, as if the pass
    /// never happened for it. This is the streaming-service path: a
    /// shard whose streams deliver frames at different rates advances
    /// exactly the lanes that produced a frame this wave, so a stalled
    /// stream never perturbs (or is perturbed by) its neighbours.
    ///
    /// Skipped lanes' slab rows are not read; they may hold stale or
    /// unset data.
    ///
    /// # Errors
    ///
    /// As [`observe_slab`](MonitorSuiteBatch::observe_slab). On error the
    /// suspended lanes are resumed before returning, but — as with every
    /// batch observe error — the batch instance should be treated as
    /// poisoned.
    ///
    /// # Panics
    ///
    /// Panics if `live.len() != lanes` or `slab.lanes() != lanes`.
    pub fn observe_slab_masked(
        &mut self,
        slab: &FrameBatch,
        live: &[bool],
    ) -> Result<(), BatchMonitorError> {
        assert_eq!(live.len(), self.lanes, "one liveness flag per lane");
        let mut suspended = std::mem::take(&mut self.suspended_scratch);
        suspended.clear();
        for (lane, &is_live) in live.iter().enumerate() {
            if !is_live && self.fused.is_active(lane) {
                self.fused.suspend_lane(lane);
                suspended.push(lane);
            }
        }
        let result = self
            .fused
            .observe_slab(slab)
            .map_err(|err| BatchMonitorError {
                lane: err.lane,
                monitor_id: self.metas[err.monitor].id.clone(),
                source: err.source,
            });
        if result.is_ok() {
            // Record while the skipped lanes are still suspended, so the
            // edge diff cannot attribute a stale verdict cell to them.
            self.record_verdicts();
        }
        for &lane in &suspended {
            self.fused.resume_lane(lane);
        }
        self.suspended_scratch = suspended;
        result
    }

    /// Folds the pass's verdicts into the violation trackers — the
    /// shared back half of both observe paths. Intervals only change at
    /// verdict *edges*, so instead of one
    /// [`IntervalTracker::record`] per monitor per lane per tick, this
    /// diffs each monitor's contiguous verdict row against the previous
    /// pass's copy (one slice compare, almost always equal) and touches
    /// a tracker only where a lane's verdict actually flipped. Retired
    /// lanes' verdict cells are frozen, so they never diff.
    fn record_verdicts(&mut self) {
        let n = self.metas.len();
        let lanes = self.lanes;
        for e in 0..n {
            let row = self.fused.verdict_row(e);
            let prev = &mut self.prev[e * lanes..][..lanes];
            if prev == row {
                continue;
            }
            for (l, (prev, &sat)) in prev.iter_mut().zip(row).enumerate() {
                if *prev != sat && self.fused.is_active(l) {
                    // The tick just recorded for this lane. Inactive
                    // lanes keep their `prev` copy untouched: a
                    // suspended lane's root cell can hold a stale
                    // recomputation (e.g. before its first frame ever
                    // lands), and syncing `prev` to it would swallow the
                    // real edge when the lane resumes.
                    let t = self.fused.steps_observed(l) - 1;
                    let tracker = &mut self.trackers[l * n + e];
                    if sat {
                        tracker.close_at(t);
                    } else {
                        tracker.open_at(t);
                    }
                    *prev = sat;
                }
            }
        }
    }

    /// Ends a lane's run: closes its open violation intervals and
    /// freezes its monitors, exactly as [`MonitorSuite::finish`] would
    /// at the end of a scalar run. Subsequent passes skip the lane.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn retire_lane(&mut self, lane: usize) {
        if self.fused.is_active(lane) {
            self.fused.retire_lane(lane);
            let steps = self.fused.steps_observed(lane);
            let n = self.metas.len();
            for tracker in &mut self.trackers[lane * n..][..n] {
                // Edge-driven recording leaves the clock stale between
                // verdict flips; sync it so a still-open violation
                // closes at the lane's true end.
                tracker.advance_to(steps);
                tracker.finish();
            }
        }
    }

    /// Retires every lane still active (call once after the stripe's
    /// tick loop; lanes that terminated early were retired then).
    pub fn finish(&mut self) {
        for lane in 0..self.lanes {
            self.retire_lane(lane);
        }
    }

    /// Classifies `lane`'s detections per §5.1.2 — the same
    /// classification [`MonitorSuite::correlate`] computes, over the
    /// lane's own recorded intervals (one shared implementation).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn correlate_lane(&self, lane: usize, window: u64) -> CorrelationReport {
        let n = self.metas.len();
        let row = &self.trackers[lane * n..][..n];
        let entries: Vec<(&EntryMeta, &[ViolationInterval])> = self
            .metas
            .iter()
            .zip(row)
            .map(|(m, t)| (&**m, t.intervals()))
            .collect();
        correlate_entries(&entries, window)
    }

    /// Drains `lane`'s recorded violations into owned storage — the
    /// batched analogue of [`MonitorSuite::take_violations`]: one
    /// `(id, intervals)` pair per monitor with at least one interval, in
    /// insertion order. Call
    /// [`correlate_lane`](MonitorSuiteBatch::correlate_lane) first;
    /// correlation reads the same intervals.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn take_violations_lane(&mut self, lane: usize) -> Vec<(String, Vec<ViolationInterval>)> {
        let n = self.metas.len();
        let row = &mut self.trackers[lane * n..][..n];
        let mut out = Vec::new();
        for (meta, tracker) in self.metas.iter().zip(row) {
            let intervals = tracker.take_intervals();
            if !intervals.is_empty() {
                out.push((meta.id.clone(), intervals));
            }
        }
        out
    }

    /// Reclaims a retired lane for a **new run**, in place: the lane's
    /// temporal history restarts from the initial state
    /// ([`FusedSuiteBatch::reset_lane`]), its violation trackers reset,
    /// and its previous-verdict row returns to all-`true` — exactly the
    /// state the lane had at instantiation, with no other lane touched
    /// and nothing reallocated. This is what makes lane slots *reusable*
    /// in a long-running service: a disconnecting stream retires its
    /// lane, and the next connecting stream reclaims it.
    ///
    /// Drain the lane's recorded violations
    /// ([`take_violations_lane`](MonitorSuiteBatch::take_violations_lane))
    /// before reclaiming; reclaim discards anything still recorded.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or still active — retire first,
    /// so the previous run's open intervals close at its true end.
    pub fn reclaim_lane(&mut self, lane: usize) {
        assert!(
            !self.fused.is_active(lane),
            "lane {lane} must be retired before it can be reclaimed"
        );
        self.fused.reset_lane(lane);
        let n = self.metas.len();
        for tracker in &mut self.trackers[lane * n..][..n] {
            tracker.reset();
        }
        for e in 0..n {
            self.prev[e * self.lanes + lane] = true;
        }
    }

    /// Returns every lane to its pre-run state — history, trackers, and
    /// retirements cleared in place, no reallocation. A reset batch is
    /// observationally identical to a freshly instantiated one, so a
    /// sweep worker can reuse one batch across the stripes it executes.
    pub fn reset(&mut self) {
        self.fused.reset();
        for tracker in &mut self.trackers {
            tracker.reset();
        }
        self.prev.fill(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::parse;

    fn table() -> Arc<SignalTable> {
        let mut b = SignalTable::builder();
        b.bool("g");
        b.bool("s");
        b.finish()
    }

    fn suite() -> MonitorSuite {
        let mut m = MonitorSuite::new(table());
        m.add_goal("G", Location::new("System"), parse("g").unwrap())
            .unwrap();
        m.add_subgoal("G.A", "G", Location::new("Sub"), parse("s").unwrap())
            .unwrap();
        m
    }

    fn observe(m: &mut MonitorSuite, goal_ok: bool, sub_ok: bool) {
        let mut f = m.table().clone().frame();
        f.set_named("g", goal_ok);
        f.set_named("s", sub_ok);
        m.observe(&f).unwrap();
    }

    #[test]
    fn hit_when_goal_and_subgoal_overlap() {
        let mut m = suite();
        for (g, s) in [(true, true), (false, false), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (1, 0, 0)
        );
    }

    #[test]
    fn false_negative_when_goal_fires_alone() {
        let mut m = suite();
        for (g, s) in [(true, true), (false, true), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (0, 1, 0)
        );
    }

    #[test]
    fn false_positive_when_subgoal_fires_alone() {
        let mut m = suite();
        for (g, s) in [(true, true), (true, false), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (0, 0, 1)
        );
        assert_eq!(row.subgoals[0].false_positives, 1);
    }

    #[test]
    fn window_turns_near_miss_into_hit() {
        let mut m = suite();
        // Subgoal violated at tick 1, goal at tick 3: 1 tick apart.
        for (g, s) in [
            (true, true),
            (true, false),
            (true, true),
            (false, true),
            (true, true),
        ] {
            observe(&mut m, g, s);
        }
        m.finish();
        assert_eq!(m.correlate(0).for_goal("G").unwrap().hits, 0);
        assert_eq!(m.correlate(2).for_goal("G").unwrap().hits, 1);
        assert_eq!(m.correlate(2).for_goal("G").unwrap().false_positives, 0);
    }

    #[test]
    fn violations_and_matrix_are_reported() {
        let mut m = suite();
        observe(&mut m, false, true);
        m.finish();
        assert_eq!(m.violations("G").unwrap().len(), 1);
        assert_eq!(m.violations("G.A").unwrap().len(), 0);
        assert!(m.violations("missing").is_none());
        let matrix = m.location_matrix();
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[1].1, Some("G"));
        assert_eq!(m.goal_ids(), vec!["G"]);
        assert_eq!(m.subgoal_ids("G"), vec!["G.A"]);
    }

    #[test]
    fn take_violations_drains_once_in_insertion_order() {
        let mut m = suite();
        observe(&mut m, false, false);
        observe(&mut m, true, true);
        m.finish();
        let report = m.correlate(0);
        assert_eq!(report.for_goal("G").unwrap().hits, 1);
        let taken = m.take_violations();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].0, "G");
        assert_eq!(taken[0].1, vec![ViolationInterval::new(0, 1)]);
        assert_eq!(taken[1].0, "G.A");
        // Drained: the trackers now report empty.
        assert!(m.take_violations().is_empty());
        assert!(m.violations("G").unwrap().is_empty());
    }

    /// Runs the frames through a suite and returns its drained
    /// violations + classification — the observable outcome of a run.
    fn outcome(mut m: MonitorSuite, frames: &[(bool, bool)]) -> (Vec<(String, usize)>, usize) {
        for &(g, s) in frames {
            observe(&mut m, g, s);
        }
        m.finish();
        let hits = m.correlate(0).for_goal("G").unwrap().hits;
        let violations = m
            .take_violations()
            .into_iter()
            .map(|(id, v)| (id, v.len()))
            .collect();
        (violations, hits)
    }

    #[test]
    fn template_instantiation_matches_full_compilation() {
        let template = suite().template();
        assert_eq!(template.len(), 2);
        assert!(!template.is_empty());
        let frames = [(true, true), (false, false), (true, false)];
        let compiled = outcome(suite(), &frames);
        let instantiated = outcome(template.instantiate(), &frames);
        assert_eq!(instantiated, compiled);
        // Instantiation is repeatable: each instance starts clean.
        assert_eq!(outcome(template.instantiate(), &frames), compiled);
    }

    #[test]
    fn fused_and_per_monitor_engines_agree() {
        let template = suite().template();
        let fused = template.instantiate();
        let per_monitor = template.instantiate_per_monitor();
        assert!(fused.is_fused());
        assert!(!per_monitor.is_fused());
        assert!(!suite().is_fused(), "authored suites run per-monitor");
        let frames = [
            (true, true),
            (false, false),
            (true, false),
            (false, true),
            (true, true),
        ];
        assert_eq!(outcome(fused, &frames), outcome(per_monitor, &frames));
    }

    #[test]
    fn fused_template_shares_subformulas_across_monitors() {
        let mut m = MonitorSuite::new(table());
        m.add_goal("G", Location::new("System"), parse("g && s").unwrap())
            .unwrap();
        m.add_subgoal("G.A", "G", Location::new("Sub"), parse("s && g").unwrap())
            .unwrap();
        m.add_subgoal("G.B", "G", Location::new("Sub"), parse("g && s").unwrap())
            .unwrap();
        let template = m.template();
        let program = template.fused_program();
        // g, s, g && s, s && g — the duplicate third formula is free.
        assert_eq!(program.unique_nodes(), 4);
        assert_eq!(program.source_nodes(), 9);
        assert_eq!(program.roots(), 3);
    }

    #[test]
    fn templating_a_fused_suite_round_trips() {
        // template() on a fused (template-instantiated) suite rebuilds
        // the per-monitor programs from the shared metas.
        let template = suite().template();
        let retemplated = template.instantiate().template();
        let frames = [(true, true), (false, true), (true, false)];
        assert_eq!(
            outcome(retemplated.instantiate(), &frames),
            outcome(suite(), &frames)
        );
        assert_eq!(
            outcome(retemplated.instantiate_per_monitor(), &frames),
            outcome(suite(), &frames)
        );
    }

    #[test]
    fn replay_matches_live_observation() {
        use esafe_logic::FrameTrace;
        let frames = [(true, true), (false, false), (true, false), (false, true)];
        // Record the observed frames as a live run would.
        let t = table();
        let mut shared = MonitorSuite::new(t.clone());
        shared
            .add_goal("G", Location::new("System"), parse("g").unwrap())
            .unwrap();
        shared
            .add_subgoal("G.A", "G", Location::new("Sub"), parse("s").unwrap())
            .unwrap();
        let template = shared.template();
        let mut trace = FrameTrace::new(&t, 1);
        let mut frame = t.frame();
        for &(g, s) in &frames {
            frame.set_named("g", g);
            frame.set_named("s", s);
            trace.push(&frame);
        }
        let live = outcome(template.instantiate(), &frames);
        // Offline: replay the recording through a fresh fused suite —
        // dirty it first to prove replay resets.
        let mut offline = template.instantiate();
        observe(&mut offline, false, false);
        offline.replay(&trace).unwrap();
        let hits = offline.correlate(0).for_goal("G").unwrap().hits;
        let violations: Vec<(String, usize)> = offline
            .take_violations()
            .into_iter()
            .map(|(id, v)| (id, v.len()))
            .collect();
        assert_eq!((violations, hits), live);
    }

    /// Drives `frame_lanes` (one frame sequence per lane, possibly of
    /// different lengths — shorter lanes retire early) through one
    /// batched suite and through one scalar suite per lane, asserting
    /// identical correlation and drained violations per lane.
    fn assert_batch_lane_outcomes_match_scalar(
        template: &SuiteTemplate,
        lanes: &[&[(bool, bool)]],
    ) {
        let t = template.table().clone();
        let width = lanes.len();
        let mut batch = template.instantiate_batch(width);
        let mut frames: Vec<_> = (0..width).map(|_| t.frame()).collect();
        let max_len = lanes.iter().map(|l| l.len()).max().unwrap();
        for step in 0..max_len {
            for (l, lane) in lanes.iter().enumerate() {
                match lane.get(step) {
                    Some(&(g, s)) => {
                        frames[l].set_named("g", g);
                        frames[l].set_named("s", s);
                    }
                    None => batch.retire_lane(l),
                }
            }
            if batch.active_lanes() == 0 {
                break;
            }
            batch.observe_batch(&frames).unwrap();
        }
        batch.finish();
        for (l, lane) in lanes.iter().enumerate() {
            let scalar = outcome(template.instantiate(), lane);
            let hits = batch
                .correlate_lane(l, 0)
                .for_goal("G")
                .map_or(0, |row| row.hits);
            let violations: Vec<(String, usize)> = batch
                .take_violations_lane(l)
                .into_iter()
                .map(|(id, v)| (id, v.len()))
                .collect();
            assert_eq!((violations, hits), scalar, "lane {l} diverged");
        }
    }

    #[test]
    fn batched_suite_matches_scalar_suites_per_lane() {
        let template = suite().template();
        // Uniform lanes.
        assert_batch_lane_outcomes_match_scalar(
            &template,
            &[
                &[(true, true), (false, false), (true, false)],
                &[(false, true), (true, true), (false, false)],
                &[(true, true), (true, true), (true, true)],
            ],
        );
        // Ragged lanes: lane 1 retires after one tick, lane 2 after two
        // — the early-termination-inside-a-stripe shape. Lane 0's
        // verdicts must be bit-identical to its scalar run regardless.
        assert_batch_lane_outcomes_match_scalar(
            &template,
            &[
                &[(true, true), (false, false), (true, false), (false, true)],
                &[(false, false)],
                &[(true, false), (false, true)],
            ],
        );
    }

    #[test]
    fn batched_suite_reset_behaves_like_fresh() {
        let template = suite().template();
        let mut batch = template.instantiate_batch(2);
        let t = template.table().clone();
        let mut frames = vec![t.frame(), t.frame()];
        for f in &mut frames {
            f.set_named("g", false);
            f.set_named("s", false);
        }
        batch.observe_batch(&frames).unwrap();
        batch.retire_lane(0);
        batch.finish();
        assert_eq!(batch.take_violations_lane(0).len(), 2);
        batch.reset();
        assert_eq!(batch.active_lanes(), 2);
        for f in &mut frames {
            f.set_named("g", true);
            f.set_named("s", true);
        }
        batch.observe_batch(&frames).unwrap();
        batch.finish();
        assert!(batch.take_violations_lane(0).is_empty());
        assert!(batch.take_violations_lane(1).is_empty());
    }

    #[test]
    fn reclaimed_lane_behaves_like_a_fresh_lane() {
        let template = suite().template();
        let t = template.table().clone();
        let mut batch = template.instantiate_batch(2);
        batch.set_generation(3);
        assert_eq!(batch.generation(), 3);
        let mut frames = vec![t.frame(), t.frame()];
        // First occupant of lane 0 violates both monitors, then leaves.
        frames[0].set_named("g", false);
        frames[0].set_named("s", false);
        frames[1].set_named("g", true);
        frames[1].set_named("s", true);
        batch.observe_batch(&frames).unwrap();
        batch.retire_lane(0);
        assert!(!batch.drained(), "lane 1 is still live");
        assert_eq!(batch.take_violations_lane(0).len(), 2);

        // Second occupant reclaims lane 0 and runs clean: it must see no
        // residue — no stale intervals, a zeroed tick clock, all-true
        // previous verdicts (so staying true records nothing).
        batch.reclaim_lane(0);
        assert!(batch.is_active(0));
        assert_eq!(batch.steps_observed(0), 0);
        frames[0].set_named("g", true);
        frames[0].set_named("s", true);
        batch.observe_batch(&frames).unwrap();
        batch.finish();
        assert!(batch.drained());
        assert!(batch.take_violations_lane(0).is_empty());
        // Lane 1 observed both passes without interruption.
        assert_eq!(batch.steps_observed(1), 2);
        assert!(batch.take_violations_lane(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "must be retired")]
    fn reclaiming_an_active_lane_panics() {
        let template = suite().template();
        let mut batch = template.instantiate_batch(1);
        batch.reclaim_lane(0);
    }

    #[test]
    fn batched_observe_error_names_lane_and_monitor() {
        let template = suite().template();
        let t = template.table().clone();
        let mut batch = template.instantiate_batch(2);
        let mut good = t.frame();
        good.set_named("g", true);
        good.set_named("s", true);
        let err = batch.observe_batch(&[good, t.frame()]).unwrap_err();
        assert_eq!(err.lane, 1);
        assert_eq!(err.monitor_id, "G");
        assert!(err.to_string().contains("lane #1"));
        assert_eq!(err.clone().into_monitor_error().monitor_id, "G");
    }

    #[test]
    #[should_panic(expected = "cannot add monitors to a fused suite")]
    fn fused_suites_reject_incremental_authoring() {
        let mut fused = suite().template().instantiate();
        let _ = fused.add_goal("H", Location::new("System"), parse("g").unwrap());
    }

    #[test]
    fn reset_suite_behaves_like_a_fresh_instance() {
        let template = suite().template();
        let frames = [(false, true), (true, true), (true, false)];
        let mut pooled = template.instantiate();
        // Dirty the pooled suite with an unrelated run, then reset.
        for &(g, s) in &[(false, false), (false, false)] {
            observe(&mut pooled, g, s);
        }
        pooled.finish();
        pooled.reset();
        let reused = outcome(pooled, &frames);
        assert_eq!(reused, outcome(template.instantiate(), &frames));
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn subgoal_requires_parent() {
        let mut m = MonitorSuite::new(table());
        m.add_subgoal("X.A", "X", Location::new("L"), parse("p").unwrap())
            .unwrap();
    }

    #[test]
    fn observe_error_names_the_monitor() {
        let mut m = suite();
        let empty = m.table().clone().frame();
        let err = m.observe(&empty).unwrap_err();
        assert_eq!(err.monitor_id, "G");
        assert!(err.to_string().contains("monitor `G`"));
    }

    #[test]
    fn unknown_signal_fails_at_add_time() {
        let mut m = MonitorSuite::new(table());
        assert!(matches!(
            m.add_goal("X", Location::new("L"), parse("not_declared").unwrap()),
            Err(EvalError::UnknownSignal { .. })
        ));
    }
}
