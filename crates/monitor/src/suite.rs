//! Monitor suites: goal and subgoal monitors bound to architecture
//! locations (thesis Table 5.3).

use crate::correlate::{CorrelationReport, CorrelationRow, SubgoalStats};
use crate::violation::{IntervalTracker, ViolationInterval};
use esafe_logic::{
    CompiledMonitor, CompiledProgram, EvalError, Expr, Frame, FrameTrace, FusedSuite,
    FusedSuiteProgram, SignalTable,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Where in the architecture a monitor runs (e.g. `Vehicle`, `Arbiter`,
/// `CA`). Purely a label; the state samples are shared.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Location(String);

impl Location {
    /// Creates a location label.
    pub fn new(name: impl Into<String>) -> Self {
        Location(name.into())
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Location {
    fn from(s: &str) -> Self {
        Location::new(s)
    }
}

/// An evaluation error raised by a specific monitor in a suite.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorError {
    /// The failing monitor's id.
    pub monitor_id: String,
    /// The underlying evaluation error.
    pub source: EvalError,
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monitor `{}`: {}", self.monitor_id, self.source)
    }
}

impl std::error::Error for MonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A monitor's immutable identity — id, place in the goal hierarchy,
/// architecture location, source formula. Shared by `Arc` between a
/// suite's entries and the [`SuiteTemplate`] they were instantiated
/// from, so stamping out a suite clones no strings.
#[derive(Debug)]
struct EntryMeta {
    id: String,
    parent: Option<String>,
    location: Location,
    expr: Expr,
}

#[derive(Debug, Clone)]
struct Entry {
    meta: Arc<EntryMeta>,
    tracker: IntervalTracker,
}

/// How a suite evaluates its monitors each tick.
///
/// Both engines produce identical verdicts on error-free frames (pinned
/// by property tests and the workspace's golden sweeps); they differ
/// only in cost:
///
/// * `PerMonitor` — one [`CompiledMonitor`] per entry, each re-walking
///   its own expression tree. This is what incremental suite authoring
///   ([`MonitorSuite::add_goal`]) builds, and the reference engine the
///   fused path is tested against.
/// * `Fused` — the whole suite as one [`FusedSuite`]: a deduplicated
///   DAG in which every shared subformula is evaluated once per tick.
///   Stamped out by [`SuiteTemplate::instantiate`].
#[derive(Debug, Clone)]
enum Engine {
    /// Index-aligned with the suite's entries.
    PerMonitor(Vec<CompiledMonitor>),
    /// Roots index-aligned with the suite's entries.
    Fused(FusedSuite),
}

/// A set of goal and subgoal monitors fed from a shared [`Frame`] stream.
///
/// The suite is bound to one [`SignalTable`] at construction; every goal
/// formula is compiled against it
/// ([`CompiledMonitor::compile_in`]), so all variable references resolve
/// to [`SignalId`](esafe_logic::SignalId)s once and
/// [`MonitorSuite::observe`] is pure id-indexed slot access. A suite
/// instantiated from a [`SuiteTemplate`] runs *fused*: one deduplicated
/// DAG evaluates every monitor in a single pass per tick (see
/// [`FusedSuiteProgram`]).
///
/// Goals are top-level entries; subgoals name their parent goal. After the
/// run, [`MonitorSuite::correlate`] produces the hit / false-positive /
/// false-negative classification of §5.1.2.
#[derive(Debug, Clone)]
pub struct MonitorSuite {
    table: Arc<SignalTable>,
    entries: Vec<Entry>,
    engine: Engine,
}

impl MonitorSuite {
    /// Creates an empty suite over the given signal namespace.
    pub fn new(table: Arc<SignalTable>) -> Self {
        MonitorSuite {
            table,
            entries: Vec::new(),
            engine: Engine::PerMonitor(Vec::new()),
        }
    }

    /// The signal namespace the suite's monitors are compiled against.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Adds a system-level goal monitor.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if the goal contains future operators or
    /// references a signal outside the suite's table.
    pub fn add_goal(
        &mut self,
        id: impl Into<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        self.add_entry(id.into(), None, location, expr)
    }

    /// Adds a subgoal monitor under the parent goal `parent_id`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if the goal contains future operators or
    /// references a signal outside the suite's table.
    ///
    /// # Panics
    ///
    /// Panics if `parent_id` has not been added yet — the hierarchy is
    /// declared top-down.
    pub fn add_subgoal(
        &mut self,
        id: impl Into<String>,
        parent_id: impl Into<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        let parent_id = parent_id.into();
        assert!(
            self.entries
                .iter()
                .any(|e| e.meta.parent.is_none() && e.meta.id == parent_id),
            "parent goal `{parent_id}` must be added before its subgoals"
        );
        self.add_entry(id.into(), Some(parent_id), location, expr)
    }

    fn add_entry(
        &mut self,
        id: String,
        parent: Option<String>,
        location: Location,
        expr: Expr,
    ) -> Result<(), EvalError> {
        let Engine::PerMonitor(monitors) = &mut self.engine else {
            panic!(
                "cannot add monitors to a fused suite; author the suite \
                 per-monitor and fuse it via `template().instantiate()`"
            );
        };
        monitors.push(CompiledMonitor::compile_in(&expr, &self.table)?);
        self.entries.push(Entry {
            meta: Arc::new(EntryMeta {
                id,
                parent,
                location,
                expr,
            }),
            tracker: IntervalTracker::new(),
        });
        Ok(())
    }

    /// Whether the suite evaluates through the fused suite-level DAG
    /// (template-instantiated) rather than one monitor at a time.
    pub fn is_fused(&self) -> bool {
        matches!(self.engine, Engine::Fused(_))
    }

    /// Extracts the suite's compile-once artifacts as a
    /// [`SuiteTemplate`]: one shared `(meta, program)` pair per monitor
    /// **plus** the suite-level [`FusedSuiteProgram`] merging every
    /// formula into one deduplicated DAG. Building the template is the
    /// once-per-sweep compile point; stamping suites from it is
    /// O(monitors).
    pub fn template(&self) -> SuiteTemplate {
        let entries: Vec<TemplateEntry> = match &self.engine {
            Engine::PerMonitor(monitors) => self
                .entries
                .iter()
                .zip(monitors)
                .map(|(e, m)| TemplateEntry {
                    meta: Arc::clone(&e.meta),
                    program: Arc::clone(m.program()),
                })
                .collect(),
            Engine::Fused(_) => self
                .entries
                .iter()
                .map(|e| TemplateEntry {
                    meta: Arc::clone(&e.meta),
                    program: Arc::new(
                        CompiledProgram::compile(&e.meta.expr, &self.table)
                            .expect("formula compiled when the suite was built"),
                    ),
                })
                .collect(),
        };
        let fused = match &self.engine {
            Engine::Fused(f) => Arc::clone(f.program()),
            Engine::PerMonitor(_) => {
                let exprs: Vec<Expr> = self.entries.iter().map(|e| e.meta.expr.clone()).collect();
                Arc::new(
                    FusedSuiteProgram::compile(&exprs, &self.table)
                        .expect("every formula compiled per-monitor when the suite was built"),
                )
            }
        };
        SuiteTemplate {
            table: self.table.clone(),
            entries,
            fused,
        }
    }

    /// Returns every monitor to its pre-run state: compiled programs are
    /// kept, monitor history and recorded intervals are cleared in place
    /// (retaining buffer capacity). A reset suite is observationally
    /// identical to a freshly instantiated one — the property run-context
    /// pooling relies on.
    pub fn reset(&mut self) {
        match &mut self.engine {
            Engine::PerMonitor(monitors) => {
                for m in monitors {
                    m.reset();
                }
            }
            Engine::Fused(f) => f.reset(),
        }
        for e in &mut self.entries {
            e.tracker.reset();
        }
    }

    /// Feeds one frame to every monitor — the per-tick hot path: no
    /// string lookups, no allocation, one table identity check for the
    /// whole suite. A fused suite makes a single pass over the
    /// deduplicated DAG and then records one verdict per entry.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] naming the failing monitor.
    ///
    /// # Panics
    ///
    /// Panics if `frame` indexes a different table than the suite is
    /// bound to.
    pub fn observe(&mut self, frame: &Frame) -> Result<(), MonitorError> {
        assert!(
            Arc::ptr_eq(frame.table(), &self.table),
            "frame and suite must share one signal table"
        );
        match &mut self.engine {
            Engine::PerMonitor(monitors) => {
                for (e, m) in self.entries.iter_mut().zip(monitors) {
                    let ok = m.observe_trusted(frame).map_err(|err| MonitorError {
                        monitor_id: e.meta.id.clone(),
                        source: err,
                    })?;
                    e.tracker.record(ok);
                }
            }
            Engine::Fused(fused) => {
                fused.observe(frame).map_err(|err| MonitorError {
                    monitor_id: self.entries[err.monitor].meta.id.clone(),
                    source: err.source,
                })?;
                for (i, e) in self.entries.iter_mut().enumerate() {
                    e.tracker.record(fused.verdict(i));
                }
            }
        }
        Ok(())
    }

    /// Replays a recorded [`FrameTrace`] from a clean start: the suite
    /// is [`reset`](MonitorSuite::reset), fed every sample, and
    /// [`finish`](MonitorSuite::finish)ed — the offline re-monitoring
    /// path. Recordings captured from a live run (see the harness's
    /// frame-recording experiment option) can be re-monitored with a
    /// *different* goal suite without re-simulating, as long as both
    /// suites share the trace's signal table.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] naming the failing monitor.
    ///
    /// # Panics
    ///
    /// Panics if `trace` indexes a different table than the suite is
    /// bound to.
    pub fn replay(&mut self, trace: &FrameTrace) -> Result<(), MonitorError> {
        assert!(
            Arc::ptr_eq(trace.table(), &self.table),
            "trace and suite must share one signal table"
        );
        self.reset();
        let mut frame = self.table.frame();
        for i in 0..trace.len() {
            trace.read_into(i, &mut frame);
            self.observe(&frame)?;
        }
        self.finish();
        Ok(())
    }

    /// Closes any open violation intervals (call once after the run).
    pub fn finish(&mut self) {
        for e in &mut self.entries {
            e.tracker.finish();
        }
    }

    /// Violation intervals recorded for monitor `id` (goals and subgoals).
    pub fn violations(&self, id: &str) -> Option<&[ViolationInterval]> {
        self.entries
            .iter()
            .find(|e| e.meta.id == id)
            .map(|e| e.tracker.intervals())
    }

    /// Drains the recorded violations into owned storage: one
    /// `(id, intervals)` pair per monitor with at least one interval, in
    /// insertion order. The intervals are *moved* out of the trackers
    /// (which keep running but report empty afterwards), so report
    /// assembly copies nothing per monitor beyond the violating ids —
    /// call [`MonitorSuite::correlate`] first, since correlation reads
    /// the same intervals.
    pub fn take_violations(&mut self) -> Vec<(String, Vec<ViolationInterval>)> {
        let mut out = Vec::new();
        for e in &mut self.entries {
            let intervals = e.tracker.take_intervals();
            if !intervals.is_empty() {
                out.push((e.meta.id.clone(), intervals));
            }
        }
        out
    }

    /// Ids of all top-level goals, in insertion order.
    pub fn goal_ids(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.meta.parent.is_none())
            .map(|e| e.meta.id.as_str())
            .collect()
    }

    /// Ids of the subgoals of `goal_id`, in insertion order.
    pub fn subgoal_ids(&self, goal_id: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.meta.parent.as_deref() == Some(goal_id))
            .map(|e| e.meta.id.as_str())
            .collect()
    }

    /// The `(location, formula)` of a monitor.
    pub fn describe(&self, id: &str) -> Option<(&Location, &Expr)> {
        self.entries
            .iter()
            .find(|e| e.meta.id == id)
            .map(|e| (&e.meta.location, &e.meta.expr))
    }

    /// The monitoring-location matrix: `(id, parent, location)` rows in
    /// insertion order (the shape of thesis Table 5.3). Borrowed views —
    /// rendering or report assembly decides what to copy.
    pub fn location_matrix(&self) -> Vec<(&str, Option<&str>, &Location)> {
        self.entries
            .iter()
            .map(|e| {
                (
                    e.meta.id.as_str(),
                    e.meta.parent.as_deref(),
                    &e.meta.location,
                )
            })
            .collect()
    }

    /// Classifies detections per §5.1.2 with the given correlation
    /// `window` (ticks of slack between subgoal and goal violations).
    pub fn correlate(&self, window: u64) -> CorrelationReport {
        let mut rows = Vec::new();
        for goal in self.entries.iter().filter(|e| e.meta.parent.is_none()) {
            let goal_violations = goal.tracker.intervals();
            let subs: Vec<&Entry> = self
                .entries
                .iter()
                .filter(|e| e.meta.parent.as_deref() == Some(goal.meta.id.as_str()))
                .collect();

            let mut hits = 0usize;
            let mut false_negatives = 0usize;
            for gv in goal_violations {
                let covered = subs.iter().any(|s| {
                    s.tracker
                        .intervals()
                        .iter()
                        .any(|sv| sv.overlaps(gv, window))
                });
                if covered {
                    hits += 1;
                } else {
                    false_negatives += 1;
                }
            }

            let mut false_positives = 0usize;
            let mut per_subgoal = Vec::new();
            for s in &subs {
                let mut sub_fp = 0usize;
                let sub_viol = s.tracker.intervals();
                for sv in sub_viol {
                    let matched = goal_violations.iter().any(|gv| gv.overlaps(sv, window));
                    if !matched {
                        sub_fp += 1;
                    }
                }
                false_positives += sub_fp;
                per_subgoal.push(SubgoalStats {
                    subgoal_id: s.meta.id.clone(),
                    location: s.meta.location.to_string(),
                    violations: sub_viol.len(),
                    false_positives: sub_fp,
                });
            }

            rows.push(CorrelationRow {
                goal_id: goal.meta.id.clone(),
                goal_violations: goal_violations.len(),
                hits,
                false_negatives,
                false_positives,
                subgoals: per_subgoal,
            });
        }
        CorrelationReport { rows }
    }
}

/// The compile-once form of a [`MonitorSuite`]: every goal/subgoal
/// formula of a substrate *family* compiled against the family's shared
/// [`SignalTable`], held as `Arc`-shared immutable programs — both the
/// per-monitor [`CompiledProgram`]s and the suite-level
/// [`FusedSuiteProgram`] that merges every formula into one
/// deduplicated DAG.
///
/// Building a suite parses and resolves ~`O(formula size)` work per
/// monitor; a sweep that rebuilt its suite per cell paid that ×cells.
/// A template is built **once per sweep** (typically via
/// [`MonitorSuite::template`] on the first suite compiled) and
/// [`SuiteTemplate::instantiate`] stamps out a per-cell *fused* suite in
/// O(monitors): Arc clones, two slab allocations, and a `memcpy` of the
/// temporal state cells. [`SuiteTemplate::instantiate_per_monitor`]
/// stamps the reference per-monitor engine instead.
///
/// An instantiated suite is observationally identical to one compiled
/// from scratch — same monitors, same ids, same verdicts — which the
/// workspace's golden sweep tests pin bit-for-bit.
#[derive(Debug, Clone)]
pub struct SuiteTemplate {
    table: Arc<SignalTable>,
    entries: Vec<TemplateEntry>,
    fused: Arc<FusedSuiteProgram>,
}

#[derive(Debug, Clone)]
struct TemplateEntry {
    meta: Arc<EntryMeta>,
    program: Arc<CompiledProgram>,
}

impl SuiteTemplate {
    /// The signal namespace the template's monitors are compiled against.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// Number of monitors (goals + subgoals) in the template.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the template holds no monitors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The suite-level fused program: the deduplicated DAG every
    /// instantiated suite evaluates. Its
    /// [`source_nodes`](FusedSuiteProgram::source_nodes) /
    /// [`unique_nodes`](FusedSuiteProgram::unique_nodes) counts quantify
    /// the cross-monitor sharing (the `repro --grid --json` CSE fields).
    pub fn fused_program(&self) -> &Arc<FusedSuiteProgram> {
        &self.fused
    }

    /// Stamps out a fresh **fused** suite — the production engine: no
    /// parsing, no compilation, no string copies; every monitor verdict
    /// comes from one shared evaluation pass per tick.
    pub fn instantiate(&self) -> MonitorSuite {
        MonitorSuite {
            table: self.table.clone(),
            entries: self.stamp_entries(),
            engine: Engine::Fused(self.fused.instantiate()),
        }
    }

    /// Stamps out a fresh suite on the **per-monitor** reference engine —
    /// each goal evaluated by its own [`CompiledMonitor`]. Verdicts are
    /// identical to [`SuiteTemplate::instantiate`]; this path exists for
    /// equivalence tests and benchmarks of the fused engine.
    pub fn instantiate_per_monitor(&self) -> MonitorSuite {
        MonitorSuite {
            table: self.table.clone(),
            entries: self.stamp_entries(),
            engine: Engine::PerMonitor(
                self.entries
                    .iter()
                    .map(|t| t.program.instantiate())
                    .collect(),
            ),
        }
    }

    fn stamp_entries(&self) -> Vec<Entry> {
        self.entries
            .iter()
            .map(|t| Entry {
                meta: Arc::clone(&t.meta),
                tracker: IntervalTracker::new(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::parse;

    fn table() -> Arc<SignalTable> {
        let mut b = SignalTable::builder();
        b.bool("g");
        b.bool("s");
        b.finish()
    }

    fn suite() -> MonitorSuite {
        let mut m = MonitorSuite::new(table());
        m.add_goal("G", Location::new("System"), parse("g").unwrap())
            .unwrap();
        m.add_subgoal("G.A", "G", Location::new("Sub"), parse("s").unwrap())
            .unwrap();
        m
    }

    fn observe(m: &mut MonitorSuite, goal_ok: bool, sub_ok: bool) {
        let mut f = m.table().clone().frame();
        f.set_named("g", goal_ok);
        f.set_named("s", sub_ok);
        m.observe(&f).unwrap();
    }

    #[test]
    fn hit_when_goal_and_subgoal_overlap() {
        let mut m = suite();
        for (g, s) in [(true, true), (false, false), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (1, 0, 0)
        );
    }

    #[test]
    fn false_negative_when_goal_fires_alone() {
        let mut m = suite();
        for (g, s) in [(true, true), (false, true), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (0, 1, 0)
        );
    }

    #[test]
    fn false_positive_when_subgoal_fires_alone() {
        let mut m = suite();
        for (g, s) in [(true, true), (true, false), (true, true)] {
            observe(&mut m, g, s);
        }
        m.finish();
        let r = m.correlate(0);
        let row = r.for_goal("G").unwrap();
        assert_eq!(
            (row.hits, row.false_negatives, row.false_positives),
            (0, 0, 1)
        );
        assert_eq!(row.subgoals[0].false_positives, 1);
    }

    #[test]
    fn window_turns_near_miss_into_hit() {
        let mut m = suite();
        // Subgoal violated at tick 1, goal at tick 3: 1 tick apart.
        for (g, s) in [
            (true, true),
            (true, false),
            (true, true),
            (false, true),
            (true, true),
        ] {
            observe(&mut m, g, s);
        }
        m.finish();
        assert_eq!(m.correlate(0).for_goal("G").unwrap().hits, 0);
        assert_eq!(m.correlate(2).for_goal("G").unwrap().hits, 1);
        assert_eq!(m.correlate(2).for_goal("G").unwrap().false_positives, 0);
    }

    #[test]
    fn violations_and_matrix_are_reported() {
        let mut m = suite();
        observe(&mut m, false, true);
        m.finish();
        assert_eq!(m.violations("G").unwrap().len(), 1);
        assert_eq!(m.violations("G.A").unwrap().len(), 0);
        assert!(m.violations("missing").is_none());
        let matrix = m.location_matrix();
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[1].1, Some("G"));
        assert_eq!(m.goal_ids(), vec!["G"]);
        assert_eq!(m.subgoal_ids("G"), vec!["G.A"]);
    }

    #[test]
    fn take_violations_drains_once_in_insertion_order() {
        let mut m = suite();
        observe(&mut m, false, false);
        observe(&mut m, true, true);
        m.finish();
        let report = m.correlate(0);
        assert_eq!(report.for_goal("G").unwrap().hits, 1);
        let taken = m.take_violations();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].0, "G");
        assert_eq!(taken[0].1, vec![ViolationInterval::new(0, 1)]);
        assert_eq!(taken[1].0, "G.A");
        // Drained: the trackers now report empty.
        assert!(m.take_violations().is_empty());
        assert!(m.violations("G").unwrap().is_empty());
    }

    /// Runs the frames through a suite and returns its drained
    /// violations + classification — the observable outcome of a run.
    fn outcome(mut m: MonitorSuite, frames: &[(bool, bool)]) -> (Vec<(String, usize)>, usize) {
        for &(g, s) in frames {
            observe(&mut m, g, s);
        }
        m.finish();
        let hits = m.correlate(0).for_goal("G").unwrap().hits;
        let violations = m
            .take_violations()
            .into_iter()
            .map(|(id, v)| (id, v.len()))
            .collect();
        (violations, hits)
    }

    #[test]
    fn template_instantiation_matches_full_compilation() {
        let template = suite().template();
        assert_eq!(template.len(), 2);
        assert!(!template.is_empty());
        let frames = [(true, true), (false, false), (true, false)];
        let compiled = outcome(suite(), &frames);
        let instantiated = outcome(template.instantiate(), &frames);
        assert_eq!(instantiated, compiled);
        // Instantiation is repeatable: each instance starts clean.
        assert_eq!(outcome(template.instantiate(), &frames), compiled);
    }

    #[test]
    fn fused_and_per_monitor_engines_agree() {
        let template = suite().template();
        let fused = template.instantiate();
        let per_monitor = template.instantiate_per_monitor();
        assert!(fused.is_fused());
        assert!(!per_monitor.is_fused());
        assert!(!suite().is_fused(), "authored suites run per-monitor");
        let frames = [
            (true, true),
            (false, false),
            (true, false),
            (false, true),
            (true, true),
        ];
        assert_eq!(outcome(fused, &frames), outcome(per_monitor, &frames));
    }

    #[test]
    fn fused_template_shares_subformulas_across_monitors() {
        let mut m = MonitorSuite::new(table());
        m.add_goal("G", Location::new("System"), parse("g && s").unwrap())
            .unwrap();
        m.add_subgoal("G.A", "G", Location::new("Sub"), parse("s && g").unwrap())
            .unwrap();
        m.add_subgoal("G.B", "G", Location::new("Sub"), parse("g && s").unwrap())
            .unwrap();
        let template = m.template();
        let program = template.fused_program();
        // g, s, g && s, s && g — the duplicate third formula is free.
        assert_eq!(program.unique_nodes(), 4);
        assert_eq!(program.source_nodes(), 9);
        assert_eq!(program.roots(), 3);
    }

    #[test]
    fn templating_a_fused_suite_round_trips() {
        // template() on a fused (template-instantiated) suite rebuilds
        // the per-monitor programs from the shared metas.
        let template = suite().template();
        let retemplated = template.instantiate().template();
        let frames = [(true, true), (false, true), (true, false)];
        assert_eq!(
            outcome(retemplated.instantiate(), &frames),
            outcome(suite(), &frames)
        );
        assert_eq!(
            outcome(retemplated.instantiate_per_monitor(), &frames),
            outcome(suite(), &frames)
        );
    }

    #[test]
    fn replay_matches_live_observation() {
        use esafe_logic::FrameTrace;
        let frames = [(true, true), (false, false), (true, false), (false, true)];
        // Record the observed frames as a live run would.
        let t = table();
        let mut shared = MonitorSuite::new(t.clone());
        shared
            .add_goal("G", Location::new("System"), parse("g").unwrap())
            .unwrap();
        shared
            .add_subgoal("G.A", "G", Location::new("Sub"), parse("s").unwrap())
            .unwrap();
        let template = shared.template();
        let mut trace = FrameTrace::new(&t, 1);
        let mut frame = t.frame();
        for &(g, s) in &frames {
            frame.set_named("g", g);
            frame.set_named("s", s);
            trace.push(&frame);
        }
        let live = outcome(template.instantiate(), &frames);
        // Offline: replay the recording through a fresh fused suite —
        // dirty it first to prove replay resets.
        let mut offline = template.instantiate();
        observe(&mut offline, false, false);
        offline.replay(&trace).unwrap();
        let hits = offline.correlate(0).for_goal("G").unwrap().hits;
        let violations: Vec<(String, usize)> = offline
            .take_violations()
            .into_iter()
            .map(|(id, v)| (id, v.len()))
            .collect();
        assert_eq!((violations, hits), live);
    }

    #[test]
    #[should_panic(expected = "cannot add monitors to a fused suite")]
    fn fused_suites_reject_incremental_authoring() {
        let mut fused = suite().template().instantiate();
        let _ = fused.add_goal("H", Location::new("System"), parse("g").unwrap());
    }

    #[test]
    fn reset_suite_behaves_like_a_fresh_instance() {
        let template = suite().template();
        let frames = [(false, true), (true, true), (true, false)];
        let mut pooled = template.instantiate();
        // Dirty the pooled suite with an unrelated run, then reset.
        for &(g, s) in &[(false, false), (false, false)] {
            observe(&mut pooled, g, s);
        }
        pooled.finish();
        pooled.reset();
        let reused = outcome(pooled, &frames);
        assert_eq!(reused, outcome(template.instantiate(), &frames));
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn subgoal_requires_parent() {
        let mut m = MonitorSuite::new(table());
        m.add_subgoal("X.A", "X", Location::new("L"), parse("p").unwrap())
            .unwrap();
    }

    #[test]
    fn observe_error_names_the_monitor() {
        let mut m = suite();
        let empty = m.table().clone().frame();
        let err = m.observe(&empty).unwrap_err();
        assert_eq!(err.monitor_id, "G");
        assert!(err.to_string().contains("monitor `G`"));
    }

    #[test]
    fn unknown_signal_fails_at_add_time() {
        let mut m = MonitorSuite::new(table());
        assert!(matches!(
            m.add_goal("X", Location::new("L"), parse("not_declared").unwrap()),
            Err(EvalError::UnknownSignal { .. })
        ));
    }
}
