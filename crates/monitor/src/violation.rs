//! Violation intervals: contiguous runs of ticks where a goal was false.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open interval `[start_tick, end_tick)` during which a monitored
/// goal evaluated false.
///
/// The thesis reports violations exactly this way ("vehicle jerk was
/// exceeded six times, for 8, 2, 1, 4, 6, and 1 ms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ViolationInterval {
    /// First tick at which the goal was false.
    pub start_tick: u64,
    /// First tick at which the goal was true again (or the trace length,
    /// for violations still open at the end of monitoring).
    pub end_tick: u64,
}

impl ViolationInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end_tick <= start_tick`.
    pub fn new(start_tick: u64, end_tick: u64) -> Self {
        assert!(end_tick > start_tick, "interval must be non-empty");
        ViolationInterval {
            start_tick,
            end_tick,
        }
    }

    /// Number of ticks the violation lasted.
    pub fn duration_ticks(&self) -> u64 {
        self.end_tick - self.start_tick
    }

    /// Whether this interval intersects `other` when each is widened by
    /// `window` ticks on both sides. The correlation window absorbs the
    /// actuation/communication delays between a subsystem's subgoal
    /// violation and the system-level consequence (thesis §5.1.2).
    pub fn overlaps(&self, other: &ViolationInterval, window: u64) -> bool {
        let a_start = self.start_tick.saturating_sub(window);
        let a_end = self.end_tick.saturating_add(window);
        other.start_tick < a_end && a_start < other.end_tick
    }
}

impl fmt::Display for ViolationInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}) ({} ticks)",
            self.start_tick,
            self.end_tick,
            self.duration_ticks()
        )
    }
}

/// Accumulates per-tick truth values into violation intervals.
#[derive(Debug, Clone, Default)]
pub struct IntervalTracker {
    open_since: Option<u64>,
    closed: Vec<ViolationInterval>,
    tick: u64,
}

impl IntervalTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the goal's truth at the next tick.
    pub fn record(&mut self, satisfied: bool) {
        match (satisfied, self.open_since) {
            (false, None) => self.open_since = Some(self.tick),
            (true, Some(start)) => {
                self.closed.push(ViolationInterval::new(start, self.tick));
                self.open_since = None;
            }
            _ => {}
        }
        self.tick += 1;
    }

    /// Closes any open violation at the current tick.
    pub fn finish(&mut self) {
        if let Some(start) = self.open_since.take() {
            if self.tick > start {
                self.closed.push(ViolationInterval::new(start, self.tick));
            }
        }
    }

    /// Opens a violation at an absolute `tick` (no-op if one is already
    /// open) — the transition-driven interface batched recording uses:
    /// instead of one [`record`](IntervalTracker::record) call per tick,
    /// the batch diffs whole verdict rows and touches the tracker only
    /// at a true→false edge.
    pub fn open_at(&mut self, tick: u64) {
        if self.open_since.is_none() {
            self.open_since = Some(tick);
        }
    }

    /// Closes the open violation at an absolute `tick` (no-op if none is
    /// open) — the false→true edge counterpart of
    /// [`open_at`](IntervalTracker::open_at).
    pub fn close_at(&mut self, tick: u64) {
        if let Some(start) = self.open_since.take() {
            if tick > start {
                self.closed.push(ViolationInterval::new(start, tick));
            }
        }
    }

    /// Advances the tick cursor without recording (never rewinds).
    /// Transition-driven recording leaves the cursor stale between
    /// edges, so it syncs the clock this way before
    /// [`finish`](IntervalTracker::finish) closes a still-open interval
    /// at the right tick.
    pub fn advance_to(&mut self, tick: u64) {
        self.tick = self.tick.max(tick);
    }

    /// The closed violation intervals recorded so far.
    pub fn intervals(&self) -> &[ViolationInterval] {
        &self.closed
    }

    /// Moves the closed intervals out, leaving the tracker recording
    /// (tick position and any open violation are untouched) but with an
    /// empty interval list — the drain report assembly uses so no
    /// interval is ever copied.
    pub fn take_intervals(&mut self) -> Vec<ViolationInterval> {
        std::mem::take(&mut self.closed)
    }

    /// Returns the tracker to its initial state in place, keeping the
    /// interval buffer's capacity for reuse across pooled runs.
    pub fn reset(&mut self) {
        self.open_since = None;
        self.closed.clear();
        self.tick = 0;
    }

    /// Whether a violation is currently open.
    pub fn in_violation(&self) -> bool {
        self.open_since.is_some()
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_builds_intervals() {
        let mut t = IntervalTracker::new();
        for ok in [true, false, false, true, false, true] {
            t.record(ok);
        }
        t.finish();
        assert_eq!(
            t.intervals(),
            &[ViolationInterval::new(1, 3), ViolationInterval::new(4, 5)]
        );
    }

    #[test]
    fn finish_closes_open_interval() {
        let mut t = IntervalTracker::new();
        for ok in [true, false, false] {
            t.record(ok);
        }
        assert!(t.in_violation());
        t.finish();
        assert_eq!(t.intervals(), &[ViolationInterval::new(1, 3)]);
        assert!(!t.in_violation());
    }

    #[test]
    fn all_satisfied_gives_no_intervals() {
        let mut t = IntervalTracker::new();
        for _ in 0..5 {
            t.record(true);
        }
        t.finish();
        assert!(t.intervals().is_empty());
        assert_eq!(t.ticks(), 5);
    }

    #[test]
    fn overlap_with_window() {
        let a = ViolationInterval::new(10, 12);
        let b = ViolationInterval::new(14, 16);
        // Last violating tick of `a` is 11; first of `b` is 14 — 3 apart.
        assert!(!a.overlaps(&b, 0));
        assert!(!a.overlaps(&b, 2));
        assert!(a.overlaps(&b, 3));
        assert!(b.overlaps(&a, 3)); // symmetric
        let c = ViolationInterval::new(11, 13);
        assert!(a.overlaps(&c, 0));
    }

    #[test]
    fn duration_and_display() {
        let v = ViolationInterval::new(5, 13);
        assert_eq!(v.duration_ticks(), 8);
        assert_eq!(v.to_string(), "[5, 13) (8 ticks)");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_rejected() {
        let _ = ViolationInterval::new(3, 3);
    }
}
