//! Correlation reports and composability estimation (thesis §3.4, §5.1.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-subgoal detection statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubgoalStats {
    /// The subgoal's id (e.g. `1B`).
    pub subgoal_id: String,
    /// Where it was monitored (e.g. `CA`).
    pub location: String,
    /// Total subgoal violation intervals.
    pub violations: usize,
    /// Violations with no corresponding parent-goal violation.
    pub false_positives: usize,
}

/// Classification of one parent goal's detections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrelationRow {
    /// The parent goal's id.
    pub goal_id: String,
    /// Total parent-goal violation intervals.
    pub goal_violations: usize,
    /// Parent violations with at least one corresponding subgoal violation.
    pub hits: usize,
    /// Parent violations with none — evidence of residual emergence `X`.
    pub false_negatives: usize,
    /// Subgoal violations with no parent violation — evidence of
    /// restriction or redundancy (`Y`).
    pub false_positives: usize,
    /// Per-subgoal breakdown.
    pub subgoals: Vec<SubgoalStats>,
}

impl CorrelationRow {
    /// Fraction of parent violations the subgoals detected (1.0 when the
    /// parent never fired).
    pub fn detection_rate(&self) -> f64 {
        if self.goal_violations == 0 {
            1.0
        } else {
            self.hits as f64 / self.goal_violations as f64
        }
    }

    /// §3.4: false negatives indicate the decomposition is at best
    /// *partially* composable — unknown/unrealizable subgoals (`X`) caused
    /// parent violations the subgoals could not see.
    pub fn shows_residual_emergence(&self) -> bool {
        self.false_negatives > 0
    }

    /// §3.4: false positives indicate restrictive subgoals or redundant
    /// coverage — the subgoals flagged states the parent tolerated.
    pub fn shows_restriction_or_redundancy(&self) -> bool {
        self.false_positives > 0
    }
}

/// The full classification across all goals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorrelationReport {
    /// One row per parent goal, in insertion order.
    pub rows: Vec<CorrelationRow>,
}

impl CorrelationReport {
    /// The row for a given goal id.
    pub fn for_goal(&self, goal_id: &str) -> Option<&CorrelationRow> {
        self.rows.iter().find(|r| r.goal_id == goal_id)
    }

    /// Sum of hits across goals.
    pub fn total_hits(&self) -> usize {
        self.rows.iter().map(|r| r.hits).sum()
    }

    /// Sum of false negatives across goals.
    pub fn total_false_negatives(&self) -> usize {
        self.rows.iter().map(|r| r.false_negatives).sum()
    }

    /// Sum of false positives across goals.
    pub fn total_false_positives(&self) -> usize {
        self.rows.iter().map(|r| r.false_positives).sum()
    }

    /// Whether any goal showed a violation at all.
    pub fn any_violations(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.goal_violations > 0 || r.false_positives > 0)
    }
}

impl fmt::Display for CorrelationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>10} {:>6} {:>8} {:>8}",
            "goal", "violations", "hits", "false-", "false+"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>10} {:>6} {:>8} {:>8}",
                r.goal_id, r.goal_violations, r.hits, r.false_negatives, r.false_positives
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(goal_violations: usize, hits: usize, fns: usize, fps: usize) -> CorrelationRow {
        CorrelationRow {
            goal_id: "G".into(),
            goal_violations,
            hits,
            false_negatives: fns,
            false_positives: fps,
            subgoals: vec![],
        }
    }

    #[test]
    fn detection_rate_handles_zero_violations() {
        assert_eq!(row(0, 0, 0, 0).detection_rate(), 1.0);
        assert_eq!(row(4, 1, 3, 0).detection_rate(), 0.25);
    }

    #[test]
    fn emergence_indicators() {
        assert!(row(2, 1, 1, 0).shows_residual_emergence());
        assert!(!row(2, 2, 0, 0).shows_residual_emergence());
        assert!(row(0, 0, 0, 3).shows_restriction_or_redundancy());
    }

    #[test]
    fn report_totals() {
        let report = CorrelationReport {
            rows: vec![row(2, 1, 1, 0), row(0, 0, 0, 2)],
        };
        assert_eq!(report.total_hits(), 1);
        assert_eq!(report.total_false_negatives(), 1);
        assert_eq!(report.total_false_positives(), 2);
        assert!(report.any_violations());
        assert!(report.for_goal("G").is_some());
        assert!(report.for_goal("H").is_none());
    }

    #[test]
    fn display_renders_table() {
        let report = CorrelationReport {
            rows: vec![row(1, 1, 0, 0)],
        };
        let text = report.to_string();
        assert!(text.contains("goal"));
        assert!(text.lines().count() >= 2);
    }
}
