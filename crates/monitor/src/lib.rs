//! Hierarchical run-time safety-goal monitoring (thesis Chapter 5, §5.1.2).
//!
//! The thesis's third contribution: monitor system safety goals *and* the
//! ICPA-derived subsystem subgoals simultaneously at run time, then classify
//! each detection:
//!
//! * **hit** — a goal violation with a corresponding subgoal violation;
//! * **false positive** — a subgoal violation with no corresponding goal
//!   violation (evidence of restrictive subgoals or redundant coverage —
//!   the angel `Y` of eq. 3.23);
//! * **false negative** — a goal violation with no corresponding subgoal
//!   violation (evidence of residual emergence — the demon `X` of
//!   eq. 3.14).
//!
//! # Example
//!
//! ```
//! use esafe_monitor::{MonitorSuite, Location};
//! use esafe_logic::{parse, State};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut suite = MonitorSuite::new();
//! suite.add_goal("1", Location::new("Vehicle"), parse("accel <= 2.0")?)?;
//! suite.add_subgoal("1A", "1", Location::new("Arbiter"), parse("cmd <= 2.0")?)?;
//!
//! // Subgoal violated but goal satisfied: a false positive.
//! suite.observe(&State::new().with_real("accel", 1.0).with_real("cmd", 3.0))?;
//! suite.finish();
//! let report = suite.correlate(0);
//! assert_eq!(report.for_goal("1").unwrap().false_positives, 1);
//! # Ok(())
//! # }
//! ```

pub mod correlate;
pub mod suite;
pub mod violation;

pub use correlate::{CorrelationReport, CorrelationRow, SubgoalStats};
pub use suite::{Location, MonitorError, MonitorSuite};
pub use violation::ViolationInterval;
