//! Hierarchical run-time safety-goal monitoring (thesis Chapter 5, §5.1.2).
//!
//! The thesis's third contribution: monitor system safety goals *and* the
//! ICPA-derived subsystem subgoals simultaneously at run time, then classify
//! each detection:
//!
//! * **hit** — a goal violation with a corresponding subgoal violation;
//! * **false positive** — a subgoal violation with no corresponding goal
//!   violation (evidence of restrictive subgoals or redundant coverage —
//!   the angel `Y` of eq. 3.23);
//! * **false negative** — a goal violation with no corresponding subgoal
//!   violation (evidence of residual emergence — the demon `X` of
//!   eq. 3.14).
//!
//! Suites are bound to a shared [`SignalTable`](esafe_logic::SignalTable):
//! every goal formula compiles its variable references to dense signal ids
//! once, and each tick's sample is a [`Frame`](esafe_logic::Frame) — the
//! per-tick observe path performs no string lookups and no allocation.
//!
//! # Example
//!
//! ```
//! use esafe_monitor::{MonitorSuite, Location};
//! use esafe_logic::{parse, SignalTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SignalTable::builder();
//! let accel = b.real("accel");
//! let cmd = b.real("cmd");
//! let table = b.finish();
//!
//! let mut suite = MonitorSuite::new(table.clone());
//! suite.add_goal("1", Location::new("Vehicle"), parse("accel <= 2.0")?)?;
//! suite.add_subgoal("1A", "1", Location::new("Arbiter"), parse("cmd <= 2.0")?)?;
//!
//! // Subgoal violated but goal satisfied: a false positive.
//! let mut frame = table.frame();
//! frame.set(accel, 1.0);
//! frame.set(cmd, 3.0);
//! suite.observe(&frame)?;
//! suite.finish();
//! let report = suite.correlate(0);
//! assert_eq!(report.for_goal("1").unwrap().false_positives, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod correlate;
pub mod suite;
pub mod violation;

pub use correlate::{CorrelationReport, CorrelationRow, SubgoalStats};
pub use suite::{
    BatchMonitorError, Location, MonitorError, MonitorSuite, MonitorSuiteBatch, SuiteTemplate,
};
pub use violation::{IntervalTracker, ViolationInterval};
