//! **esafe-serve** — a sharded streaming monitor service for fleets of
//! live runs.
//!
//! The thesis's run-time goal monitors (Ch. 5) watch *one* run at a
//! time; the batched engine (`esafe-monitor`'s [`MonitorSuiteBatch`])
//! evaluates a whole stripe of runs per pass but assumes the stripe is
//! known up front. This crate turns that engine into a *service*: a
//! long-running, multi-worker process that accepts many concurrent
//! signal streams — a fleet of live elevators, vehicles, or sweep
//! workers — and monitors each against the goal suite of its signal
//! family.
//!
//! # Architecture
//!
//! ```text
//!                MonitorService
//!   streams ──┐  ┌───────────────────────────────┐
//!   (mpsc/TCP)│  │ shard 0 ── SignalTable A      │
//!             ├──▶  worker thread                │   bounded
//!             │  │   ShardCore                   │   report
//!             │  │    ├ LaneAllocator (claim /   ├──▶ channel
//!             │  │    │  retire / reclaim)       │  (violations,
//!             ├──▶   ├ FrameBatch slab          │   summaries,
//!             │  │    ├ active suite generation  │   lifecycle)
//!             │  │    └ draining generations     │
//!             │  ├───────────────────────────────┤
//!             └──▶ shard 1 ── SignalTable B ...  │
//!                └───────────────────────────────┘
//! ```
//!
//! * **Sharding** — one worker thread per [`SignalTable`] family;
//!   streams connect to the shard of their table.
//! * **Dynamic lanes** — a connecting stream claims a free lane of the
//!   shard's [`MonitorSuiteBatch`]; a disconnect retires the lane in
//!   place; the next connection reclaims it. The shard advances all
//!   its streams in lockstep waves, one frame per stream per wave.
//! * **Suite lifecycle** — suites load, activate, drain, deactivate,
//!   and unload ([`MonitorService::load_suite`]), so a goal suite can
//!   be hot-swapped on a running shard without dropping streams.
//! * **Reports** — violations flow through one bounded channel with
//!   per-stream provenance: stream id, suite generation, and
//!   stream-local tick intervals.
//! * **Robustness** — the service assumes a *hostile* fleet. Waves
//!   never block on a producer ([`source::Poll`]); stalled streams are
//!   evicted past a deadline; undecodable wire data quarantines only
//!   its own stream ([`tcp::DecodeError`]); a panicking wave is caught
//!   by the shard supervisor, which restarts the shard — degraded,
//!   never dead ([`ReportEvent::ShardRestarted`]). The [`fault`]
//!   module injects exactly these failures deterministically for chaos
//!   testing.
//!
//! Everything is plain std: `mpsc` channels in-process, optional
//! length-prefixed TCP ([`tcp`]) on the wire, no async runtime.
//!
//! [`SignalTable`]: esafe_logic::SignalTable
//! [`MonitorSuiteBatch`]: esafe_monitor::MonitorSuiteBatch

#![warn(missing_docs)]

pub mod fault;
pub mod report;
pub mod service;
pub mod shard;
pub mod source;
pub mod tcp;

pub use fault::{FaultPlan, FaultySource};
pub use report::{
    EvictReason, ReportEvent, ShardId, StreamEviction, StreamId, StreamSummary, StreamViolations,
    ViolationReport,
};
pub use service::{MonitorService, ReportOverflow, ServeError, ServiceConfig, ShardConnector};
pub use shard::{ShardConfig, ShardCore};
pub use source::{frame_channel, ChannelSource, FrameSender, Poll, ReplaySource, StreamSource};
pub use tcp::DecodeError;
