//! Stream ingestion: the [`StreamSource`] trait and the in-process
//! channel transport.
//!
//! A *stream* is one live run's frame sequence. The service pulls
//! frames — one per shard wave — through the [`StreamSource`] trait, so
//! the transport is pluggable: the primary in-process transport is a
//! bounded std [`mpsc`] channel ([`frame_channel`]), the optional wire
//! transport is length-prefixed TCP ([`crate::tcp`]), and benchmarks
//! drive shards directly with an allocation-free [`ReplaySource`].

use esafe_logic::Frame;
use std::sync::mpsc;
use std::sync::Arc;

/// One live run's frame feed, pulled by the owning shard.
///
/// `next_frame` is called once per shard wave and may block until the
/// producer's next frame is available — a shard advances its streams in
/// lockstep, so the wave runs at the pace of its slowest stream.
/// Returning `false` ends the stream: the shard retires its lane,
/// reports its final violations, and reuses the lane for the next
/// connection.
pub trait StreamSource: Send {
    /// Writes the stream's next frame into `frame` and returns `true`,
    /// or returns `false` (leaving `frame` untouched) when the stream
    /// has ended.
    fn next_frame(&mut self, frame: &mut Frame) -> bool;
}

/// The producing half of the in-process transport: send one [`Frame`]
/// per simulated tick. Dropping the sender (or every clone of it) ends
/// the stream cleanly.
#[derive(Debug, Clone)]
pub struct FrameSender {
    tx: mpsc::SyncSender<Frame>,
}

impl FrameSender {
    /// Sends the run's next frame, blocking while the channel is at
    /// capacity (backpressure from a busy shard).
    ///
    /// # Errors
    ///
    /// Returns the frame back if the consuming shard has shut down.
    pub fn send(&self, frame: Frame) -> Result<(), Frame> {
        self.tx.send(frame).map_err(|e| e.0)
    }
}

/// The consuming half of the in-process transport; implements
/// [`StreamSource`] by blocking on the channel.
#[derive(Debug)]
pub struct ChannelSource {
    rx: mpsc::Receiver<Frame>,
}

impl StreamSource for ChannelSource {
    fn next_frame(&mut self, frame: &mut Frame) -> bool {
        match self.rx.recv() {
            Ok(next) => {
                *frame = next;
                true
            }
            Err(_) => false,
        }
    }
}

/// Creates a bounded in-process frame stream: the producer keeps the
/// [`FrameSender`], the [`ChannelSource`] is handed to
/// [`connect`](crate::MonitorService::connect). `capacity` frames may
/// be in flight before [`FrameSender::send`] blocks.
pub fn frame_channel(capacity: usize) -> (FrameSender, ChannelSource) {
    let (tx, rx) = mpsc::sync_channel(capacity);
    (FrameSender { tx }, ChannelSource { rx })
}

/// A non-blocking source replaying a shared recorded trace — the
/// fleet-benchmark workload: thousands of concurrent streams share one
/// `Arc`'d trace, each starting at its own offset, with zero per-tick
/// allocation and no producer threads.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    trace: Arc<Vec<Frame>>,
    cursor: usize,
    remaining: u64,
}

impl ReplaySource {
    /// Creates a replay of `ticks` frames, cycling `trace` from
    /// `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(trace: Arc<Vec<Frame>>, offset: usize, ticks: u64) -> Self {
        assert!(!trace.is_empty(), "a replay needs at least one frame");
        let cursor = offset % trace.len();
        ReplaySource {
            trace,
            cursor,
            remaining: ticks,
        }
    }
}

impl StreamSource for ReplaySource {
    fn next_frame(&mut self, frame: &mut Frame) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        frame.copy_from(&self.trace[self.cursor]);
        self.cursor += 1;
        if self.cursor == self.trace.len() {
            self.cursor = 0;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::SignalTable;

    #[test]
    fn channel_source_delivers_then_ends() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let table = b.finish();
        let (tx, mut src) = frame_channel(4);
        for v in 0..3 {
            let mut f = table.frame();
            f.set(x, f64::from(v));
            tx.send(f).unwrap();
        }
        drop(tx);
        let mut scratch = table.frame();
        for v in 0..3 {
            assert!(src.next_frame(&mut scratch));
            assert_eq!(scratch.real_or(x, -1.0), f64::from(v));
        }
        assert!(
            !src.next_frame(&mut scratch),
            "dropped sender ends the stream"
        );
    }

    #[test]
    fn replay_source_cycles_and_stops() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let table = b.finish();
        let trace: Vec<Frame> = (0..3)
            .map(|v| {
                let mut f = table.frame();
                f.set(x, f64::from(v));
                f
            })
            .collect();
        let mut src = ReplaySource::new(Arc::new(trace), 2, 5);
        let mut scratch = table.frame();
        let mut seen = Vec::new();
        while src.next_frame(&mut scratch) {
            seen.push(scratch.real_or(x, -1.0));
        }
        assert_eq!(seen, vec![2.0, 0.0, 1.0, 2.0, 0.0]);
    }
}
