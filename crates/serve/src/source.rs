//! Stream ingestion: the non-blocking [`StreamSource`] trait and the
//! in-process channel transport.
//!
//! A *stream* is one live run's frame sequence. The service polls
//! frames — one attempt per shard wave — through the [`StreamSource`]
//! trait, so the transport is pluggable: the primary in-process
//! transport is a bounded std [`mpsc`] channel ([`frame_channel`]), the
//! optional wire transport is length-prefixed TCP ([`crate::tcp`]), and
//! benchmarks drive shards directly with an allocation-free
//! [`ReplaySource`].
//!
//! Polling **never blocks**: a source with no frame ready answers
//! [`Poll::Pending`] and the wave moves on without it, so one stalled
//! or malicious producer cannot freeze the shard's other streams. The
//! shard's per-stream stall clock counts consecutive `Pending` waves
//! and evicts the stream once a configured deadline passes (see
//! [`crate::shard::ShardConfig::stall_limit`]).

use esafe_logic::Frame;
use std::sync::mpsc::{self, TryRecvError};
use std::sync::Arc;

/// The outcome of one non-blocking frame poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Poll {
    /// The stream's next frame was written into the caller's buffer.
    Frame,
    /// No frame is available *yet*; the stream is still alive. The wave
    /// skips this stream and its stall clock advances.
    Pending,
    /// The stream ended cleanly: its lane is retired, its final
    /// violations are reported, and the lane is reused.
    End,
    /// The stream produced data the transport could not decode (or hit
    /// a transport-fatal error). The shard *quarantines* the stream —
    /// evicts it with the detail as provenance — without disturbing any
    /// other stream.
    Corrupt(String),
}

/// One live run's frame feed, polled by the owning shard.
///
/// `poll_frame` is called at most once per shard wave and must **not**
/// block: return [`Poll::Pending`] when the next frame is not ready.
/// A shard advances its streams in lockstep waves, but a wave only
/// carries the lanes whose sources yielded a frame — starved lanes are
/// skipped, not waited for.
pub trait StreamSource: Send {
    /// Attempts to write the stream's next frame into `frame`.
    ///
    /// On [`Poll::Frame`] the buffer holds the next frame; on any other
    /// outcome the buffer's contents are unspecified and must not be
    /// observed. After [`Poll::End`] or [`Poll::Corrupt`] the source is
    /// never polled again.
    fn poll_frame(&mut self, frame: &mut Frame) -> Poll;
}

/// The producing half of the in-process transport: send one [`Frame`]
/// per simulated tick. Dropping the sender (or every clone of it) ends
/// the stream cleanly.
#[derive(Debug, Clone)]
pub struct FrameSender {
    tx: mpsc::SyncSender<Frame>,
}

impl FrameSender {
    /// Sends the run's next frame, blocking while the channel is at
    /// capacity (backpressure from a busy shard).
    ///
    /// # Errors
    ///
    /// Returns the frame back if the consuming shard has shut down or
    /// evicted the stream. A producer replaying a recorded run on its
    /// own thread should treat the error as "consumer gone" and end its
    /// replay gracefully rather than unwrapping — the service evicting
    /// a stalled stream, restarting a shard, or shutting down are all
    /// normal lifecycle events, not producer bugs.
    pub fn send(&self, frame: Frame) -> Result<(), Frame> {
        self.tx.send(frame).map_err(|e| e.0)
    }

    /// Replays every frame of `trace` in order, stopping early —
    /// gracefully, without panicking — if the consuming shard goes away
    /// mid-replay. Returns the number of frames delivered.
    pub fn replay<'a>(&self, trace: impl IntoIterator<Item = &'a Frame>) -> usize {
        let mut sent = 0;
        for frame in trace {
            if self.send(frame.clone()).is_err() {
                break;
            }
            sent += 1;
        }
        sent
    }
}

/// The consuming half of the in-process transport; implements
/// [`StreamSource`] by polling the channel.
#[derive(Debug)]
pub struct ChannelSource {
    rx: mpsc::Receiver<Frame>,
}

impl StreamSource for ChannelSource {
    fn poll_frame(&mut self, frame: &mut Frame) -> Poll {
        match self.rx.try_recv() {
            Ok(next) => {
                *frame = next;
                Poll::Frame
            }
            Err(TryRecvError::Empty) => Poll::Pending,
            Err(TryRecvError::Disconnected) => Poll::End,
        }
    }
}

/// Creates a bounded in-process frame stream: the producer keeps the
/// [`FrameSender`], the [`ChannelSource`] is handed to
/// [`connect`](crate::MonitorService::connect). `capacity` frames may
/// be in flight before [`FrameSender::send`] blocks.
pub fn frame_channel(capacity: usize) -> (FrameSender, ChannelSource) {
    let (tx, rx) = mpsc::sync_channel(capacity);
    (FrameSender { tx }, ChannelSource { rx })
}

/// A source replaying a shared recorded trace — the fleet-benchmark
/// workload: thousands of concurrent streams share one `Arc`'d trace,
/// each starting at its own offset, with zero per-tick allocation and
/// no producer threads. Always ready: never answers [`Poll::Pending`].
#[derive(Debug, Clone)]
pub struct ReplaySource {
    trace: Arc<Vec<Frame>>,
    cursor: usize,
    remaining: u64,
}

impl ReplaySource {
    /// Creates a replay of `ticks` frames, cycling `trace` from
    /// `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(trace: Arc<Vec<Frame>>, offset: usize, ticks: u64) -> Self {
        assert!(!trace.is_empty(), "a replay needs at least one frame");
        let cursor = offset % trace.len();
        ReplaySource {
            trace,
            cursor,
            remaining: ticks,
        }
    }
}

impl StreamSource for ReplaySource {
    fn poll_frame(&mut self, frame: &mut Frame) -> Poll {
        if self.remaining == 0 {
            return Poll::End;
        }
        self.remaining -= 1;
        frame.copy_from(&self.trace[self.cursor]);
        self.cursor += 1;
        if self.cursor == self.trace.len() {
            self.cursor = 0;
        }
        Poll::Frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::SignalTable;

    #[test]
    fn channel_source_delivers_then_ends() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let table = b.finish();
        let (tx, mut src) = frame_channel(4);
        for v in 0..3 {
            let mut f = table.frame();
            f.set(x, f64::from(v));
            tx.send(f).unwrap();
        }
        drop(tx);
        let mut scratch = table.frame();
        for v in 0..3 {
            assert_eq!(src.poll_frame(&mut scratch), Poll::Frame);
            assert_eq!(scratch.real_or(x, -1.0), f64::from(v));
        }
        assert_eq!(
            src.poll_frame(&mut scratch),
            Poll::End,
            "dropped sender ends the stream"
        );
    }

    #[test]
    fn channel_source_pends_without_blocking() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let table = b.finish();
        let (tx, mut src) = frame_channel(4);
        let mut scratch = table.frame();
        assert_eq!(
            src.poll_frame(&mut scratch),
            Poll::Pending,
            "an empty live channel must answer Pending, not block"
        );
        let mut f = table.frame();
        f.set(x, 7.0);
        tx.send(f).unwrap();
        assert_eq!(src.poll_frame(&mut scratch), Poll::Frame);
        assert_eq!(scratch.real_or(x, -1.0), 7.0);
        assert_eq!(src.poll_frame(&mut scratch), Poll::Pending);
    }

    #[test]
    fn sender_replay_ends_gracefully_when_receiver_drops() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let table = b.finish();
        let (tx, src) = frame_channel(2);
        let trace: Vec<Frame> = (0..8)
            .map(|v| {
                let mut f = table.frame();
                f.set(x, f64::from(v));
                f
            })
            .collect();
        // The consumer goes away mid-replay (eviction, restart, or
        // shutdown): the producer must stop, not panic.
        drop(src);
        let delivered = tx.replay(&trace);
        assert!(
            delivered <= 2,
            "at most the channel capacity can have been accepted"
        );
    }

    #[test]
    fn replay_source_cycles_and_stops() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let table = b.finish();
        let trace: Vec<Frame> = (0..3)
            .map(|v| {
                let mut f = table.frame();
                f.set(x, f64::from(v));
                f
            })
            .collect();
        let mut src = ReplaySource::new(Arc::new(trace), 2, 5);
        let mut scratch = table.frame();
        let mut seen = Vec::new();
        while src.poll_frame(&mut scratch) == Poll::Frame {
            seen.push(scratch.real_or(x, -1.0));
        }
        assert_eq!(seen, vec![2.0, 0.0, 1.0, 2.0, 0.0]);
    }
}
