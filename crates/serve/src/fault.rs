//! Deterministic fault injection: wrap any [`StreamSource`] in a
//! [`FaultySource`] driven by a [`FaultPlan`], and it misbehaves in
//! exactly the ways a hostile fleet does — stalls, mid-run
//! disconnects, corrupt frames, duplicated and reordered ticks, and
//! (explicitly opted into) in-wave panics.
//!
//! Everything is deterministic: a plan is either built explicitly or
//! derived from a seed ([`FaultPlan::seeded`]) with a splitmix64
//! generator, so a chaos test that fails replays bit-identically from
//! its seed. The injection points mirror the service's degradation
//! paths one-to-one:
//!
//! | injected fault            | expected service reaction            |
//! |---------------------------|--------------------------------------|
//! | stall window              | lane skipped ([`Poll::Pending`]), stall clock, eventual [`EvictReason::Stalled`] |
//! | disconnect                | clean [`Poll::End`], lane retired    |
//! | corrupt frame             | [`Poll::Corrupt`] quarantine, [`EvictReason::Corrupt`] |
//! | duplicate / reorder ticks | monitored as delivered — verdicts shift, nothing crashes |
//! | in-wave panic             | caught by the shard supervisor → restart ([`EvictReason::ShardRestart`]) |
//!
//! [`EvictReason::Stalled`]: crate::report::EvictReason::Stalled
//! [`EvictReason::Corrupt`]: crate::report::EvictReason::Corrupt
//! [`EvictReason::ShardRestart`]: crate::report::EvictReason::ShardRestart

use crate::source::{Poll, StreamSource};
use esafe_logic::Frame;

/// What a [`FaultySource`] does to its inner stream, and when.
///
/// Faults are keyed on two deterministic clocks: the *poll* index
/// (every call to `poll_frame`, i.e. every shard wave that reaches the
/// stream) and the *delivery* index (frames actually handed over). A
/// plan composes freely: a stream can stall, recover, duplicate a tick,
/// and then disconnect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Half-open poll-index windows `[from, from + waves)` during which
    /// the source answers [`Poll::Pending`] without consulting the
    /// inner stream.
    stalls: Vec<(u64, u64)>,
    /// After this many delivered frames, answer [`Poll::End`].
    disconnect_after: Option<u64>,
    /// After this many delivered frames, answer [`Poll::Corrupt`] with
    /// the detail.
    corrupt_after: Option<(u64, String)>,
    /// Panic inside this poll — the "wave takes the worker down"
    /// fault. Never produced by [`FaultPlan::seeded`]; opt in
    /// explicitly.
    panic_at_poll: Option<u64>,
    /// Delivery indices whose frame is delivered twice.
    duplicates: Vec<u64>,
    /// Delivery indices swapped with their successor.
    reorders: Vec<u64>,
}

impl FaultPlan {
    /// A plan with no faults: the wrapped source behaves identically to
    /// the inner one.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Stalls the stream — [`Poll::Pending`] — for `waves` consecutive
    /// polls starting at poll index `from`.
    #[must_use]
    pub fn stall(mut self, from: u64, waves: u64) -> Self {
        self.stalls.push((from, waves));
        self
    }

    /// Ends the stream cleanly after `frames` deliveries — a mid-run
    /// disconnect.
    #[must_use]
    pub fn disconnect_after(mut self, frames: u64) -> Self {
        self.disconnect_after = Some(frames);
        self
    }

    /// Yields a corrupt-transport failure after `frames` deliveries,
    /// with `detail` as the decoder's diagnosis.
    #[must_use]
    pub fn corrupt_after(mut self, frames: u64, detail: &str) -> Self {
        self.corrupt_after = Some((frames, detail.to_string()));
        self
    }

    /// Panics inside poll number `poll` — exercises the shard
    /// supervisor's catch-and-restart path. Not produced by
    /// [`seeded`](FaultPlan::seeded).
    #[must_use]
    pub fn panic_at_poll(mut self, poll: u64) -> Self {
        self.panic_at_poll = Some(poll);
        self
    }

    /// Delivers the frame at delivery index `index` twice.
    #[must_use]
    pub fn duplicate_frame(mut self, index: u64) -> Self {
        self.duplicates.push(index);
        self
    }

    /// Swaps the delivery order of the frames at delivery indices
    /// `index` and `index + 1` (when the successor is ready in the same
    /// poll; otherwise the reorder degenerates to normal order).
    #[must_use]
    pub fn reorder_at(mut self, index: u64) -> Self {
        self.reorders.push(index);
        self
    }

    /// Derives a reproducible hostile plan from `seed`, scaled to a
    /// stream of roughly `horizon` ticks: some mix of a stall window, a
    /// duplicated or reordered tick, and a terminal fault (mid-run
    /// disconnect or corrupt frame). Never injects a panic — a panic
    /// kills the whole shard core, so chaos tests opt into it on one
    /// designated stream via [`panic_at_poll`](FaultPlan::panic_at_poll).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        assert!(horizon > 0, "a seeded plan needs a positive horizon");
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut next = || splitmix64(&mut state);
        let mut plan = FaultPlan::new();
        // Always at least one fault; each kind joins independently.
        let mut faulted = false;
        if next() % 2 == 0 {
            let from = next() % horizon;
            let waves = 1 + next() % horizon.max(2);
            plan = plan.stall(from, waves);
            faulted = true;
        }
        if next() % 3 == 0 {
            plan = plan.duplicate_frame(next() % horizon);
            faulted = true;
        }
        if next() % 3 == 0 {
            plan = plan.reorder_at(next() % horizon);
            faulted = true;
        }
        match next() % 3 {
            0 => plan = plan.disconnect_after(1 + next() % horizon),
            1 => {
                plan = plan.corrupt_after(1 + next() % horizon, "seeded transport corruption");
            }
            _ if !faulted => plan = plan.disconnect_after(1 + next() % horizon),
            _ => {}
        }
        plan
    }
}

/// splitmix64 — the same tiny deterministic generator the harness
/// crates use for seed derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`StreamSource`] adapter that executes a [`FaultPlan`] over an
/// inner source. Healthy until the plan says otherwise; after a
/// terminal fault (disconnect, corrupt) the inner source is never
/// consulted again.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    plan: FaultPlan,
    /// Polls received so far (the wave clock).
    polls: u64,
    /// Frames delivered so far (the delivery clock).
    delivered: u64,
    /// A frame owed to the caller before the inner source is consulted
    /// again (the second half of a duplicate or reorder).
    held: Option<Frame>,
    /// Set once a terminal fault fired.
    finished: bool,
}

impl<S: StreamSource> FaultySource<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultySource {
            inner,
            plan,
            polls: 0,
            delivered: 0,
            held: None,
            finished: false,
        }
    }

    fn deliver(&mut self) -> u64 {
        let index = self.delivered;
        self.delivered += 1;
        index
    }
}

impl<S: StreamSource> StreamSource for FaultySource<S> {
    fn poll_frame(&mut self, frame: &mut Frame) -> Poll {
        let poll = self.polls;
        self.polls += 1;
        if self.plan.panic_at_poll == Some(poll) {
            panic!("injected fault: panic at poll {poll}");
        }
        if self.finished {
            return Poll::End;
        }
        if self
            .plan
            .stalls
            .iter()
            .any(|&(from, waves)| poll >= from && poll - from < waves)
        {
            return Poll::Pending;
        }
        if let Some((at, detail)) = &self.plan.corrupt_after {
            if self.delivered >= *at {
                self.finished = true;
                return Poll::Corrupt(detail.clone());
            }
        }
        if let Some(at) = self.plan.disconnect_after {
            if self.delivered >= at {
                self.finished = true;
                return Poll::End;
            }
        }
        if let Some(held) = self.held.take() {
            frame.copy_from(&held);
            self.deliver();
            return Poll::Frame;
        }
        match self.inner.poll_frame(frame) {
            Poll::Frame => {
                let index = self.deliver();
                if self.plan.duplicates.contains(&index) {
                    self.held = Some(frame.clone());
                } else if self.plan.reorders.contains(&index) {
                    // Try to pull the successor now and emit it first.
                    let first = frame.clone();
                    match self.inner.poll_frame(frame) {
                        Poll::Frame => {
                            self.held = Some(first);
                        }
                        // Successor not ready (or stream over): the
                        // reorder degenerates — put the original back.
                        _ => frame.copy_from(&first),
                    }
                }
                Poll::Frame
            }
            other => {
                if !matches!(other, Poll::Pending) {
                    self.finished = true;
                }
                other
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ReplaySource;
    use esafe_logic::SignalTable;
    use std::sync::Arc;

    fn trace(table: &Arc<SignalTable>, ticks: u64) -> Arc<Vec<Frame>> {
        let x = table.id("x").unwrap();
        Arc::new(
            (0..ticks)
                .map(|v| {
                    let mut f = table.frame();
                    f.set(x, v as f64);
                    f
                })
                .collect(),
        )
    }

    fn drain(source: &mut impl StreamSource, table: &Arc<SignalTable>) -> (Vec<f64>, Poll) {
        let x = table.id("x").unwrap();
        let mut scratch = table.frame();
        let mut seen = Vec::new();
        loop {
            match source.poll_frame(&mut scratch) {
                Poll::Frame => seen.push(scratch.real_or(x, -1.0)),
                Poll::Pending => continue,
                terminal => return (seen, terminal),
            }
        }
    }

    fn table() -> Arc<SignalTable> {
        let mut b = SignalTable::builder();
        b.real("x");
        b.finish()
    }

    #[test]
    fn empty_plan_is_transparent() {
        let table = table();
        let inner = ReplaySource::new(trace(&table, 4), 0, 4);
        let mut faulty = FaultySource::new(inner, FaultPlan::new());
        let (seen, end) = drain(&mut faulty, &table);
        assert_eq!(seen, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(end, Poll::End);
    }

    #[test]
    fn stall_window_answers_pending_then_recovers() {
        let table = table();
        let inner = ReplaySource::new(trace(&table, 3), 0, 3);
        let mut faulty = FaultySource::new(inner, FaultPlan::new().stall(1, 2));
        let mut scratch = table.frame();
        assert_eq!(faulty.poll_frame(&mut scratch), Poll::Frame);
        assert_eq!(faulty.poll_frame(&mut scratch), Poll::Pending);
        assert_eq!(faulty.poll_frame(&mut scratch), Poll::Pending);
        assert_eq!(faulty.poll_frame(&mut scratch), Poll::Frame);
    }

    #[test]
    fn disconnect_and_corrupt_terminate() {
        let table = table();
        let inner = ReplaySource::new(trace(&table, 8), 0, 8);
        let mut faulty = FaultySource::new(inner, FaultPlan::new().disconnect_after(3));
        let (seen, end) = drain(&mut faulty, &table);
        assert_eq!(seen.len(), 3);
        assert_eq!(end, Poll::End);

        let inner = ReplaySource::new(trace(&table, 8), 0, 8);
        let mut faulty = FaultySource::new(inner, FaultPlan::new().corrupt_after(2, "bit flip"));
        let (seen, end) = drain(&mut faulty, &table);
        assert_eq!(seen.len(), 2);
        assert_eq!(end, Poll::Corrupt("bit flip".to_string()));
    }

    #[test]
    fn duplicate_and_reorder_shuffle_deliveries() {
        let table = table();
        let inner = ReplaySource::new(trace(&table, 4), 0, 4);
        let mut faulty = FaultySource::new(inner, FaultPlan::new().duplicate_frame(1));
        let (seen, _) = drain(&mut faulty, &table);
        assert_eq!(seen, vec![0.0, 1.0, 1.0, 2.0, 3.0]);

        let inner = ReplaySource::new(trace(&table, 4), 0, 4);
        let mut faulty = FaultySource::new(inner, FaultPlan::new().reorder_at(1));
        let (seen, _) = drain(&mut faulty, &table);
        assert_eq!(seen, vec![0.0, 2.0, 1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "injected fault: panic at poll 2")]
    fn injected_panic_fires_on_schedule() {
        let table = table();
        let inner = ReplaySource::new(trace(&table, 4), 0, 4);
        let mut faulty = FaultySource::new(inner, FaultPlan::new().panic_at_poll(2));
        let mut scratch = table.frame();
        assert_eq!(faulty.poll_frame(&mut scratch), Poll::Frame);
        assert_eq!(faulty.poll_frame(&mut scratch), Poll::Frame);
        let _ = faulty.poll_frame(&mut scratch);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_always_faulty() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 100);
            let b = FaultPlan::seeded(seed, 100);
            assert_eq!(a, b, "seed {seed} must reproduce");
            assert_ne!(a, FaultPlan::new(), "seed {seed} must inject something");
            assert_eq!(a.panic_at_poll, None, "seeded plans never panic");
        }
    }
}
