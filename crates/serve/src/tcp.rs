//! The optional wire transport: length-prefixed frames over plain
//! [`std::net`] TCP — no async runtime, no external dependencies.
//!
//! # Wire format
//!
//! Each frame is one message: a big-endian `u32` payload length, then
//! the payload —
//!
//! ```text
//! u32  set-signal count
//! per signal:
//!   u16  name length   |  name bytes (UTF-8)
//!   u8   value tag     |  payload
//!        0 = Bool      |  u8 (0/1)
//!        1 = Int       |  i64 LE
//!        2 = Real      |  f64 LE bits
//!        3 = Sym       |  u16 length + UTF-8 bytes
//! ```
//!
//! Signals travel by *name* (and symbols by text), so producer and
//! service only need to agree on the signal namespace, not on interned
//! ids. A connection closing between messages ends the stream cleanly;
//! closing mid-message (or naming an undeclared signal) ends it as an
//! error — which, for the monitoring shard, also just ends the stream.

use crate::service::ShardConnector;
use esafe_logic::{Frame, Value};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_SYM: u8 = 3;

/// Encodes one frame as a length-prefixed message.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let table = frame.table();
    let mut payload = Vec::with_capacity(frame.len() * 16);
    let count = frame.iter().count() as u32;
    payload.extend_from_slice(&count.to_be_bytes());
    for (id, value) in frame.iter() {
        let name = table.name(id).as_bytes();
        payload.extend_from_slice(&(name.len() as u16).to_be_bytes());
        payload.extend_from_slice(name);
        match value {
            Value::Bool(b) => {
                payload.push(TAG_BOOL);
                payload.push(u8::from(b));
            }
            Value::Int(i) => {
                payload.push(TAG_INT);
                payload.extend_from_slice(&i.to_le_bytes());
            }
            Value::Real(r) => {
                payload.push(TAG_REAL);
                payload.extend_from_slice(&r.to_bits().to_le_bytes());
            }
            Value::Sym(s) => {
                payload.push(TAG_SYM);
                let text = s.as_str().as_bytes();
                payload.extend_from_slice(&(text.len() as u16).to_be_bytes());
                payload.extend_from_slice(text);
            }
        }
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&payload)
}

/// Decodes the next message into `frame` (cleared first), resolving
/// signal names against the frame's table. Returns `Ok(false)` on a
/// clean end of stream (EOF at a message boundary).
///
/// # Errors
///
/// `InvalidData` on an undeclared signal name, unknown value tag, or
/// malformed UTF-8; `UnexpectedEof` when the stream ends mid-message.
pub fn read_frame(r: &mut impl Read, frame: &mut Frame) -> io::Result<bool> {
    let mut header = [0u8; 4];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(false);
    }
    let len = u32::from_be_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut cursor = &payload[..];
    let count = u32::from_be_bytes(take(&mut cursor, 4)?.try_into().unwrap());
    frame.clear();
    for _ in 0..count {
        let name_len = u16::from_be_bytes(take(&mut cursor, 2)?.try_into().unwrap()) as usize;
        let name = std::str::from_utf8(take(&mut cursor, name_len)?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let id = frame.table().id(name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("signal `{name}` is not declared in the shard's table"),
            )
        })?;
        let tag = take(&mut cursor, 1)?[0];
        let value = match tag {
            TAG_BOOL => Value::Bool(take(&mut cursor, 1)?[0] != 0),
            TAG_INT => Value::Int(i64::from_le_bytes(
                take(&mut cursor, 8)?.try_into().unwrap(),
            )),
            TAG_REAL => Value::Real(f64::from_bits(u64::from_le_bytes(
                take(&mut cursor, 8)?.try_into().unwrap(),
            ))),
            TAG_SYM => {
                let sym_len =
                    u16::from_be_bytes(take(&mut cursor, 2)?.try_into().unwrap()) as usize;
                let text = std::str::from_utf8(take(&mut cursor, sym_len)?)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                Value::sym(text)
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown value tag {other}"),
                ))
            }
        };
        frame.set(id, value);
    }
    Ok(true)
}

/// `read_exact` that distinguishes EOF-before-any-byte (`Ok(false)`,
/// a clean message boundary) from EOF mid-buffer (`UnexpectedEof`).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(false),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-message",
                ))
            }
            n => filled += n,
        }
    }
    Ok(true)
}

fn take<'a>(cursor: &mut &'a [u8], n: usize) -> io::Result<&'a [u8]> {
    if cursor.len() < n {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "message payload truncated",
        ));
    }
    let (head, rest) = cursor.split_at(n);
    *cursor = rest;
    Ok(head)
}

/// The producing half over TCP: one [`send`](TcpFrameSender::send) per
/// simulated tick. Dropping the sender closes the connection, ending
/// the stream cleanly at the service.
#[derive(Debug)]
pub struct TcpFrameSender {
    writer: BufWriter<TcpStream>,
}

impl TcpFrameSender {
    /// Connects to a serving acceptor.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: std::net::SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpFrameSender {
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one frame, flushed immediately (the consuming shard runs
    /// its streams in lockstep, so frames must not sit in the buffer).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()
    }
}

/// A connected inbound TCP stream as a [`StreamSource`]: each shard
/// wave reads one length-prefixed frame. Any socket error — including
/// an abrupt disconnect mid-message — ends the stream.
///
/// [`StreamSource`]: crate::StreamSource
#[derive(Debug)]
pub struct TcpSource {
    reader: BufReader<TcpStream>,
}

impl TcpSource {
    /// Wraps an accepted connection.
    pub fn new(stream: TcpStream) -> Self {
        TcpSource {
            reader: BufReader::new(stream),
        }
    }
}

impl crate::source::StreamSource for TcpSource {
    fn next_frame(&mut self, frame: &mut Frame) -> bool {
        matches!(read_frame(&mut self.reader, frame), Ok(true))
    }
}

/// A running TCP acceptor: each inbound connection becomes one
/// monitored stream on the connector's shard.
#[derive(Debug)]
pub struct TcpAcceptor {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: JoinHandle<()>,
}

impl TcpAcceptor {
    /// The bound address (useful with a `:0` listener in tests).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the acceptor thread. Streams already
    /// connected are unaffected.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

/// Spawns an acceptor thread on `listener`, registering every inbound
/// connection as a stream via `connector`. The acceptor exits on its
/// own when the shard stops.
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn spawn_acceptor(listener: TcpListener, connector: ShardConnector) -> io::Result<TcpAcceptor> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("esafe-serve-accept".into())
        .spawn(move || {
            for inbound in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = inbound else { continue };
                let _ = stream.set_nodelay(true);
                if connector.connect(Box::new(TcpSource::new(stream))).is_err() {
                    return; // shard gone; stop serving
                }
            }
        })
        .expect("acceptor thread spawns");
    Ok(TcpAcceptor { addr, stop, join })
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::SignalTable;

    #[test]
    fn frame_codec_round_trips_every_value_kind() {
        let mut b = SignalTable::builder();
        let flag = b.bool("flag");
        let count = b.int("count");
        let x = b.real("x");
        let cmd = b.sym("cmd");
        let table = b.finish();
        let mut frame = table.frame();
        frame.set(flag, true);
        frame.set(count, -42i64);
        frame.set(x, 1.5);
        frame.set(cmd, Value::sym("STOP"));

        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        write_frame(&mut wire, &frame).unwrap();

        let mut reader = &wire[..];
        let mut decoded = table.frame();
        assert!(read_frame(&mut reader, &mut decoded).unwrap());
        assert_eq!(decoded, frame);
        decoded.clear();
        assert!(read_frame(&mut reader, &mut decoded).unwrap());
        assert_eq!(decoded, frame);
        assert!(!read_frame(&mut reader, &mut decoded).unwrap(), "clean EOF");
    }

    #[test]
    fn undeclared_signal_is_invalid_data() {
        let mut b = SignalTable::builder();
        b.real("x");
        let sender_table = b.finish();
        let mut b = SignalTable::builder();
        b.real("y");
        let service_table = b.finish();

        let mut frame = sender_table.frame();
        frame.set_named("x", 1.0);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut decoded = service_table.frame();
        let err = read_frame(&mut &wire[..], &mut decoded).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_message_is_unexpected_eof() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let table = b.finish();
        let mut frame = table.frame();
        frame.set(x, 2.0);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        wire.truncate(wire.len() - 3);
        let mut decoded = table.frame();
        let err = read_frame(&mut &wire[..], &mut decoded).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
