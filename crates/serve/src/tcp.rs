//! The optional wire transport: length-prefixed frames over plain
//! [`std::net`] TCP — no async runtime, no external dependencies.
//!
//! # Wire format
//!
//! Each frame is one message: a big-endian `u32` payload length, then
//! the payload —
//!
//! ```text
//! u32  set-signal count
//! per signal:
//!   u16  name length   |  name bytes (UTF-8)
//!   u8   value tag     |  payload
//!        0 = Bool      |  u8 (0/1)
//!        1 = Int       |  i64 LE
//!        2 = Real      |  f64 LE bits
//!        3 = Sym       |  u16 length + UTF-8 bytes
//! ```
//!
//! Signals travel by *name* (and symbols by text), so producer and
//! service only need to agree on the signal namespace, not on interned
//! ids.
//!
//! # Hostile-peer budget
//!
//! Every length field is validated against an explicit budget **before
//! any allocation or loop it sizes**, so a hostile peer cannot make the
//! service allocate from attacker-controlled numbers:
//!
//! * [`MAX_FRAME_BYTES`] caps the message payload (the `u32` prefix is
//!   checked before the payload buffer is sized);
//! * [`MAX_FRAME_SIGNALS`] caps the per-frame signal count (checked
//!   before the decode loop trusts it);
//! * [`MAX_NAME_BYTES`] / [`MAX_SYMBOL_BYTES`] cap the embedded string
//!   fields.
//!
//! A violation is a [`DecodeError`], and for a connected stream it
//! becomes [`Poll::Corrupt`]: the shard *quarantines* that one stream —
//! eviction with the decoder's diagnosis as provenance — and every
//! other stream is untouched.
//!
//! # Non-blocking ingestion
//!
//! [`TcpSource`] reads the socket in non-blocking mode and accumulates
//! partial messages across polls: a slow (or slow-loris) peer yields
//! [`Poll::Pending`], never a blocked shard. The shard's per-stream
//! stall clock counts those pending waves, so a peer that trickles
//! bytes forever is evicted by the ordinary stall deadline
//! ([`ShardConfig::stall_limit`](crate::shard::ShardConfig::stall_limit))
//! — the wire transport needs no separate read timeout.

use crate::service::ShardConnector;
use crate::source::{Poll, StreamSource};
use esafe_logic::{Frame, Value};
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_SYM: u8 = 3;

/// The largest message payload the decoder will buffer, checked against
/// the length prefix *before* the payload allocation. Generous: a frame
/// of [`MAX_FRAME_SIGNALS`] max-size real signals fits with room to
/// spare.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// The most signals one frame may carry, checked before the decode loop
/// trusts the wire's count field.
pub const MAX_FRAME_SIGNALS: u32 = 4096;

/// The longest signal name on the wire.
pub const MAX_NAME_BYTES: usize = 256;

/// The longest symbol value on the wire.
pub const MAX_SYMBOL_BYTES: usize = 4096;

/// Why a wire message failed to decode. Carried to the operator as the
/// `detail` of an [`EvictReason::Corrupt`](crate::report::EvictReason::Corrupt)
/// quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The length prefix exceeds [`MAX_FRAME_BYTES`]; rejected before
    /// the payload buffer is sized.
    FrameTooLarge {
        /// The prefix's claimed payload length.
        len: usize,
    },
    /// The signal count exceeds [`MAX_FRAME_SIGNALS`]; rejected before
    /// the decode loop runs.
    TooManySignals {
        /// The claimed signal count.
        count: u32,
    },
    /// A signal-name length exceeds [`MAX_NAME_BYTES`].
    NameTooLong {
        /// The claimed name length.
        len: usize,
    },
    /// A symbol length exceeds [`MAX_SYMBOL_BYTES`].
    SymbolTooLong {
        /// The claimed symbol length.
        len: usize,
    },
    /// A length field points past the end of the payload.
    Truncated,
    /// A name or symbol is not valid UTF-8.
    BadUtf8,
    /// The named signal is not declared in the shard's table.
    UndeclaredSignal {
        /// The undeclared name.
        name: String,
    },
    /// An unknown value tag.
    UnknownTag {
        /// The tag byte.
        tag: u8,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::FrameTooLarge { len } => write!(
                f,
                "frame payload of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte budget"
            ),
            DecodeError::TooManySignals { count } => write!(
                f,
                "frame claims {count} signals, over the {MAX_FRAME_SIGNALS}-signal budget"
            ),
            DecodeError::NameTooLong { len } => write!(
                f,
                "signal name of {len} bytes exceeds the {MAX_NAME_BYTES}-byte budget"
            ),
            DecodeError::SymbolTooLong { len } => write!(
                f,
                "symbol of {len} bytes exceeds the {MAX_SYMBOL_BYTES}-byte budget"
            ),
            DecodeError::Truncated => write!(f, "message payload truncated"),
            DecodeError::BadUtf8 => write!(f, "name or symbol is not valid UTF-8"),
            DecodeError::UndeclaredSignal { name } => {
                write!(f, "signal `{name}` is not declared in the shard's table")
            }
            DecodeError::UnknownTag { tag } => write!(f, "unknown value tag {tag}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for io::Error {
    fn from(err: DecodeError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, err)
    }
}

/// Encodes one frame as a length-prefixed message.
///
/// # Errors
///
/// `InvalidInput` if the frame would violate the decode budget (a
/// symbol over [`MAX_SYMBOL_BYTES`], a name over [`MAX_NAME_BYTES`],
/// more than [`MAX_FRAME_SIGNALS`] signals, or a payload over
/// [`MAX_FRAME_BYTES`]) — such a message would be rejected by every
/// compliant decoder, so it is never put on the wire. Otherwise
/// propagates writer errors.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let reject = |msg: String| io::Error::new(io::ErrorKind::InvalidInput, msg);
    let table = frame.table();
    let mut payload = Vec::with_capacity(frame.len() * 16);
    let count = frame.iter().count() as u32;
    if count > MAX_FRAME_SIGNALS {
        return Err(reject(format!(
            "frame has {count} signals, over the {MAX_FRAME_SIGNALS}-signal wire budget"
        )));
    }
    payload.extend_from_slice(&count.to_be_bytes());
    for (id, value) in frame.iter() {
        let name = table.name(id).as_bytes();
        if name.len() > MAX_NAME_BYTES {
            return Err(reject(format!(
                "signal name of {} bytes exceeds the {MAX_NAME_BYTES}-byte wire budget",
                name.len()
            )));
        }
        payload.extend_from_slice(&(name.len() as u16).to_be_bytes());
        payload.extend_from_slice(name);
        match value {
            Value::Bool(b) => {
                payload.push(TAG_BOOL);
                payload.push(u8::from(b));
            }
            Value::Int(i) => {
                payload.push(TAG_INT);
                payload.extend_from_slice(&i.to_le_bytes());
            }
            Value::Real(r) => {
                payload.push(TAG_REAL);
                payload.extend_from_slice(&r.to_bits().to_le_bytes());
            }
            Value::Sym(s) => {
                payload.push(TAG_SYM);
                let text = s.as_str().as_bytes();
                if text.len() > MAX_SYMBOL_BYTES {
                    return Err(reject(format!(
                        "symbol of {} bytes exceeds the {MAX_SYMBOL_BYTES}-byte wire budget",
                        text.len()
                    )));
                }
                payload.extend_from_slice(&(text.len() as u16).to_be_bytes());
                payload.extend_from_slice(text);
            }
        }
    }
    if payload.len() > MAX_FRAME_BYTES {
        return Err(reject(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte wire budget",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&payload)
}

/// Decodes one complete message payload into `frame` (cleared first),
/// resolving signal names against the frame's table. Every length field
/// is budget-checked before it sizes a read, so arbitrary payload bytes
/// can never cause a panic or an oversized allocation — only a
/// [`DecodeError`].
///
/// # Errors
///
/// Any [`DecodeError`]; on error the frame's contents are unspecified.
pub fn decode_payload(payload: &[u8], frame: &mut Frame) -> Result<(), DecodeError> {
    let mut cursor = payload;
    let count = u32::from_be_bytes(take(&mut cursor, 4)?.try_into().expect("took 4"));
    if count > MAX_FRAME_SIGNALS {
        return Err(DecodeError::TooManySignals { count });
    }
    frame.clear();
    for _ in 0..count {
        let name_len =
            u16::from_be_bytes(take(&mut cursor, 2)?.try_into().expect("took 2")) as usize;
        if name_len > MAX_NAME_BYTES {
            return Err(DecodeError::NameTooLong { len: name_len });
        }
        let name =
            std::str::from_utf8(take(&mut cursor, name_len)?).map_err(|_| DecodeError::BadUtf8)?;
        let id = frame
            .table()
            .id(name)
            .ok_or_else(|| DecodeError::UndeclaredSignal {
                name: name.to_string(),
            })?;
        let tag = take(&mut cursor, 1)?[0];
        let value = match tag {
            TAG_BOOL => Value::Bool(take(&mut cursor, 1)?[0] != 0),
            TAG_INT => Value::Int(i64::from_le_bytes(
                take(&mut cursor, 8)?.try_into().expect("took 8"),
            )),
            TAG_REAL => Value::Real(f64::from_bits(u64::from_le_bytes(
                take(&mut cursor, 8)?.try_into().expect("took 8"),
            ))),
            TAG_SYM => {
                let sym_len =
                    u16::from_be_bytes(take(&mut cursor, 2)?.try_into().expect("took 2")) as usize;
                if sym_len > MAX_SYMBOL_BYTES {
                    return Err(DecodeError::SymbolTooLong { len: sym_len });
                }
                let text = std::str::from_utf8(take(&mut cursor, sym_len)?)
                    .map_err(|_| DecodeError::BadUtf8)?;
                Value::sym(text)
            }
            other => return Err(DecodeError::UnknownTag { tag: other }),
        };
        frame.set(id, value);
    }
    Ok(())
}

/// Decodes the next message from a blocking reader into `frame`.
/// Returns `Ok(false)` on a clean end of stream (EOF at a message
/// boundary). The tooling-side counterpart of [`TcpSource`]'s
/// non-blocking ingestion; both share [`decode_payload`].
///
/// # Errors
///
/// `InvalidData` wrapping the [`DecodeError`] on a budget violation or
/// malformed payload; `UnexpectedEof` when the stream ends mid-message.
pub fn read_frame(r: &mut impl Read, frame: &mut Frame) -> io::Result<bool> {
    let mut header = [0u8; 4];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(false);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(DecodeError::FrameTooLarge { len }.into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    decode_payload(&payload, frame)?;
    Ok(true)
}

/// `read_exact` that distinguishes EOF-before-any-byte (`Ok(false)`,
/// a clean message boundary) from EOF mid-buffer (`UnexpectedEof`).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(false),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-message",
                ))
            }
            n => filled += n,
        }
    }
    Ok(true)
}

fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if cursor.len() < n {
        return Err(DecodeError::Truncated);
    }
    let (head, rest) = cursor.split_at(n);
    *cursor = rest;
    Ok(head)
}

/// The producing half over TCP: one [`send`](TcpFrameSender::send) per
/// simulated tick. Dropping the sender closes the connection, ending
/// the stream cleanly at the service.
#[derive(Debug)]
pub struct TcpFrameSender {
    writer: BufWriter<TcpStream>,
}

impl TcpFrameSender {
    /// Connects to a serving acceptor.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: std::net::SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpFrameSender {
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one frame, flushed immediately (the consuming shard runs
    /// its streams in lockstep, so frames must not sit in the buffer).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()
    }
}

/// Where the source is in the current wire message.
#[derive(Debug)]
enum WireStage {
    /// Accumulating the 4-byte length prefix.
    Header,
    /// Accumulating a payload of the already-validated length.
    Payload,
    /// `End` or `Corrupt` was returned; the source is inert.
    Done,
}

/// A connected inbound TCP stream as a non-blocking [`StreamSource`]:
/// the socket is in non-blocking mode and each poll reads whatever
/// bytes are available, accumulating partial messages across waves.
///
/// * a complete message decodes into the wave's frame ([`Poll::Frame`]);
/// * no complete message yet is [`Poll::Pending`] — the shard's stall
///   clock handles peers that trickle or go quiet;
/// * EOF at a message boundary is a clean [`Poll::End`];
/// * EOF mid-message, a socket error, a length prefix over budget, or
///   an undecodable payload is [`Poll::Corrupt`] with the diagnosis —
///   the shard quarantines this stream and no other.
#[derive(Debug)]
pub struct TcpSource {
    stream: TcpStream,
    stage: WireStage,
    /// The accumulation buffer for the current stage (header bytes,
    /// then payload bytes); `filled` of `buf.len()` are valid.
    buf: Vec<u8>,
    filled: usize,
}

impl TcpSource {
    /// Wraps an accepted connection, switching it to non-blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` failure.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        Ok(TcpSource {
            stream,
            stage: WireStage::Header,
            buf: vec![0u8; 4],
            filled: 0,
        })
    }

    /// Reads available bytes into the current stage's buffer. Returns
    /// `Some(poll)` when polling must stop (pending, end, or corrupt);
    /// `None` when the stage's buffer is complete.
    fn fill_stage(&mut self) -> Option<Poll> {
        while self.filled < self.buf.len() {
            match self.stream.read(&mut self.buf[self.filled..]) {
                Ok(0) => {
                    return if self.filled == 0 && matches!(self.stage, WireStage::Header) {
                        self.stage = WireStage::Done;
                        Some(Poll::End)
                    } else {
                        self.stage = WireStage::Done;
                        Some(Poll::Corrupt("connection closed mid-message".to_string()))
                    };
                }
                Ok(n) => self.filled += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Some(Poll::Pending),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.stage = WireStage::Done;
                    return Some(Poll::Corrupt(format!("socket error: {e}")));
                }
            }
        }
        None
    }
}

impl StreamSource for TcpSource {
    fn poll_frame(&mut self, frame: &mut Frame) -> Poll {
        loop {
            match self.stage {
                WireStage::Done => return Poll::End,
                WireStage::Header => {
                    if let Some(poll) = self.fill_stage() {
                        return poll;
                    }
                    let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4-byte header"))
                        as usize;
                    // Budget check BEFORE the attacker-sized resize.
                    if len > MAX_FRAME_BYTES {
                        self.stage = WireStage::Done;
                        return Poll::Corrupt(DecodeError::FrameTooLarge { len }.to_string());
                    }
                    self.stage = WireStage::Payload;
                    self.buf.clear();
                    self.buf.resize(len, 0);
                    self.filled = 0;
                }
                WireStage::Payload => {
                    if let Some(poll) = self.fill_stage() {
                        return poll;
                    }
                    let decoded = decode_payload(&self.buf, frame);
                    self.stage = WireStage::Header;
                    self.buf.clear();
                    self.buf.resize(4, 0);
                    self.filled = 0;
                    return match decoded {
                        Ok(()) => Poll::Frame,
                        Err(err) => {
                            self.stage = WireStage::Done;
                            Poll::Corrupt(err.to_string())
                        }
                    };
                }
            }
        }
    }
}

/// A running TCP acceptor: each inbound connection becomes one
/// monitored stream on the connector's shard.
#[derive(Debug)]
pub struct TcpAcceptor {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: JoinHandle<()>,
}

impl TcpAcceptor {
    /// The bound address (useful with a `:0` listener in tests).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the acceptor thread. Streams already
    /// connected are unaffected.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

/// Spawns an acceptor thread on `listener`, registering every inbound
/// connection as a stream via `connector`. The acceptor exits on its
/// own when the shard stops.
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn spawn_acceptor(listener: TcpListener, connector: ShardConnector) -> io::Result<TcpAcceptor> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("esafe-serve-accept".into())
        .spawn(move || {
            for inbound in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = inbound else { continue };
                let _ = stream.set_nodelay(true);
                let Ok(source) = TcpSource::new(stream) else {
                    continue; // a socket we cannot configure is dropped
                };
                if connector.connect(Box::new(source)).is_err() {
                    return; // shard gone; stop serving
                }
            }
        })
        .expect("acceptor thread spawns");
    Ok(TcpAcceptor { addr, stop, join })
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::SignalTable;

    #[test]
    fn frame_codec_round_trips_every_value_kind() {
        let mut b = SignalTable::builder();
        let flag = b.bool("flag");
        let count = b.int("count");
        let x = b.real("x");
        let cmd = b.sym("cmd");
        let table = b.finish();
        let mut frame = table.frame();
        frame.set(flag, true);
        frame.set(count, -42i64);
        frame.set(x, 1.5);
        frame.set(cmd, Value::sym("STOP"));

        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        write_frame(&mut wire, &frame).unwrap();

        let mut reader = &wire[..];
        let mut decoded = table.frame();
        assert!(read_frame(&mut reader, &mut decoded).unwrap());
        assert_eq!(decoded, frame);
        decoded.clear();
        assert!(read_frame(&mut reader, &mut decoded).unwrap());
        assert_eq!(decoded, frame);
        assert!(!read_frame(&mut reader, &mut decoded).unwrap(), "clean EOF");
    }

    #[test]
    fn undeclared_signal_is_invalid_data() {
        let mut b = SignalTable::builder();
        b.real("x");
        let sender_table = b.finish();
        let mut b = SignalTable::builder();
        b.real("y");
        let service_table = b.finish();

        let mut frame = sender_table.frame();
        frame.set_named("x", 1.0);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut decoded = service_table.frame();
        let err = read_frame(&mut &wire[..], &mut decoded).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_message_is_unexpected_eof() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let table = b.finish();
        let mut frame = table.frame();
        frame.set(x, 2.0);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        wire.truncate(wire.len() - 3);
        let mut decoded = table.frame();
        let err = read_frame(&mut &wire[..], &mut decoded).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut b = SignalTable::builder();
        b.real("x");
        let table = b.finish();
        // A hostile peer claims a 4 GiB - 1 payload; the decoder must
        // refuse from the prefix alone, never sizing a buffer from it.
        let wire = u32::MAX.to_be_bytes();
        let mut decoded = table.frame();
        let err = read_frame(&mut &wire[..], &mut decoded).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let inner = err.get_ref().expect("carries the decode error");
        assert!(
            inner.to_string().contains("exceeds"),
            "diagnosis names the budget: {inner}"
        );
    }

    #[test]
    fn hostile_signal_count_is_rejected() {
        let mut b = SignalTable::builder();
        b.real("x");
        let table = b.finish();
        // A minimal payload whose count field alone claims 2^32 - 1
        // signals.
        let payload = u32::MAX.to_be_bytes();
        let mut decoded = table.frame();
        assert_eq!(
            decode_payload(&payload, &mut decoded),
            Err(DecodeError::TooManySignals { count: u32::MAX })
        );
    }

    #[test]
    fn hostile_name_and_symbol_lengths_are_rejected() {
        let mut b = SignalTable::builder();
        let cmd = b.sym("cmd");
        let table = b.finish();

        // Name length over budget.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_be_bytes());
        payload.extend_from_slice(&(MAX_NAME_BYTES as u16 + 1).to_be_bytes());
        let mut decoded = table.frame();
        assert_eq!(
            decode_payload(&payload, &mut decoded),
            Err(DecodeError::NameTooLong {
                len: MAX_NAME_BYTES + 1
            })
        );

        // Symbol length over budget, on a declared signal.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_be_bytes());
        payload.extend_from_slice(&3u16.to_be_bytes());
        payload.extend_from_slice(b"cmd");
        payload.push(TAG_SYM);
        payload.extend_from_slice(&(MAX_SYMBOL_BYTES as u16 + 1).to_be_bytes());
        let mut decoded = table.frame();
        assert_eq!(
            decode_payload(&payload, &mut decoded),
            Err(DecodeError::SymbolTooLong {
                len: MAX_SYMBOL_BYTES + 1
            })
        );
        let _ = cmd;
    }

    #[test]
    fn oversized_symbol_is_refused_at_encode_time() {
        let mut b = SignalTable::builder();
        let cmd = b.sym("cmd");
        let table = b.finish();
        let mut frame = table.frame();
        frame.set(cmd, Value::sym("x".repeat(MAX_SYMBOL_BYTES + 1)));
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
