//! The multi-worker service: one supervised thread per shard, sharded
//! by [`SignalTable`] family, with a bounded report channel back to the
//! operator.
//!
//! # Degraded, never dead
//!
//! Each shard worker is wrapped in a *supervisor*: a panic (or monitor
//! evaluation error) inside a wave is caught with
//! [`std::panic::catch_unwind`], reported as
//! [`ReportEvent::ShardStopped`] `{error: Some(..)}`, and the shard is
//! rebuilt from its surviving suite configuration and keeps serving —
//! streams that were in flight are reported as
//! [`ReportEvent::StreamEvicted`] with
//! [`EvictReason::ShardRestart`],
//! and a [`ReportEvent::ShardRestarted`] marks the recovery. New
//! connects keep landing throughout.
//!
//! The report channel has a configurable overflow policy
//! ([`ReportOverflow`]): lossless blocking backpressure (the default),
//! or count-and-coalesce dropping so a stalled report consumer can
//! never stall the fleet's monitoring.

use crate::report::{EvictReason, ReportEvent, ShardId, StreamEviction, StreamId};
use crate::shard::{ShardConfig, ShardCore};
use crate::source::{frame_channel, FrameSender, StreamSource};
use esafe_logic::SignalTable;
use esafe_monitor::SuiteTemplate;
use std::collections::HashSet;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a shard worker does when the bounded report channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportOverflow {
    /// Block until the consumer drains — lossless backpressure: a
    /// consumer that stops draining stalls the fleet rather than losing
    /// verdicts. The right policy when every verdict matters more than
    /// liveness.
    #[default]
    Block,
    /// Never block: drop the event, count it, and coalesce the count
    /// into one [`ReportEvent::ReportsDropped`] delivered as soon as
    /// the channel has room. The right policy for a hostile-fleet
    /// deployment where one slow consumer must not become a
    /// denial-of-service on the monitoring itself.
    DropAndCount,
}

/// Service-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Lanes per shard — the maximum concurrent streams per signal
    /// family; further connections queue.
    pub lanes_per_shard: usize,
    /// Capacity of the bounded report channel.
    pub report_capacity: usize,
    /// Periodic violation-drain cadence, in waves per report pass.
    pub report_every: u64,
    /// Stall deadline in consecutive frameless waves, after which a
    /// stream is evicted and its lane reclaimed
    /// ([`ShardConfig::stall_limit`]). `None` (the default) never
    /// evicts — starved lanes are skipped each wave either way, so a
    /// stalled producer only ever wastes its own lane.
    pub stall_limit: Option<u64>,
    /// How long a worker parks for control messages after a wave in
    /// which *no* bound stream delivered a frame (all pending). Bounds
    /// the idle spin rate; a busy shard never parks.
    pub pending_park: Duration,
    /// Report-channel overflow policy.
    pub report_overflow: ReportOverflow,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            lanes_per_shard: 1024,
            report_capacity: 4096,
            report_every: 32,
            stall_limit: None,
            pending_park: Duration::from_micros(250),
            report_overflow: ReportOverflow::Block,
        }
    }
}

/// A service-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No loaded suite serves the given signal table; call
    /// [`MonitorService::load_suite`] first.
    UnknownTable,
    /// The target shard's worker has stopped.
    ShardStopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTable => {
                write!(f, "no suite is loaded for this signal table")
            }
            ServeError::ShardStopped => write!(f, "the shard worker has stopped"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Control messages into a shard worker.
enum ShardMsg {
    Connect {
        id: StreamId,
        source: Box<dyn StreamSource>,
    },
    Load {
        template: Arc<SuiteTemplate>,
    },
    Shutdown,
}

struct ShardHandle {
    id: ShardId,
    table: Arc<SignalTable>,
    control: Sender<ShardMsg>,
    join: JoinHandle<()>,
}

/// A cloneable, thread-safe connection handle to one shard — what a
/// transport acceptor (e.g. [`crate::tcp::spawn_acceptor`]) uses to
/// register inbound streams without holding the whole service.
#[derive(Clone)]
pub struct ShardConnector {
    shard: ShardId,
    control: Sender<ShardMsg>,
    next_stream: Arc<AtomicU64>,
}

impl std::fmt::Debug for ShardConnector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardConnector")
            .field("shard", &self.shard)
            .finish_non_exhaustive()
    }
}

impl ShardConnector {
    /// The shard this connector feeds.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Registers a stream on the shard, returning its service-unique
    /// id.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShardStopped`] if the worker has exited.
    pub fn connect(&self, source: Box<dyn StreamSource>) -> Result<StreamId, ServeError> {
        let id = StreamId(self.next_stream.fetch_add(1, Ordering::Relaxed));
        self.control
            .send(ShardMsg::Connect { id, source })
            .map_err(|_| ServeError::ShardStopped)?;
        Ok(id)
    }
}

/// A long-running monitor service for fleets of live runs.
///
/// Each loaded [`SuiteTemplate`] spawns (or hot-swaps) the shard worker
/// for its [`SignalTable`] family; streams connect to the shard of
/// their table and are monitored on dynamically assigned lanes.
/// Violations, stream summaries, and lifecycle events arrive on one
/// bounded report channel ([`recv_report`](MonitorService::recv_report)).
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, SignalTable};
/// use esafe_monitor::{Location, MonitorSuite};
/// use esafe_serve::{MonitorService, ReportEvent, ServiceConfig};
///
/// let mut b = SignalTable::builder();
/// let x = b.real("x");
/// let table = b.finish();
/// let mut suite = MonitorSuite::new(table.clone());
/// suite
///     .add_goal("G", Location::new("Demo"), parse("x < 10.0").unwrap())
///     .unwrap();
/// let template = std::sync::Arc::new(suite.template());
///
/// let mut service = MonitorService::new(ServiceConfig::default());
/// service.load_suite(&template);
/// let (sender, id) = service.connect_channel(&table, 16).unwrap();
/// for v in [1.0, 11.0, 2.0] {
///     let mut frame = table.frame();
///     frame.set(x, v);
///     sender.send(frame).unwrap();
/// }
/// drop(sender); // end of stream
/// loop {
///     match service.recv_report().unwrap() {
///         ReportEvent::StreamClosed(summary) => {
///             assert_eq!(summary.stream, id);
///             assert_eq!(summary.ticks, 3);
///             assert_eq!(summary.violations.len(), 1); // x < 10 broke once
///             break;
///         }
///         _ => continue,
///     }
/// }
/// service.shutdown();
/// ```
#[derive(Debug)]
pub struct MonitorService {
    config: ServiceConfig,
    shards: Vec<ShardHandle>,
    reports_tx: SyncSender<ReportEvent>,
    reports_rx: Receiver<ReportEvent>,
    next_stream: Arc<AtomicU64>,
}

impl std::fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl MonitorService {
    /// Creates an empty service (no shards until a suite is loaded).
    pub fn new(config: ServiceConfig) -> Self {
        let (reports_tx, reports_rx) = mpsc::sync_channel(config.report_capacity);
        MonitorService {
            config,
            shards: Vec::new(),
            reports_tx,
            reports_rx,
            next_stream: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Loads `template` into the service: spawns a new supervised shard
    /// worker for its signal-table family, or — when that family
    /// already has a shard — hot-swaps the suite as the shard's next
    /// generation (live streams finish under the generation they
    /// connected to). Returns the shard's id.
    pub fn load_suite(&mut self, template: &Arc<SuiteTemplate>) -> ShardId {
        if let Some(handle) = self
            .shards
            .iter()
            .find(|h| Arc::ptr_eq(&h.table, template.table()))
        {
            // A dead worker leaves the send failing; the caller sees it
            // on the next connect.
            let _ = handle.control.send(ShardMsg::Load {
                template: Arc::clone(template),
            });
            return handle.id;
        }
        let id = ShardId(self.shards.len());
        let shard_config = ShardConfig {
            width: self.config.lanes_per_shard,
            report_every: self.config.report_every,
            stall_limit: self.config.stall_limit,
        };
        let pending_park = self.config.pending_park;
        let (control_tx, control_rx) = mpsc::channel();
        let reporter = Reporter {
            shard: id,
            tx: self.reports_tx.clone(),
            policy: self.config.report_overflow,
            dropped: 0,
        };
        let worker_template = Arc::clone(template);
        let join = std::thread::Builder::new()
            .name(format!("esafe-serve-{}", id.0))
            .spawn(move || {
                run_shard(
                    id,
                    worker_template,
                    shard_config,
                    pending_park,
                    control_rx,
                    reporter,
                )
            })
            .expect("shard worker thread spawns");
        self.shards.push(ShardHandle {
            id,
            table: template.table().clone(),
            control: control_tx,
            join,
        });
        id
    }

    /// The shard serving `table`, if a suite for it is loaded.
    pub fn shard_for(&self, table: &Arc<SignalTable>) -> Option<ShardId> {
        self.shards
            .iter()
            .find(|h| Arc::ptr_eq(&h.table, table))
            .map(|h| h.id)
    }

    /// A cloneable connection handle to `table`'s shard, for transport
    /// acceptors running on their own threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTable`] if no suite is loaded for `table`.
    pub fn connector(&self, table: &Arc<SignalTable>) -> Result<ShardConnector, ServeError> {
        let handle = self
            .shards
            .iter()
            .find(|h| Arc::ptr_eq(&h.table, table))
            .ok_or(ServeError::UnknownTable)?;
        Ok(ShardConnector {
            shard: handle.id,
            control: handle.control.clone(),
            next_stream: Arc::clone(&self.next_stream),
        })
    }

    /// Connects a stream to the shard of its signal family. The stream
    /// is admitted onto a lane immediately if one is free, otherwise it
    /// queues.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTable`] when no suite is loaded for
    /// `table`; [`ServeError::ShardStopped`] when the shard worker has
    /// exited.
    pub fn connect(
        &mut self,
        table: &Arc<SignalTable>,
        source: Box<dyn StreamSource>,
    ) -> Result<StreamId, ServeError> {
        self.connector(table)?.connect(source)
    }

    /// [`connect`](MonitorService::connect) over a fresh bounded
    /// in-process channel: returns the producing [`FrameSender`] and
    /// the assigned stream id. Dropping the sender ends the stream.
    ///
    /// # Errors
    ///
    /// As [`connect`](MonitorService::connect).
    pub fn connect_channel(
        &mut self,
        table: &Arc<SignalTable>,
        capacity: usize,
    ) -> Result<(FrameSender, StreamId), ServeError> {
        let (sender, source) = frame_channel(capacity);
        let id = self.connect(table, Box::new(source))?;
        Ok((sender, id))
    }

    /// Blocks for the next report event.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShardStopped`] once every worker has exited and
    /// the channel is drained.
    pub fn recv_report(&self) -> Result<ReportEvent, ServeError> {
        self.reports_rx.recv().map_err(|_| ServeError::ShardStopped)
    }

    /// The next report event, if one is ready.
    pub fn try_recv_report(&self) -> Option<ReportEvent> {
        self.reports_rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next report event.
    pub fn recv_report_timeout(&self, timeout: Duration) -> Option<ReportEvent> {
        self.reports_rx.recv_timeout(timeout).ok()
    }

    /// Stops every shard and returns the remaining report events (final
    /// stream summaries, suite unloads, and one clean
    /// [`ReportEvent::ShardStopped`] per shard).
    ///
    /// Waves never block on a producer, so shutdown completes even
    /// while producers are still live mid-stream: their streams are
    /// closed out at the frames observed so far and their transports
    /// drop (a producer sees its next send fail — see
    /// [`FrameSender::send`]).
    pub fn shutdown(self) -> Vec<ReportEvent> {
        for handle in &self.shards {
            let _ = handle.control.send(ShardMsg::Shutdown);
        }
        // Drain while workers flush, so a full report channel cannot
        // deadlock the join.
        drop(self.reports_tx);
        let mut events = Vec::new();
        let mut stopped = 0usize;
        while stopped < self.shards.len() {
            match self.reports_rx.recv() {
                Ok(event) => {
                    // Only a *clean* stop ends a worker; an erroring
                    // stop is followed by a supervisor restart.
                    if matches!(event, ReportEvent::ShardStopped { error: None, .. }) {
                        stopped += 1;
                    }
                    events.push(event);
                }
                Err(_) => break,
            }
        }
        for handle in self.shards {
            let _ = handle.join.join();
        }
        while let Ok(event) = self.reports_rx.try_recv() {
            events.push(event);
        }
        events
    }
}

/// The report-channel sending half a worker holds, carrying the
/// overflow policy: blocking (lossless) or count-and-coalesce
/// (loss-visible, never stalls the shard).
struct Reporter {
    shard: ShardId,
    tx: SyncSender<ReportEvent>,
    policy: ReportOverflow,
    dropped: u64,
}

/// The consumer hung up; the worker should exit.
struct ConsumerGone;

impl Reporter {
    fn send(&mut self, event: ReportEvent) -> Result<(), ConsumerGone> {
        match self.policy {
            ReportOverflow::Block => self.tx.send(event).map_err(|_| ConsumerGone),
            ReportOverflow::DropAndCount => {
                if self.dropped > 0 {
                    // Flush the coalesced drop count first so the
                    // consumer learns of the gap in order.
                    let pending = ReportEvent::ReportsDropped {
                        shard: self.shard,
                        dropped: self.dropped,
                    };
                    match self.tx.try_send(pending) {
                        Ok(()) => self.dropped = 0,
                        Err(mpsc::TrySendError::Full(_)) => {
                            self.dropped += 1;
                            return Ok(());
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => return Err(ConsumerGone),
                    }
                }
                match self.tx.try_send(event) {
                    Ok(()) => Ok(()),
                    Err(mpsc::TrySendError::Full(_)) => {
                        self.dropped += 1;
                        Ok(())
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => Err(ConsumerGone),
                }
            }
        }
    }
}

/// Why one core incarnation ended.
enum Outcome {
    /// Clean shutdown, fully flushed — the worker exits.
    Shutdown,
    /// The report consumer hung up — the worker exits.
    ConsumerGone,
    /// The wave panicked or a monitor evaluation failed — the
    /// supervisor rebuilds the core and keeps serving.
    Crashed(String),
}

/// The supervised worker: runs one [`ShardCore`] incarnation at a time,
/// and rebuilds it — with the most recently loaded suite template and
/// fresh generation numbering — whenever a wave panics or errors.
/// Control messages queued during a crash are preserved: they sit in
/// the channel and apply to the rebuilt core, so connects issued around
/// a restart still land.
fn run_shard(
    shard: ShardId,
    mut template: Arc<SuiteTemplate>,
    config: ShardConfig,
    pending_park: Duration,
    control: Receiver<ShardMsg>,
    mut reporter: Reporter,
) {
    // Streams handed to the current core (bound or queued) and not yet
    // closed — what a crash loses.
    let mut live: HashSet<StreamId> = HashSet::new();
    let mut first_generation = 0u64;
    loop {
        let mut core = ShardCore::new(shard, &template, config);
        core.set_first_generation(first_generation);
        let mut active_generation = first_generation;
        let outcome = incarnation(
            &mut core,
            &mut template,
            &mut active_generation,
            &mut live,
            pending_park,
            &control,
            &mut reporter,
        );
        match outcome {
            Outcome::Shutdown | Outcome::ConsumerGone => return,
            Outcome::Crashed(error) => {
                // The core's state is unspecified after a panic: drop
                // it, report the loss with provenance, and rebuild.
                drop(core);
                if reporter
                    .send(ReportEvent::ShardStopped {
                        shard,
                        error: Some(error),
                    })
                    .is_err()
                {
                    return;
                }
                let streams_lost = live.len();
                for stream in live.drain() {
                    let evicted = ReportEvent::StreamEvicted(StreamEviction {
                        stream,
                        shard,
                        generation: active_generation,
                        ticks: 0,
                        violations: Vec::new(),
                        reason: EvictReason::ShardRestart,
                    });
                    if reporter.send(evicted).is_err() {
                        return;
                    }
                }
                if reporter
                    .send(ReportEvent::ShardRestarted {
                        shard,
                        streams_lost,
                    })
                    .is_err()
                {
                    return;
                }
                // Fresh, never-reused generation numbers for the next
                // incarnation keep verdict provenance unambiguous
                // across the restart.
                first_generation = active_generation + 1;
            }
        }
    }
}

/// One core's life: park while idle, apply control messages, advance
/// one wave under `catch_unwind`, forward events — until shutdown, a
/// crash, or the consumer hanging up.
fn incarnation(
    core: &mut ShardCore,
    template: &mut Arc<SuiteTemplate>,
    active_generation: &mut u64,
    live: &mut HashSet<StreamId>,
    pending_park: Duration,
    control: &Receiver<ShardMsg>,
    reporter: &mut Reporter,
) -> Outcome {
    let shard = core.id();
    let mut shutdown = false;
    let mut parked = false;
    loop {
        if !shutdown && core.is_idle() {
            match control.recv() {
                Ok(msg) => shutdown = apply(core, template, active_generation, live, msg),
                Err(_) => shutdown = true,
            }
        } else if !shutdown && parked {
            // Every bound stream was pending last wave: park briefly so
            // a fully starved shard does not spin, while staying
            // responsive to control traffic.
            match control.recv_timeout(pending_park) {
                Ok(msg) => shutdown = apply(core, template, active_generation, live, msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => shutdown = true,
            }
        }
        while !shutdown {
            match control.try_recv() {
                Ok(msg) => shutdown = apply(core, template, active_generation, live, msg),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => shutdown = true,
            }
        }
        if shutdown {
            core.shutdown();
            if forward_events(core, live, reporter).is_err() {
                return Outcome::ConsumerGone;
            }
            if reporter
                .send(ReportEvent::ShardStopped { shard, error: None })
                .is_err()
            {
                return Outcome::ConsumerGone;
            }
            return Outcome::Shutdown;
        }
        // The wave is the only place third-party code (stream sources)
        // runs, so it is the unwind boundary: a panicking source takes
        // down this core incarnation, never the worker.
        let waved = std::panic::catch_unwind(AssertUnwindSafe(|| core.wave()));
        match waved {
            Ok(Ok(pulled)) => {
                if forward_events(core, live, reporter).is_err() {
                    return Outcome::ConsumerGone;
                }
                parked = pulled == 0 && !core.is_idle();
            }
            Ok(Err(err)) => {
                // Evaluation errors leave the event log consistent up
                // to the failing wave; flush it before restarting.
                let _ = forward_events(core, live, reporter);
                return Outcome::Crashed(err.to_string());
            }
            Err(panic) => return Outcome::Crashed(panic_message(panic.as_ref())),
        }
    }
}

/// Applies one control message; returns `true` on shutdown.
fn apply(
    core: &mut ShardCore,
    template: &mut Arc<SuiteTemplate>,
    active_generation: &mut u64,
    live: &mut HashSet<StreamId>,
    msg: ShardMsg,
) -> bool {
    match msg {
        ShardMsg::Connect { id, source } => {
            core.connect(id, source);
            live.insert(id);
            false
        }
        ShardMsg::Load {
            template: fresh_template,
        } => {
            core.load_suite(&fresh_template);
            *template = fresh_template;
            *active_generation += 1;
            false
        }
        ShardMsg::Shutdown => true,
    }
}

/// Drains the core's events to the report channel, keeping the
/// supervisor's live-stream set in sync with closes and evictions.
fn forward_events(
    core: &mut ShardCore,
    live: &mut HashSet<StreamId>,
    reporter: &mut Reporter,
) -> Result<(), ConsumerGone> {
    for event in core.take_events() {
        match &event {
            ReportEvent::StreamClosed(summary) => {
                live.remove(&summary.stream);
            }
            ReportEvent::StreamEvicted(eviction) => {
                live.remove(&eviction.stream);
            }
            _ => {}
        }
        reporter.send(event)?;
    }
    Ok(())
}

/// Renders a caught panic payload as the `ShardStopped` error string.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("wave panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("wave panicked: {s}")
    } else {
        "wave panicked".to_string()
    }
}
