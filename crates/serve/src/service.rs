//! The multi-worker service: one thread per shard, sharded by
//! [`SignalTable`] family, with a bounded report channel back to the
//! operator.

use crate::report::{ReportEvent, ShardId, StreamId};
use crate::shard::ShardCore;
use crate::source::{frame_channel, FrameSender, StreamSource};
use esafe_logic::SignalTable;
use esafe_monitor::SuiteTemplate;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Service-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Lanes per shard — the maximum concurrent streams per signal
    /// family; further connections queue.
    pub lanes_per_shard: usize,
    /// Capacity of the bounded report channel. Shard workers block when
    /// it fills, so a consumer that stops draining exerts backpressure
    /// on the whole fleet rather than losing verdicts.
    pub report_capacity: usize,
    /// Periodic violation-drain cadence, in waves per report pass.
    pub report_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            lanes_per_shard: 1024,
            report_capacity: 4096,
            report_every: 32,
        }
    }
}

/// A service-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No loaded suite serves the given signal table; call
    /// [`MonitorService::load_suite`] first.
    UnknownTable,
    /// The target shard's worker has stopped.
    ShardStopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTable => {
                write!(f, "no suite is loaded for this signal table")
            }
            ServeError::ShardStopped => write!(f, "the shard worker has stopped"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Control messages into a shard worker.
enum ShardMsg {
    Connect {
        id: StreamId,
        source: Box<dyn StreamSource>,
    },
    Load {
        template: Arc<SuiteTemplate>,
    },
    Shutdown,
}

struct ShardHandle {
    id: ShardId,
    table: Arc<SignalTable>,
    control: Sender<ShardMsg>,
    join: JoinHandle<()>,
}

/// A cloneable, thread-safe connection handle to one shard — what a
/// transport acceptor (e.g. [`crate::tcp::spawn_acceptor`]) uses to
/// register inbound streams without holding the whole service.
#[derive(Clone)]
pub struct ShardConnector {
    shard: ShardId,
    control: Sender<ShardMsg>,
    next_stream: Arc<AtomicU64>,
}

impl std::fmt::Debug for ShardConnector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardConnector")
            .field("shard", &self.shard)
            .finish_non_exhaustive()
    }
}

impl ShardConnector {
    /// The shard this connector feeds.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Registers a stream on the shard, returning its service-unique
    /// id.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShardStopped`] if the worker has exited.
    pub fn connect(&self, source: Box<dyn StreamSource>) -> Result<StreamId, ServeError> {
        let id = StreamId(self.next_stream.fetch_add(1, Ordering::Relaxed));
        self.control
            .send(ShardMsg::Connect { id, source })
            .map_err(|_| ServeError::ShardStopped)?;
        Ok(id)
    }
}

/// A long-running monitor service for fleets of live runs.
///
/// Each loaded [`SuiteTemplate`] spawns (or hot-swaps) the shard worker
/// for its [`SignalTable`] family; streams connect to the shard of
/// their table and are monitored on dynamically assigned lanes.
/// Violations, stream summaries, and lifecycle events arrive on one
/// bounded report channel ([`recv_report`](MonitorService::recv_report)).
///
/// # Example
///
/// ```
/// use esafe_logic::{parse, SignalTable};
/// use esafe_monitor::{Location, MonitorSuite};
/// use esafe_serve::{MonitorService, ReportEvent, ServiceConfig};
///
/// let mut b = SignalTable::builder();
/// let x = b.real("x");
/// let table = b.finish();
/// let mut suite = MonitorSuite::new(table.clone());
/// suite
///     .add_goal("G", Location::new("Demo"), parse("x < 10.0").unwrap())
///     .unwrap();
/// let template = std::sync::Arc::new(suite.template());
///
/// let mut service = MonitorService::new(ServiceConfig::default());
/// service.load_suite(&template);
/// let (sender, id) = service.connect_channel(&table, 16).unwrap();
/// for v in [1.0, 11.0, 2.0] {
///     let mut frame = table.frame();
///     frame.set(x, v);
///     sender.send(frame).unwrap();
/// }
/// drop(sender); // end of stream
/// loop {
///     match service.recv_report().unwrap() {
///         ReportEvent::StreamClosed(summary) => {
///             assert_eq!(summary.stream, id);
///             assert_eq!(summary.ticks, 3);
///             assert_eq!(summary.violations.len(), 1); // x < 10 broke once
///             break;
///         }
///         _ => continue,
///     }
/// }
/// service.shutdown();
/// ```
#[derive(Debug)]
pub struct MonitorService {
    config: ServiceConfig,
    shards: Vec<ShardHandle>,
    reports_tx: SyncSender<ReportEvent>,
    reports_rx: Receiver<ReportEvent>,
    next_stream: Arc<AtomicU64>,
}

impl std::fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl MonitorService {
    /// Creates an empty service (no shards until a suite is loaded).
    pub fn new(config: ServiceConfig) -> Self {
        let (reports_tx, reports_rx) = mpsc::sync_channel(config.report_capacity);
        MonitorService {
            config,
            shards: Vec::new(),
            reports_tx,
            reports_rx,
            next_stream: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Loads `template` into the service: spawns a new shard worker for
    /// its signal-table family, or — when that family already has a
    /// shard — hot-swaps the suite as the shard's next generation (live
    /// streams finish under the generation they connected to). Returns
    /// the shard's id.
    pub fn load_suite(&mut self, template: &Arc<SuiteTemplate>) -> ShardId {
        if let Some(handle) = self
            .shards
            .iter()
            .find(|h| Arc::ptr_eq(&h.table, template.table()))
        {
            // A dead worker leaves the send failing; the caller sees it
            // on the next connect.
            let _ = handle.control.send(ShardMsg::Load {
                template: Arc::clone(template),
            });
            return handle.id;
        }
        let id = ShardId(self.shards.len());
        let core = ShardCore::new(
            id,
            template,
            self.config.lanes_per_shard,
            self.config.report_every,
        );
        let (control_tx, control_rx) = mpsc::channel();
        let reports = self.reports_tx.clone();
        let join = std::thread::Builder::new()
            .name(format!("esafe-serve-{}", id.0))
            .spawn(move || run_shard(core, control_rx, reports))
            .expect("shard worker thread spawns");
        self.shards.push(ShardHandle {
            id,
            table: template.table().clone(),
            control: control_tx,
            join,
        });
        id
    }

    /// The shard serving `table`, if a suite for it is loaded.
    pub fn shard_for(&self, table: &Arc<SignalTable>) -> Option<ShardId> {
        self.shards
            .iter()
            .find(|h| Arc::ptr_eq(&h.table, table))
            .map(|h| h.id)
    }

    /// A cloneable connection handle to `table`'s shard, for transport
    /// acceptors running on their own threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTable`] if no suite is loaded for `table`.
    pub fn connector(&self, table: &Arc<SignalTable>) -> Result<ShardConnector, ServeError> {
        let handle = self
            .shards
            .iter()
            .find(|h| Arc::ptr_eq(&h.table, table))
            .ok_or(ServeError::UnknownTable)?;
        Ok(ShardConnector {
            shard: handle.id,
            control: handle.control.clone(),
            next_stream: Arc::clone(&self.next_stream),
        })
    }

    /// Connects a stream to the shard of its signal family. The stream
    /// is admitted onto a lane immediately if one is free, otherwise it
    /// queues.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTable`] when no suite is loaded for
    /// `table`; [`ServeError::ShardStopped`] when the shard worker has
    /// exited.
    pub fn connect(
        &mut self,
        table: &Arc<SignalTable>,
        source: Box<dyn StreamSource>,
    ) -> Result<StreamId, ServeError> {
        self.connector(table)?.connect(source)
    }

    /// [`connect`](MonitorService::connect) over a fresh bounded
    /// in-process channel: returns the producing [`FrameSender`] and
    /// the assigned stream id. Dropping the sender ends the stream.
    ///
    /// # Errors
    ///
    /// As [`connect`](MonitorService::connect).
    pub fn connect_channel(
        &mut self,
        table: &Arc<SignalTable>,
        capacity: usize,
    ) -> Result<(FrameSender, StreamId), ServeError> {
        let (sender, source) = frame_channel(capacity);
        let id = self.connect(table, Box::new(source))?;
        Ok((sender, id))
    }

    /// Blocks for the next report event.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShardStopped`] once every worker has exited and
    /// the channel is drained.
    pub fn recv_report(&self) -> Result<ReportEvent, ServeError> {
        self.reports_rx.recv().map_err(|_| ServeError::ShardStopped)
    }

    /// The next report event, if one is ready.
    pub fn try_recv_report(&self) -> Option<ReportEvent> {
        self.reports_rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next report event.
    pub fn recv_report_timeout(&self, timeout: Duration) -> Option<ReportEvent> {
        self.reports_rx.recv_timeout(timeout).ok()
    }

    /// Stops every shard and returns the remaining report events (final
    /// stream summaries, suite unloads, and one
    /// [`ReportEvent::ShardStopped`] per shard).
    ///
    /// Streams still blocked on a live producer keep their worker busy:
    /// end every stream (drop its sender / close its socket) before
    /// shutting down, or the join waits for them.
    pub fn shutdown(self) -> Vec<ReportEvent> {
        for handle in &self.shards {
            let _ = handle.control.send(ShardMsg::Shutdown);
        }
        // Drain while workers flush, so a full report channel cannot
        // deadlock the join.
        drop(self.reports_tx);
        let mut events = Vec::new();
        let mut stopped = 0usize;
        while stopped < self.shards.len() {
            match self.reports_rx.recv() {
                Ok(event) => {
                    if matches!(event, ReportEvent::ShardStopped { .. }) {
                        stopped += 1;
                    }
                    events.push(event);
                }
                Err(_) => break,
            }
        }
        for handle in self.shards {
            let _ = handle.join.join();
        }
        while let Ok(event) = self.reports_rx.try_recv() {
            events.push(event);
        }
        events
    }
}

/// The worker loop: park while idle, apply control messages, advance
/// one wave, forward events — until shutdown or a fatal monitor error.
fn run_shard(mut core: ShardCore, control: Receiver<ShardMsg>, reports: SyncSender<ReportEvent>) {
    let shard = core.id();
    let mut shutdown = false;
    loop {
        if !shutdown && core.is_idle() {
            match control.recv() {
                Ok(msg) => shutdown = apply(&mut core, msg),
                Err(_) => shutdown = true,
            }
        }
        while !shutdown {
            match control.try_recv() {
                Ok(msg) => shutdown = apply(&mut core, msg),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => shutdown = true,
            }
        }
        if shutdown {
            core.shutdown();
            for event in core.take_events() {
                if reports.send(event).is_err() {
                    return;
                }
            }
            let _ = reports.send(ReportEvent::ShardStopped { shard, error: None });
            return;
        }
        let result = core.wave();
        for event in core.take_events() {
            if reports.send(event).is_err() {
                return;
            }
        }
        if let Err(err) = result {
            let _ = reports.send(ReportEvent::ShardStopped {
                shard,
                error: Some(err.to_string()),
            });
            return;
        }
    }
}

/// Applies one control message; returns `true` on shutdown.
fn apply(core: &mut ShardCore, msg: ShardMsg) -> bool {
    match msg {
        ShardMsg::Connect { id, source } => {
            core.connect(id, source);
            false
        }
        ShardMsg::Load { template } => {
            core.load_suite(&template);
            false
        }
        ShardMsg::Shutdown => true,
    }
}
