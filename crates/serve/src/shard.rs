//! The shard core: dynamic lane churn and suite lifecycle over one
//! [`MonitorSuiteBatch`], deterministic and thread-free.
//!
//! A shard owns every stream of one [`SignalTable`] family. Its state
//! machine is synchronous — [`ShardCore::wave`] advances every live
//! stream by exactly one frame — so the service's worker thread is a
//! thin loop around it, and property tests drive the identical code
//! deterministically.
//!
//! # Lanes
//!
//! Streams map onto monitor lanes through the harness's
//! [`LaneAllocator`]: a connecting stream claims a free lane and the
//! lane's monitors restart from the initial state
//! ([`MonitorSuiteBatch::reclaim_lane`]); a disconnecting stream
//! retires its lane in place ([`MonitorSuiteBatch::retire_lane`]) and
//! the slot is immediately reusable. Connections beyond the shard
//! width queue and are admitted as lanes free up.
//!
//! # Suite lifecycle
//!
//! Monitor suites are managed through the composite-component
//! lifecycle `load → activate → drain → deactivate → unload`:
//! [`ShardCore::new`]/[`ShardCore::load_suite`] *load* a generation
//! (instantiate its batch with every lane parked) and *activate* it
//! (new connections land on it); a later `load_suite` moves the
//! previous generation to *draining* — it keeps monitoring the streams
//! already on it, takes no new ones, and is *deactivated and unloaded*
//! (dropped, with a [`ReportEvent::SuiteUnloaded`]) the moment its
//! last stream closes. A suite is therefore hot-swappable on a running
//! shard without dropping a single stream, and every verdict is
//! attributed to the generation that produced it.

use crate::report::{ReportEvent, ShardId, StreamId, StreamSummary, ViolationReport};
use crate::source::StreamSource;
use esafe_harness::LaneAllocator;
use esafe_logic::{Frame, FrameBatch, SignalTable};
use esafe_monitor::{BatchMonitorError, MonitorSuiteBatch, SuiteTemplate};
use std::collections::VecDeque;
use std::sync::Arc;

/// One loaded suite generation: its batch plus the count of lanes it
/// still monitors.
#[derive(Debug)]
struct SuiteSlot {
    generation: u64,
    batch: MonitorSuiteBatch,
    occupied: usize,
}

impl SuiteSlot {
    fn load(template: &SuiteTemplate, lanes: usize, generation: u64) -> Self {
        let mut batch = template.instantiate_batch(lanes);
        // Park every lane: a service lane observes nothing until a
        // stream claims (reclaims) it.
        batch.finish();
        batch.set_generation(generation);
        SuiteSlot {
            generation,
            batch,
            occupied: 0,
        }
    }
}

/// A stream bound to a lane: its identity, its frame source, and the
/// suite generation monitoring it.
struct LaneStream {
    id: StreamId,
    source: Box<dyn StreamSource>,
    generation: u64,
}

impl std::fmt::Debug for LaneStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneStream")
            .field("id", &self.id)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

/// A connection waiting for a free lane.
struct PendingStream {
    id: StreamId,
    source: Box<dyn StreamSource>,
}

/// The synchronous heart of one shard: lane allocation, stream pull,
/// batched observation, suite generations, and violation reporting.
///
/// [`wave`](ShardCore::wave) is the only advancing call; everything
/// else mutates configuration. Emitted [`ReportEvent`]s accumulate
/// internally and are drained with [`take_events`](ShardCore::take_events).
pub struct ShardCore {
    shard: ShardId,
    table: Arc<SignalTable>,
    lanes: LaneAllocator,
    slab: FrameBatch,
    scratch: Frame,
    streams: Vec<Option<LaneStream>>,
    active: SuiteSlot,
    draining: Vec<SuiteSlot>,
    next_generation: u64,
    pending: VecDeque<PendingStream>,
    report_every: u64,
    waves: u64,
    events: Vec<ReportEvent>,
}

impl std::fmt::Debug for ShardCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCore")
            .field("shard", &self.shard)
            .field("width", &self.lanes.lanes())
            .field("occupied", &self.lanes.in_use())
            .field("generation", &self.active.generation)
            .field("draining", &self.draining.len())
            .finish_non_exhaustive()
    }
}

impl ShardCore {
    /// Loads and activates generation 0 of `template` over `width`
    /// lanes. `report_every` sets the periodic violation-drain cadence
    /// in waves (1 = report closed intervals every wave).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `report_every` is zero.
    pub fn new(shard: ShardId, template: &SuiteTemplate, width: usize, report_every: u64) -> Self {
        assert!(width > 0, "a shard needs at least one lane");
        assert!(report_every > 0, "the report cadence must be nonzero");
        let table = template.table().clone();
        ShardCore {
            shard,
            lanes: LaneAllocator::new(width),
            slab: FrameBatch::new(&table, width),
            scratch: table.frame(),
            streams: (0..width).map(|_| None).collect(),
            active: SuiteSlot::load(template, width, 0),
            draining: Vec::new(),
            next_generation: 1,
            pending: VecDeque::new(),
            report_every,
            waves: 0,
            events: Vec::new(),
            table,
        }
    }

    /// This shard's id.
    pub fn id(&self) -> ShardId {
        self.shard
    }

    /// The signal-table family this shard serves.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// The shard's lane width (maximum concurrent streams).
    pub fn width(&self) -> usize {
        self.lanes.lanes()
    }

    /// Streams currently bound to lanes.
    pub fn occupied(&self) -> usize {
        self.lanes.in_use()
    }

    /// Connections still waiting for a lane.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The generation new connections land on.
    pub fn active_generation(&self) -> u64 {
        self.active.generation
    }

    /// Generations still draining (monitoring pre-swap streams).
    pub fn draining_generations(&self) -> Vec<u64> {
        self.draining.iter().map(|s| s.generation).collect()
    }

    /// Whether the shard has nothing to do: no bound streams and no
    /// queued connections. An idle shard's [`wave`](ShardCore::wave) is
    /// a no-op, so a worker can park until the next control message.
    pub fn is_idle(&self) -> bool {
        self.lanes.in_use() == 0 && self.pending.is_empty()
    }

    /// Hot-swaps the monitor suite: the current generation moves to
    /// draining (or unloads at once if no stream is on it) and the new
    /// template is loaded and activated as the next generation. Streams
    /// already connected are unaffected — their verdicts keep flowing
    /// from the generation they connected under.
    ///
    /// # Panics
    ///
    /// Panics if `template` is compiled against a different signal
    /// table than this shard serves.
    pub fn load_suite(&mut self, template: &SuiteTemplate) {
        assert!(
            Arc::ptr_eq(template.table(), &self.table),
            "a shard serves exactly one signal-table family"
        );
        let generation = self.next_generation;
        self.next_generation += 1;
        let fresh = SuiteSlot::load(template, self.lanes.lanes(), generation);
        let old = std::mem::replace(&mut self.active, fresh);
        if old.occupied == 0 {
            self.events.push(ReportEvent::SuiteUnloaded {
                shard: self.shard,
                generation: old.generation,
            });
        } else {
            self.draining.push(old);
        }
    }

    /// Connects a stream: it claims a free lane right away — binding it
    /// to the currently active suite generation, so connects and
    /// [`load_suite`](ShardCore::load_suite) calls take effect in call
    /// order — or queues until a running stream closes (and is then
    /// admitted under the generation active at admission).
    pub fn connect(&mut self, id: StreamId, source: Box<dyn StreamSource>) {
        self.pending.push_back(PendingStream { id, source });
        self.admit_pending();
    }

    /// Advances every live stream by one frame: admits queued
    /// connections onto free lanes, pulls one frame per bound stream
    /// (retiring streams whose source ended), runs one batched observe
    /// pass per generation with bound streams, and — every
    /// `report_every` waves — drains newly closed violation intervals
    /// into [`ReportEvent::Violations`]. Returns the number of frames
    /// observed (0 when the shard is empty).
    ///
    /// # Errors
    ///
    /// A monitor evaluation error is fatal for the shard, exactly as it
    /// is for a scalar suite: the caller should report it and stop.
    pub fn wave(&mut self) -> Result<usize, BatchMonitorError> {
        self.admit_pending();
        if self.lanes.in_use() == 0 {
            return Ok(0);
        }
        let width = self.lanes.lanes();
        let mut pulled = 0usize;
        for lane in 0..width {
            let Some(stream) = self.streams[lane].as_mut() else {
                continue;
            };
            if stream.source.next_frame(&mut self.scratch) {
                self.slab.write_lane_from(lane, &self.scratch);
                pulled += 1;
            } else {
                self.retire(lane);
            }
        }
        if pulled == 0 {
            return Ok(0);
        }
        if self.active.occupied > 0 {
            self.active.batch.observe_slab(&self.slab)?;
        }
        for slot in &mut self.draining {
            if slot.occupied > 0 {
                slot.batch.observe_slab(&self.slab)?;
            }
        }
        self.waves += 1;
        if self.waves.is_multiple_of(self.report_every) {
            self.drain_live_violations();
        }
        Ok(pulled)
    }

    /// Closes down the shard: every bound stream is retired and
    /// summarized, queued connections are closed unobserved (a
    /// [`StreamSummary`] with zero ticks), and every generation —
    /// draining and active — is unloaded.
    pub fn shutdown(&mut self) {
        for lane in 0..self.lanes.lanes() {
            if self.streams[lane].is_some() {
                self.retire(lane);
            }
        }
        while let Some(pending) = self.pending.pop_front() {
            self.events.push(ReportEvent::StreamClosed(StreamSummary {
                stream: pending.id,
                shard: self.shard,
                generation: self.active.generation,
                ticks: 0,
                violations: Vec::new(),
            }));
        }
        // Retiring the last stream of each draining generation already
        // unloaded it; the active generation unloads here.
        debug_assert!(self.draining.is_empty());
        self.events.push(ReportEvent::SuiteUnloaded {
            shard: self.shard,
            generation: self.active.generation,
        });
    }

    /// Drains the events emitted since the previous call, in order.
    pub fn take_events(&mut self) -> Vec<ReportEvent> {
        std::mem::take(&mut self.events)
    }

    /// Binds queued connections to free lanes, oldest first.
    fn admit_pending(&mut self) {
        while !self.pending.is_empty() {
            let Some(lane) = self.lanes.claim() else {
                break;
            };
            let pending = self.pending.pop_front().expect("checked non-empty");
            self.active.batch.reclaim_lane(lane);
            self.active.occupied += 1;
            self.streams[lane] = Some(LaneStream {
                id: pending.id,
                source: pending.source,
                generation: self.active.generation,
            });
        }
    }

    /// Ends the stream on `lane`: retires the lane in its generation's
    /// batch (closing open intervals at the stream's true end), emits
    /// its [`StreamSummary`], releases the lane for reuse, and unloads
    /// the generation if this was its last stream while draining.
    fn retire(&mut self, lane: usize) {
        let stream = self.streams[lane]
            .take()
            .expect("retire needs a bound lane");
        let shard = self.shard;
        let slot = self.slot_mut(stream.generation);
        slot.batch.retire_lane(lane);
        let ticks = slot.batch.steps_observed(lane);
        let violations = slot.batch.take_violations_lane(lane);
        slot.occupied -= 1;
        let drained = slot.occupied == 0;
        self.events.push(ReportEvent::StreamClosed(StreamSummary {
            stream: stream.id,
            shard,
            generation: stream.generation,
            ticks,
            violations,
        }));
        self.lanes.release(lane);
        if drained && stream.generation != self.active.generation {
            let idx = self
                .draining
                .iter()
                .position(|s| s.generation == stream.generation)
                .expect("a non-active generation drains in the draining set");
            self.draining.remove(idx);
            self.events.push(ReportEvent::SuiteUnloaded {
                shard: self.shard,
                generation: stream.generation,
            });
        }
    }

    /// Emits the newly closed violation intervals of every live stream.
    fn drain_live_violations(&mut self) {
        for lane in 0..self.lanes.lanes() {
            let Some(stream) = self.streams[lane].as_ref() else {
                continue;
            };
            let (id, generation) = (stream.id, stream.generation);
            let shard = self.shard;
            let slot = self.slot_mut(generation);
            let violations = slot.batch.take_violations_lane(lane);
            if !violations.is_empty() {
                self.events.push(ReportEvent::Violations(ViolationReport {
                    stream: id,
                    shard,
                    generation,
                    violations,
                }));
            }
        }
    }

    fn slot_mut(&mut self, generation: u64) -> &mut SuiteSlot {
        if self.active.generation == generation {
            &mut self.active
        } else {
            self.draining
                .iter_mut()
                .find(|s| s.generation == generation)
                .expect("a stream's generation is loaded for the stream's lifetime")
        }
    }
}
