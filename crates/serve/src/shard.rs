//! The shard core: dynamic lane churn and suite lifecycle over one
//! [`MonitorSuiteBatch`], deterministic and thread-free.
//!
//! A shard owns every stream of one [`SignalTable`] family. Its state
//! machine is synchronous — [`ShardCore::wave`] advances each live
//! stream by at most one frame, **never blocking** on any of them — so
//! the service's worker thread is a thin loop around it, and property
//! tests drive the identical code deterministically.
//!
//! # Loss-proof waves
//!
//! A wave polls every bound stream once and carries exactly the lanes
//! that delivered a frame (a masked
//! [`MonitorSuiteBatch::observe_slab_masked`] pass per generation).
//! Misbehaving constituents degrade only themselves:
//!
//! * a **starved** lane (source answered `Pending`) is skipped with its
//!   monitor history untouched; its stall clock counts consecutive
//!   frameless waves and, past [`ShardConfig::stall_limit`], the stream
//!   is evicted with provenance and the lane reclaimed;
//! * a **corrupt** stream (transport decode failure) is quarantined:
//!   evicted with the decoder's diagnosis, no other lane perturbed;
//! * an **ended** stream retires its lane in place, as always.
//!
//! # Lanes
//!
//! Streams map onto monitor lanes through the harness's
//! [`LaneAllocator`]: a connecting stream claims a free lane and the
//! lane's monitors restart from the initial state
//! ([`MonitorSuiteBatch::reclaim_lane`]); a disconnecting stream
//! retires its lane in place ([`MonitorSuiteBatch::retire_lane`]) and
//! the slot is immediately reusable. Connections beyond the shard
//! width queue and are admitted as lanes free up.
//!
//! # Suite lifecycle
//!
//! Monitor suites are managed through the composite-component
//! lifecycle `load → activate → drain → deactivate → unload`:
//! [`ShardCore::new`]/[`ShardCore::load_suite`] *load* a generation
//! (instantiate its batch with every lane parked) and *activate* it
//! (new connections land on it); a later `load_suite` moves the
//! previous generation to *draining* — it keeps monitoring the streams
//! already on it, takes no new ones, and is *deactivated and unloaded*
//! (dropped, with a [`ReportEvent::SuiteUnloaded`]) the moment its
//! last stream closes. A suite is therefore hot-swappable on a running
//! shard without dropping a single stream, and every verdict is
//! attributed to the generation that produced it.

use crate::report::{
    EvictReason, ReportEvent, ShardId, StreamEviction, StreamId, StreamSummary, StreamViolations,
    ViolationReport,
};
use crate::source::{Poll, StreamSource};
use esafe_harness::LaneAllocator;
use esafe_logic::{Frame, FrameBatch, SignalTable};
use esafe_monitor::{BatchMonitorError, MonitorSuiteBatch, SuiteTemplate};
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-shard robustness knobs, shared by [`ShardCore::new`] and the
/// service's worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Lane count — the maximum concurrent streams; further connections
    /// queue.
    pub width: usize,
    /// Periodic violation-drain cadence, in waves per report pass.
    pub report_every: u64,
    /// Stall deadline: a bound stream that answers
    /// [`Poll::Pending`] for this many
    /// *consecutive* waves is evicted
    /// ([`ReportEvent::StreamEvicted`] with
    /// [`EvictReason::Stalled`]) and its lane reclaimed. `None` disables
    /// eviction: a starved lane is still skipped every wave (it can
    /// never stall the shard), it just stays bound forever.
    pub stall_limit: Option<u64>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            width: 1024,
            report_every: 32,
            stall_limit: None,
        }
    }
}

/// One loaded suite generation: its batch plus the count of lanes it
/// still monitors.
#[derive(Debug)]
struct SuiteSlot {
    generation: u64,
    batch: MonitorSuiteBatch,
    occupied: usize,
}

impl SuiteSlot {
    fn load(template: &SuiteTemplate, lanes: usize, generation: u64) -> Self {
        let mut batch = template.instantiate_batch(lanes);
        // Park every lane: a service lane observes nothing until a
        // stream claims (reclaims) it.
        batch.finish();
        batch.set_generation(generation);
        SuiteSlot {
            generation,
            batch,
            occupied: 0,
        }
    }
}

/// A stream bound to a lane: its identity, its frame source, the suite
/// generation monitoring it, and its stall clock.
struct LaneStream {
    id: StreamId,
    source: Box<dyn StreamSource>,
    generation: u64,
    /// Consecutive waves the source has answered `Pending`; reset to 0
    /// by every delivered frame.
    stalled_waves: u64,
}

impl std::fmt::Debug for LaneStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneStream")
            .field("id", &self.id)
            .field("generation", &self.generation)
            .field("stalled_waves", &self.stalled_waves)
            .finish_non_exhaustive()
    }
}

/// A connection waiting for a free lane.
struct PendingStream {
    id: StreamId,
    source: Box<dyn StreamSource>,
}

/// The synchronous heart of one shard: lane allocation, stream pull,
/// batched observation, suite generations, and violation reporting.
///
/// [`wave`](ShardCore::wave) is the only advancing call; everything
/// else mutates configuration. Emitted [`ReportEvent`]s accumulate
/// internally and are drained with [`take_events`](ShardCore::take_events).
pub struct ShardCore {
    shard: ShardId,
    table: Arc<SignalTable>,
    lanes: LaneAllocator,
    slab: FrameBatch,
    scratch: Frame,
    streams: Vec<Option<LaneStream>>,
    active: SuiteSlot,
    draining: Vec<SuiteSlot>,
    next_generation: u64,
    pending: VecDeque<PendingStream>,
    report_every: u64,
    stall_limit: Option<u64>,
    /// Reusable per-wave liveness mask: `live[lane]` is true iff the
    /// lane's stream delivered a frame this wave.
    live: Vec<bool>,
    waves: u64,
    events: Vec<ReportEvent>,
}

impl std::fmt::Debug for ShardCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCore")
            .field("shard", &self.shard)
            .field("width", &self.lanes.lanes())
            .field("occupied", &self.lanes.in_use())
            .field("generation", &self.active.generation)
            .field("draining", &self.draining.len())
            .finish_non_exhaustive()
    }
}

impl ShardCore {
    /// Loads and activates generation 0 of `template` over
    /// `config.width` lanes, with `config.report_every` as the periodic
    /// violation-drain cadence in waves (1 = report closed intervals
    /// every wave) and `config.stall_limit` as the eviction deadline.
    ///
    /// # Panics
    ///
    /// Panics if `config.width`, `config.report_every`, or a provided
    /// `config.stall_limit` is zero.
    pub fn new(shard: ShardId, template: &SuiteTemplate, config: ShardConfig) -> Self {
        assert!(config.width > 0, "a shard needs at least one lane");
        assert!(
            config.report_every > 0,
            "the report cadence must be nonzero"
        );
        assert!(
            config.stall_limit != Some(0),
            "a zero stall deadline would evict every stream instantly"
        );
        let width = config.width;
        let table = template.table().clone();
        ShardCore {
            shard,
            lanes: LaneAllocator::new(width),
            slab: FrameBatch::new(&table, width),
            scratch: table.frame(),
            streams: (0..width).map(|_| None).collect(),
            active: SuiteSlot::load(template, width, 0),
            draining: Vec::new(),
            next_generation: 1,
            pending: VecDeque::new(),
            report_every: config.report_every,
            stall_limit: config.stall_limit,
            live: vec![false; width],
            waves: 0,
            events: Vec::new(),
            table,
        }
    }

    /// This shard's id.
    pub fn id(&self) -> ShardId {
        self.shard
    }

    /// Renumbers the freshly built core so its generations continue
    /// from `first` instead of 0 — the service's supervisor uses this
    /// after a restart so generation numbers are never reused across
    /// core incarnations and verdict provenance stays unambiguous.
    ///
    /// # Panics
    ///
    /// Panics if any stream has already connected or a suite swap has
    /// already happened: renumbering is only sound on a pristine core.
    pub fn set_first_generation(&mut self, first: u64) {
        assert!(
            self.lanes.in_use() == 0 && self.pending.is_empty() && self.draining.is_empty(),
            "generations renumber only on a pristine core"
        );
        self.active.generation = first;
        self.active.batch.set_generation(first);
        self.next_generation = first + 1;
    }

    /// The signal-table family this shard serves.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// The shard's lane width (maximum concurrent streams).
    pub fn width(&self) -> usize {
        self.lanes.lanes()
    }

    /// Streams currently bound to lanes.
    pub fn occupied(&self) -> usize {
        self.lanes.in_use()
    }

    /// Connections still waiting for a lane.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The generation new connections land on.
    pub fn active_generation(&self) -> u64 {
        self.active.generation
    }

    /// Generations still draining (monitoring pre-swap streams).
    pub fn draining_generations(&self) -> Vec<u64> {
        self.draining.iter().map(|s| s.generation).collect()
    }

    /// Whether the shard has nothing to do: no bound streams and no
    /// queued connections. An idle shard's [`wave`](ShardCore::wave) is
    /// a no-op, so a worker can park until the next control message.
    pub fn is_idle(&self) -> bool {
        self.lanes.in_use() == 0 && self.pending.is_empty()
    }

    /// Hot-swaps the monitor suite: the current generation moves to
    /// draining (or unloads at once if no stream is on it) and the new
    /// template is loaded and activated as the next generation. Streams
    /// already connected are unaffected — their verdicts keep flowing
    /// from the generation they connected under.
    ///
    /// # Panics
    ///
    /// Panics if `template` is compiled against a different signal
    /// table than this shard serves.
    pub fn load_suite(&mut self, template: &SuiteTemplate) {
        assert!(
            Arc::ptr_eq(template.table(), &self.table),
            "a shard serves exactly one signal-table family"
        );
        let generation = self.next_generation;
        self.next_generation += 1;
        let fresh = SuiteSlot::load(template, self.lanes.lanes(), generation);
        let old = std::mem::replace(&mut self.active, fresh);
        if old.occupied == 0 {
            self.events.push(ReportEvent::SuiteUnloaded {
                shard: self.shard,
                generation: old.generation,
            });
        } else {
            self.draining.push(old);
        }
    }

    /// Connects a stream: it claims a free lane right away — binding it
    /// to the currently active suite generation, so connects and
    /// [`load_suite`](ShardCore::load_suite) calls take effect in call
    /// order — or queues until a running stream closes (and is then
    /// admitted under the generation active at admission).
    pub fn connect(&mut self, id: StreamId, source: Box<dyn StreamSource>) {
        self.pending.push_back(PendingStream { id, source });
        self.admit_pending();
    }

    /// Advances the shard by one lockstep wave: admits queued
    /// connections onto free lanes, polls one frame per bound stream —
    /// **without blocking** — and runs one *masked* batched observe
    /// pass per generation carrying exactly the lanes that delivered a
    /// frame. Streams that answered
    /// [`Poll::Pending`] are skipped (and
    /// evicted once their stall streak passes the configured deadline),
    /// streams that ended are retired, and streams that answered
    /// [`Poll::Corrupt`] are quarantined
    /// — all without perturbing any other lane's verdicts. Every
    /// `report_every` waves the newly closed violation intervals drain
    /// into [`ReportEvent::Violations`]. Returns the number of frames
    /// observed (0 when the shard is empty or every stream is pending —
    /// the caller may briefly park before the next wave).
    ///
    /// # Errors
    ///
    /// A monitor evaluation error is fatal for this core, exactly as it
    /// is for a scalar suite: the caller should report it and rebuild
    /// (the service's supervisor restarts the shard).
    pub fn wave(&mut self) -> Result<usize, BatchMonitorError> {
        self.admit_pending();
        if self.lanes.in_use() == 0 {
            return Ok(0);
        }
        let width = self.lanes.lanes();
        self.live[..width].fill(false);
        let mut pulled = 0usize;
        for lane in 0..width {
            let Some(stream) = self.streams[lane].as_mut() else {
                continue;
            };
            match stream.source.poll_frame(&mut self.scratch) {
                Poll::Frame => {
                    stream.stalled_waves = 0;
                    self.slab.write_lane_from(lane, &self.scratch);
                    self.live[lane] = true;
                    pulled += 1;
                }
                Poll::Pending => {
                    stream.stalled_waves += 1;
                    if let Some(limit) = self.stall_limit {
                        if stream.stalled_waves >= limit {
                            let waves = stream.stalled_waves;
                            self.evict(lane, EvictReason::Stalled { waves });
                        }
                    }
                }
                Poll::End => self.retire(lane),
                Poll::Corrupt(detail) => {
                    self.evict(lane, EvictReason::Corrupt { detail });
                }
            }
        }
        if pulled == 0 {
            return Ok(0);
        }
        if self.active.occupied > 0 {
            self.active
                .batch
                .observe_slab_masked(&self.slab, &self.live)?;
        }
        for slot in &mut self.draining {
            if slot.occupied > 0 {
                slot.batch.observe_slab_masked(&self.slab, &self.live)?;
            }
        }
        self.waves += 1;
        if self.waves.is_multiple_of(self.report_every) {
            self.drain_live_violations();
        }
        Ok(pulled)
    }

    /// Closes down the shard: every bound stream is retired and
    /// summarized, queued connections are closed unobserved (a
    /// [`StreamSummary`] with zero ticks), and every generation —
    /// draining and active — is unloaded.
    pub fn shutdown(&mut self) {
        for lane in 0..self.lanes.lanes() {
            if self.streams[lane].is_some() {
                self.retire(lane);
            }
        }
        while let Some(pending) = self.pending.pop_front() {
            self.events.push(ReportEvent::StreamClosed(StreamSummary {
                stream: pending.id,
                shard: self.shard,
                generation: self.active.generation,
                ticks: 0,
                violations: Vec::new(),
            }));
        }
        // Retiring the last stream of each draining generation already
        // unloaded it; the active generation unloads here.
        debug_assert!(self.draining.is_empty());
        self.events.push(ReportEvent::SuiteUnloaded {
            shard: self.shard,
            generation: self.active.generation,
        });
    }

    /// Drains the events emitted since the previous call, in order.
    pub fn take_events(&mut self) -> Vec<ReportEvent> {
        std::mem::take(&mut self.events)
    }

    /// Binds queued connections to free lanes, oldest first.
    fn admit_pending(&mut self) {
        while !self.pending.is_empty() {
            let Some(lane) = self.lanes.claim() else {
                break;
            };
            let pending = self.pending.pop_front().expect("checked non-empty");
            self.active.batch.reclaim_lane(lane);
            self.active.occupied += 1;
            self.streams[lane] = Some(LaneStream {
                id: pending.id,
                source: pending.source,
                generation: self.active.generation,
                stalled_waves: 0,
            });
        }
    }

    /// Ends the stream on `lane` cleanly: closes out the lane and emits
    /// the stream's [`StreamSummary`].
    fn retire(&mut self, lane: usize) {
        let (stream, ticks, violations) = self.close_lane(lane);
        self.events.push(ReportEvent::StreamClosed(StreamSummary {
            stream: stream.id,
            shard: self.shard,
            generation: stream.generation,
            ticks,
            violations,
        }));
        self.unload_if_drained(stream.generation);
    }

    /// Forcibly removes the stream on `lane` — stalled past the
    /// deadline or quarantined as corrupt — closing out the lane
    /// exactly like a clean end (open intervals close at the last
    /// observed tick) but emitting [`ReportEvent::StreamEvicted`] with
    /// the reason as provenance. Dropping the boxed source closes the
    /// transport, so the producer observes the eviction as a
    /// disconnect.
    fn evict(&mut self, lane: usize, reason: EvictReason) {
        let (stream, ticks, violations) = self.close_lane(lane);
        self.events.push(ReportEvent::StreamEvicted(StreamEviction {
            stream: stream.id,
            shard: self.shard,
            generation: stream.generation,
            ticks,
            violations,
            reason,
        }));
        self.unload_if_drained(stream.generation);
    }

    /// The shared lane close-out: retires the lane in its generation's
    /// batch (closing open intervals at the stream's true end), drains
    /// its violations, and releases the lane for reuse. Returns the
    /// unbound stream and its final record.
    fn close_lane(&mut self, lane: usize) -> (LaneStream, u64, StreamViolations) {
        let stream = self.streams[lane]
            .take()
            .expect("close_lane needs a bound lane");
        let slot = self.slot_mut(stream.generation);
        slot.batch.retire_lane(lane);
        let ticks = slot.batch.steps_observed(lane);
        let violations = slot.batch.take_violations_lane(lane);
        slot.occupied -= 1;
        self.lanes.release(lane);
        (stream, ticks, violations)
    }

    /// Unloads `generation` if it is draining and its last stream just
    /// closed.
    fn unload_if_drained(&mut self, generation: u64) {
        if generation == self.active.generation {
            return;
        }
        let idx = self
            .draining
            .iter()
            .position(|s| s.generation == generation)
            .expect("a non-active generation drains in the draining set");
        if self.draining[idx].occupied == 0 {
            self.draining.remove(idx);
            self.events.push(ReportEvent::SuiteUnloaded {
                shard: self.shard,
                generation,
            });
        }
    }

    /// Emits the newly closed violation intervals of every live stream.
    fn drain_live_violations(&mut self) {
        for lane in 0..self.lanes.lanes() {
            let Some(stream) = self.streams[lane].as_ref() else {
                continue;
            };
            let (id, generation) = (stream.id, stream.generation);
            let shard = self.shard;
            let slot = self.slot_mut(generation);
            let violations = slot.batch.take_violations_lane(lane);
            if !violations.is_empty() {
                self.events.push(ReportEvent::Violations(ViolationReport {
                    stream: id,
                    shard,
                    generation,
                    violations,
                }));
            }
        }
    }

    fn slot_mut(&mut self, generation: u64) -> &mut SuiteSlot {
        if self.active.generation == generation {
            &mut self.active
        } else {
            self.draining
                .iter_mut()
                .find(|s| s.generation == generation)
                .expect("a stream's generation is loaded for the stream's lifetime")
        }
    }
}
