//! Violation reporting: the typed events a service emits on its
//! bounded report channel, each carrying per-stream provenance (stream
//! id, suite generation, stream-local tick intervals).

use esafe_monitor::ViolationInterval;

/// A service-assigned stream identity, unique for the service's
/// lifetime and carried on every report about the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream-{}", self.0)
    }
}

/// A shard's index within its service — one shard per
/// [`SignalTable`](esafe_logic::SignalTable) family, one worker thread
/// per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub usize);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// Per-monitor violation intervals, `(monitor id, intervals)` in suite
/// insertion order, ticks counted from the stream's own first frame.
pub type StreamViolations = Vec<(String, Vec<ViolationInterval>)>;

/// A live stream's violations drained mid-run (periodic report). Only
/// *closed* intervals are reported here; an interval still open stays
/// with the monitor and is delivered closed — by a later drain or by
/// the stream's [`StreamSummary`]. Aggregate by [`StreamId`] for a
/// stream's complete record.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationReport {
    /// The violating stream.
    pub stream: StreamId,
    /// The shard that monitored it.
    pub shard: ShardId,
    /// The suite generation whose monitors produced the verdicts.
    pub generation: u64,
    /// The newly closed violation intervals, in stream-local ticks.
    pub violations: StreamViolations,
}

/// A stream's end-of-run record, emitted exactly once per connected
/// stream when its source ends (or the service shuts down).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// The finished stream.
    pub stream: StreamId,
    /// The shard that monitored it.
    pub shard: ShardId,
    /// The suite generation the stream ran under (streams never migrate
    /// between generations — a hot swap only affects later connections).
    pub generation: u64,
    /// Frames observed over the stream's lifetime.
    pub ticks: u64,
    /// Violations not yet delivered by a periodic [`ViolationReport`];
    /// open intervals are closed at the stream's final tick.
    pub violations: StreamViolations,
}

/// One event on the service's bounded report channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportEvent {
    /// A live stream's periodic violation drain (non-empty by
    /// construction).
    Violations(ViolationReport),
    /// A stream finished; its lane is reclaimable.
    StreamClosed(StreamSummary),
    /// A drained suite generation left its shard: every stream it was
    /// monitoring has closed, completing the
    /// `load → activate → drain → deactivate → unload` lifecycle.
    SuiteUnloaded {
        /// The shard the suite ran on.
        shard: ShardId,
        /// The unloaded suite's generation.
        generation: u64,
    },
    /// A shard worker exited — cleanly on shutdown (`error: None`) or
    /// fatally on a monitor evaluation error.
    ShardStopped {
        /// The stopped shard.
        shard: ShardId,
        /// The fatal error, if the stop was not a requested shutdown.
        error: Option<String>,
    },
}
