//! Violation reporting: the typed events a service emits on its
//! bounded report channel, each carrying per-stream provenance (stream
//! id, suite generation, stream-local tick intervals).

use esafe_monitor::ViolationInterval;

/// A service-assigned stream identity, unique for the service's
/// lifetime and carried on every report about the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream-{}", self.0)
    }
}

/// A shard's index within its service — one shard per
/// [`SignalTable`](esafe_logic::SignalTable) family, one worker thread
/// per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub usize);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// Per-monitor violation intervals, `(monitor id, intervals)` in suite
/// insertion order, ticks counted from the stream's own first frame.
pub type StreamViolations = Vec<(String, Vec<ViolationInterval>)>;

/// A live stream's violations drained mid-run (periodic report). Only
/// *closed* intervals are reported here; an interval still open stays
/// with the monitor and is delivered closed — by a later drain or by
/// the stream's [`StreamSummary`]. Aggregate by [`StreamId`] for a
/// stream's complete record.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationReport {
    /// The violating stream.
    pub stream: StreamId,
    /// The shard that monitored it.
    pub shard: ShardId,
    /// The suite generation whose monitors produced the verdicts.
    pub generation: u64,
    /// The newly closed violation intervals, in stream-local ticks.
    pub violations: StreamViolations,
}

/// Why the service forcibly removed a stream (see
/// [`ReportEvent::StreamEvicted`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictReason {
    /// The stream answered `Pending` for more consecutive waves than
    /// the shard's configured stall deadline
    /// ([`stall_limit`](crate::shard::ShardConfig::stall_limit)): the
    /// producer stalled (or maliciously went quiet) while the wave
    /// front moved on, and its lane was reclaimed.
    Stalled {
        /// Consecutive frameless waves at eviction — at least the
        /// configured deadline.
        waves: u64,
    },
    /// The stream's transport yielded undecodable data
    /// ([`Poll::Corrupt`](crate::source::Poll::Corrupt)); the detail is
    /// the decoder's diagnosis. The stream is quarantined — removed
    /// with its verdicts-so-far — and every other stream on the shard
    /// is untouched.
    Corrupt {
        /// The transport's description of what failed to decode.
        detail: String,
    },
    /// The shard's worker panicked mid-wave and was restarted by the
    /// supervisor. In-flight streams are lost (their `ticks` and
    /// violation records went down with the panicked core), reported
    /// with zero ticks so the loss is visible, and their producers see
    /// a closed transport. New connects keep landing on the restarted
    /// shard.
    ShardRestart,
}

impl std::fmt::Display for EvictReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictReason::Stalled { waves } => {
                write!(f, "stalled for {waves} consecutive waves")
            }
            EvictReason::Corrupt { detail } => write!(f, "corrupt stream: {detail}"),
            EvictReason::ShardRestart => write!(f, "lost to a shard restart"),
        }
    }
}

/// A stream the service removed without a clean end-of-stream from its
/// source: stalled past the deadline, quarantined as corrupt, or lost
/// to a shard restart. Carries the same provenance as a
/// [`StreamSummary`] plus the reason.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamEviction {
    /// The evicted stream.
    pub stream: StreamId,
    /// The shard that was monitoring it.
    pub shard: ShardId,
    /// The suite generation the stream ran under.
    pub generation: u64,
    /// Frames observed before eviction (0 for
    /// [`EvictReason::ShardRestart`], whose core state is gone).
    pub ticks: u64,
    /// Violations recorded up to the eviction point and not yet
    /// delivered by a periodic drain; open intervals are closed at the
    /// last observed tick.
    pub violations: StreamViolations,
    /// Why the stream was removed.
    pub reason: EvictReason,
}

/// A stream's end-of-run record, emitted exactly once per connected
/// stream when its source ends (or the service shuts down).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// The finished stream.
    pub stream: StreamId,
    /// The shard that monitored it.
    pub shard: ShardId,
    /// The suite generation the stream ran under (streams never migrate
    /// between generations — a hot swap only affects later connections).
    pub generation: u64,
    /// Frames observed over the stream's lifetime.
    pub ticks: u64,
    /// Violations not yet delivered by a periodic [`ViolationReport`];
    /// open intervals are closed at the stream's final tick.
    pub violations: StreamViolations,
}

/// One event on the service's bounded report channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportEvent {
    /// A live stream's periodic violation drain (non-empty by
    /// construction).
    Violations(ViolationReport),
    /// A stream finished; its lane is reclaimable.
    StreamClosed(StreamSummary),
    /// A stream was forcibly removed — stalled past the deadline,
    /// quarantined as corrupt, or lost to a shard restart. Emitted
    /// exactly once per evicted stream, *instead of*
    /// [`StreamClosed`](ReportEvent::StreamClosed).
    StreamEvicted(StreamEviction),
    /// The shard dropped `dropped` report events because the report
    /// channel was full and the service runs the
    /// [`DropAndCount`](crate::service::ReportOverflow::DropAndCount)
    /// overflow policy. Consecutive drops coalesce into one event, so a
    /// slow consumer sees how much it missed without ever stalling the
    /// shard.
    ReportsDropped {
        /// The shard that had to drop.
        shard: ShardId,
        /// Events dropped since the last `ReportsDropped` that got
        /// through.
        dropped: u64,
    },
    /// A panicked (or evaluation-failed) shard worker was rebuilt by
    /// its supervisor with the surviving suite configuration. Emitted
    /// after the corresponding
    /// [`ShardStopped`](ReportEvent::ShardStopped) `{error: Some(..)}`
    /// and the per-stream
    /// [`StreamEvicted`](ReportEvent::StreamEvicted)
    /// `{reason: ShardRestart}` records: the shard is degraded — those
    /// streams' verdicts are gone — but never dead, and new connects
    /// keep landing.
    ShardRestarted {
        /// The restarted shard.
        shard: ShardId,
        /// Streams (bound and queued) lost with the previous core.
        streams_lost: usize,
    },
    /// A drained suite generation left its shard: every stream it was
    /// monitoring has closed, completing the
    /// `load → activate → drain → deactivate → unload` lifecycle.
    SuiteUnloaded {
        /// The shard the suite ran on.
        shard: ShardId,
        /// The unloaded suite's generation.
        generation: u64,
    },
    /// A shard worker's core stopped — cleanly on shutdown
    /// (`error: None`), or on a wave panic / monitor evaluation error
    /// (`error: Some`). An erroring stop is followed by a
    /// [`ShardRestarted`](ReportEvent::ShardRestarted): the supervisor
    /// rebuilds the core and keeps serving.
    ShardStopped {
        /// The stopped shard.
        shard: ShardId,
        /// The fatal error, if the stop was not a requested shutdown.
        error: Option<String>,
    },
}
