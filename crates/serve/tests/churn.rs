//! Lane-churn property: a shard serving a random schedule of
//! connecting/ending streams over reusable lanes must report, for every
//! stream, exactly the violations a dedicated scalar [`MonitorSuite`]
//! reports for that stream's trace — whatever lane the stream landed
//! on, however many times the lane was reclaimed, and whatever the
//! periodic report cadence delivered mid-run.

use esafe_logic::{parse, Frame, SignalTable};
use esafe_monitor::{Location, MonitorSuite, SuiteTemplate, ViolationInterval};
use esafe_serve::{Poll, ReportEvent, ShardConfig, ShardCore, ShardId, StreamId, StreamSource};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The monitored namespace: a real ramp value and a boolean pulse.
struct Sigs {
    table: Arc<SignalTable>,
    x: esafe_logic::SignalId,
    p: esafe_logic::SignalId,
    template: Arc<SuiteTemplate>,
}

fn sigs() -> Sigs {
    let mut b = SignalTable::builder();
    let x = b.real("x");
    let p = b.bool("p");
    let table = b.finish();
    let mut suite = MonitorSuite::new(table.clone());
    suite
        .add_goal("G", Location::new("Churn"), parse("x < 40.0").unwrap())
        .unwrap();
    suite
        .add_subgoal(
            "G.hold",
            "G",
            Location::new("Churn"),
            parse("held_for(x < 35.0, 2ticks)").unwrap(),
        )
        .unwrap();
    suite
        .add_goal("H", Location::new("Churn"), parse("prev(p) -> p").unwrap())
        .unwrap();
    let template = Arc::new(suite.template());
    Sigs {
        table,
        x,
        p,
        template,
    }
}

/// A test stream: its frames, handed out one per wave.
struct ScriptSource {
    frames: std::vec::IntoIter<Frame>,
}

impl StreamSource for ScriptSource {
    fn poll_frame(&mut self, frame: &mut Frame) -> Poll {
        match self.frames.next() {
            Some(next) => {
                *frame = next;
                Poll::Frame
            }
            None => Poll::End,
        }
    }
}

/// An `f64` strategy over `[lo, hi)` in 1/512 steps (the vendored
/// proptest shim samples integer ranges).
fn real(lo: f64, hi: f64) -> impl Strategy<Value = f64> {
    (0u64..2048).prop_map(move |q| lo + (hi - lo) * q as f64 / 2048.0)
}

fn tick() -> impl Strategy<Value = (f64, bool)> {
    (real(20.0, 50.0), (0u8..2).prop_map(|b| b == 1))
}

/// One stream's schedule: the wave it connects at, and its trace.
fn stream() -> impl Strategy<Value = (u64, Vec<(f64, bool)>)> {
    (0u64..40, proptest::collection::vec(tick(), 1..30))
}

fn frames_of(sigs: &Sigs, trace: &[(f64, bool)]) -> Vec<Frame> {
    trace
        .iter()
        .map(|&(x, p)| {
            let mut f = sigs.table.frame();
            f.set(sigs.x, x);
            f.set(sigs.p, p);
            f
        })
        .collect()
}

/// The reference: a dedicated scalar suite over one stream's trace.
fn scalar_violations(
    sigs: &Sigs,
    trace: &[(f64, bool)],
) -> BTreeMap<String, Vec<ViolationInterval>> {
    let mut suite = sigs.template.instantiate();
    for frame in frames_of(sigs, trace) {
        suite.observe(&frame).unwrap();
    }
    suite.finish();
    suite.take_violations().into_iter().collect()
}

/// Runs the schedule through one shard and checks every stream's merged
/// report (periodic drains + final summary) against its scalar twin.
fn check_churn(width: usize, report_every: u64, schedule: Vec<(u64, Vec<(f64, bool)>)>) {
    let sigs = sigs();
    let mut core = ShardCore::new(
        ShardId(0),
        &sigs.template,
        ShardConfig {
            width,
            report_every,
            stall_limit: None,
        },
    );

    let mut merged: BTreeMap<u64, BTreeMap<String, Vec<ViolationInterval>>> = BTreeMap::new();
    let mut closed: BTreeMap<u64, u64> = BTreeMap::new();
    let mut by_wave: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, (wave, _)) in schedule.iter().enumerate() {
        by_wave.entry(*wave).or_default().push(i);
    }

    let mut wave = 0u64;
    loop {
        if let Some(ids) = by_wave.get(&wave) {
            for &i in ids {
                core.connect(
                    StreamId(i as u64),
                    Box::new(ScriptSource {
                        frames: frames_of(&sigs, &schedule[i].1).into_iter(),
                    }),
                );
            }
        }
        let last_connect = by_wave.keys().next_back().copied().unwrap_or(0);
        let processed = core.wave().unwrap();
        for event in core.take_events() {
            match event {
                ReportEvent::Violations(report) => {
                    let per_stream = merged.entry(report.stream.0).or_default();
                    for (monitor, intervals) in report.violations {
                        per_stream.entry(monitor).or_default().extend(intervals);
                    }
                }
                ReportEvent::StreamClosed(summary) => {
                    let per_stream = merged.entry(summary.stream.0).or_default();
                    for (monitor, intervals) in summary.violations {
                        per_stream.entry(monitor).or_default().extend(intervals);
                    }
                    let previous = closed.insert(summary.stream.0, summary.ticks);
                    assert!(previous.is_none(), "one summary per stream");
                }
                other => panic!("unexpected event without a hot swap: {other:?}"),
            }
        }
        wave += 1;
        if processed == 0 && core.is_idle() && wave > last_connect {
            break;
        }
        assert!(wave < 10_000, "the schedule must terminate");
    }

    for (i, (_, trace)) in schedule.iter().enumerate() {
        let id = i as u64;
        assert_eq!(
            closed.get(&id),
            Some(&(trace.len() as u64)),
            "stream {id} must close after its whole trace"
        );
        let expected = scalar_violations(&sigs, trace);
        let got = merged.remove(&id).unwrap_or_default();
        // Drop monitors whose merged record is empty (a periodic drain
        // can never produce one, but the guard keeps the comparison
        // strictly about intervals).
        let got: BTreeMap<_, _> = got.into_iter().filter(|(_, v)| !v.is_empty()).collect();
        assert_eq!(got, expected, "stream {id} diverged from its scalar twin");
    }
}

proptest! {
    /// Random fleets over random shard widths (the full 1–128 span) and
    /// report cadences: per-stream reports are lane- and
    /// schedule-independent.
    #[test]
    fn churned_streams_match_scalar_suites(
        width in 1usize..129,
        report_every in 1u64..6,
        schedule in proptest::collection::vec(stream(), 1..12),
    ) {
        check_churn(width, report_every, schedule);
    }
}

/// The boundary widths, pinned deterministically: a 1-lane shard
/// serializes every stream through one endlessly reclaimed lane; a
/// 128-lane shard runs the whole schedule concurrently.
#[test]
fn boundary_widths_serialize_and_parallelize() {
    let schedule: Vec<(u64, Vec<(f64, bool)>)> = (0..9)
        .map(|i| {
            let trace = (0..(5 + i * 3))
                .map(|t| (30.0 + (t as f64) + (i as f64), t % 3 != 0))
                .collect();
            (i as u64 % 4, trace)
        })
        .collect();
    check_churn(1, 1, schedule.clone());
    check_churn(128, 3, schedule);
}
