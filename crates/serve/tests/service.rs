//! Service-level integration: suite hot-swapping without stream drops,
//! lane queueing on a saturated shard, and the TCP transport
//! end-to-end.

use esafe_logic::{parse, Frame, SignalId, SignalTable};
use esafe_monitor::{Location, MonitorSuite, SuiteTemplate, ViolationInterval};
use esafe_serve::{tcp, MonitorService, ReportEvent, ServiceConfig, StreamId, StreamSummary};
use std::sync::Arc;
use std::time::Duration;

fn table() -> (Arc<SignalTable>, SignalId) {
    let mut b = SignalTable::builder();
    let x = b.real("x");
    (b.finish(), x)
}

/// A one-goal suite `x < limit` compiled against `table`, with the goal
/// named after the generation so misattributed verdicts are visible.
fn suite(table: &Arc<SignalTable>, goal: &str, limit: f64) -> Arc<SuiteTemplate> {
    let mut suite = MonitorSuite::new(table.clone());
    suite
        .add_goal(
            goal,
            Location::new("Svc"),
            parse(&format!("x < {limit:?}")).unwrap(),
        )
        .unwrap();
    Arc::new(suite.template())
}

fn frame(table: &Arc<SignalTable>, x: SignalId, value: f64) -> Frame {
    let mut f = table.frame();
    f.set(x, value);
    f
}

fn next_event(service: &MonitorService) -> ReportEvent {
    service
        .recv_report_timeout(Duration::from_secs(30))
        .expect("the service must keep reporting")
}

/// Collects events until every stream in `streams` has closed; returns
/// the summaries (in `streams` order) and everything else seen.
fn wait_summaries(
    service: &MonitorService,
    streams: &[StreamId],
) -> (Vec<StreamSummary>, Vec<ReportEvent>) {
    let mut summaries: Vec<Option<StreamSummary>> = vec![None; streams.len()];
    let mut others = Vec::new();
    while summaries.iter().any(Option::is_none) {
        match next_event(service) {
            ReportEvent::StreamClosed(summary) => {
                match streams.iter().position(|&s| s == summary.stream) {
                    Some(i) => summaries[i] = Some(summary),
                    None => others.push(ReportEvent::StreamClosed(summary)),
                }
            }
            other => others.push(other),
        }
    }
    (summaries.into_iter().map(Option::unwrap).collect(), others)
}

#[test]
fn hot_swap_drops_no_stream_and_no_verdict_crosses_generations() {
    let (table, x) = table();
    let gen0 = suite(&table, "G0", 40.0);
    let gen1 = suite(&table, "G1", 30.0);

    let mut service = MonitorService::new(ServiceConfig {
        lanes_per_shard: 8,
        ..ServiceConfig::default()
    });
    let shard = service.load_suite(&gen0);

    // Stream A connects under generation 0 and outlives the swap.
    let (sender_a, id_a) = service.connect_channel(&table, 16).unwrap();
    for v in [10.0, 45.0, 45.0, 10.0, 50.0, 10.0] {
        sender_a.send(frame(&table, x, v)).unwrap();
    }

    // Hot swap: the swap and stream B's connect are ordered behind A's
    // connect on the shard's control channel, so B lands on G1 while A
    // finishes under G0.
    assert_eq!(service.load_suite(&gen1), shard, "same family, same shard");
    let (sender_b, id_b) = service.connect_channel(&table, 16).unwrap();
    // B's values satisfy G0 everywhere but break G1 for two ticks: any
    // cross-generation attribution shows up as the wrong monitor name
    // (or no violation at all).
    for v in [35.0, 35.0, 10.0, 10.0] {
        sender_b.send(frame(&table, x, v)).unwrap();
    }
    drop(sender_a);
    drop(sender_b);

    let (summaries, seen) = wait_summaries(&service, &[id_a, id_b]);
    let (summary_a, summary_b) = (&summaries[0], &summaries[1]);
    assert_eq!(summary_a.generation, 0);
    assert_eq!(summary_a.ticks, 6, "the swap must not cut stream A short");
    assert_eq!(
        summary_a.violations,
        vec![(
            "G0".to_string(),
            vec![
                ViolationInterval {
                    start_tick: 1,
                    end_tick: 3
                },
                ViolationInterval {
                    start_tick: 4,
                    end_tick: 5
                },
            ]
        )]
    );

    assert_eq!(summary_b.generation, 1);
    assert_eq!(summary_b.ticks, 4, "stream B must run its whole trace");
    assert_eq!(
        summary_b.violations,
        vec![(
            "G1".to_string(),
            vec![ViolationInterval {
                start_tick: 0,
                end_tick: 2
            }]
        )]
    );

    // Generation 0 unloads once its last stream (A) closes — either
    // already seen while waiting, or next on the channel.
    let unloaded_gen0 = seen
        .iter()
        .any(|e| matches!(e, ReportEvent::SuiteUnloaded { generation: 0, .. }))
        || matches!(
            next_event(&service),
            ReportEvent::SuiteUnloaded { generation: 0, .. }
        );
    assert!(unloaded_gen0, "the drained generation must unload");

    let remaining = service.shutdown();
    assert!(
        remaining
            .iter()
            .any(|e| matches!(e, ReportEvent::SuiteUnloaded { generation: 1, .. })),
        "shutdown unloads the active generation"
    );
    assert!(remaining
        .iter()
        .any(|e| matches!(e, ReportEvent::ShardStopped { error: None, .. })));
}

#[test]
fn saturated_shard_queues_and_reclaims_the_lane() {
    let (table, x) = table();
    let template = suite(&table, "G", 40.0);
    let mut service = MonitorService::new(ServiceConfig {
        lanes_per_shard: 1,
        ..ServiceConfig::default()
    });
    service.load_suite(&template);

    // Two streams on a one-lane shard: the second waits for the lane.
    let (sender_a, id_a) = service.connect_channel(&table, 8).unwrap();
    let (sender_b, id_b) = service.connect_channel(&table, 8).unwrap();
    for v in [45.0, 10.0] {
        sender_a.send(frame(&table, x, v)).unwrap();
    }
    drop(sender_a);
    for v in [10.0, 45.0, 45.0] {
        sender_b.send(frame(&table, x, v)).unwrap();
    }
    drop(sender_b);

    let (summaries, _) = wait_summaries(&service, &[id_a, id_b]);
    let (summary_a, summary_b) = (&summaries[0], &summaries[1]);
    assert_eq!(summary_a.ticks, 2);
    assert_eq!(
        summary_a.violations,
        vec![(
            "G".to_string(),
            vec![ViolationInterval {
                start_tick: 0,
                end_tick: 1
            }]
        )]
    );
    // Stream B ran on the same (only) lane after A released it, from a
    // clean monitor state: its violation starts at ITS tick 1.
    assert_eq!(summary_b.ticks, 3);
    assert_eq!(
        summary_b.violations,
        vec![(
            "G".to_string(),
            vec![ViolationInterval {
                start_tick: 1,
                end_tick: 3
            }]
        )]
    );
    service.shutdown();
}

#[test]
fn tcp_transport_monitors_a_remote_stream() {
    let (table, _x) = table();
    let template = suite(&table, "G", 40.0);
    let mut service = MonitorService::new(ServiceConfig {
        lanes_per_shard: 4,
        ..ServiceConfig::default()
    });
    service.load_suite(&template);
    let connector = service.connector(&table).unwrap();

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let acceptor = tcp::spawn_acceptor(listener, connector).unwrap();
    let addr = acceptor.addr();

    let producer = std::thread::spawn(move || {
        let mut sender = tcp::TcpFrameSender::connect(addr).unwrap();
        let mut b = SignalTable::builder();
        let x = b.real("x");
        let table = b.finish(); // the producer's own namespace copy
        for v in [10.0, 45.0, 10.0, 10.0, 42.0] {
            let mut f = table.frame();
            f.set(x, v);
            sender.send(&f).unwrap();
        }
        // Dropping the sender closes the socket: clean end of stream.
    });

    // The acceptor assigns the stream id; find it via the summary.
    let summary = loop {
        match next_event(&service) {
            ReportEvent::StreamClosed(summary) => break summary,
            _ => continue,
        }
    };
    producer.join().unwrap();
    assert_eq!(summary.ticks, 5);
    assert_eq!(
        summary.violations,
        vec![(
            "G".to_string(),
            vec![
                ViolationInterval {
                    start_tick: 1,
                    end_tick: 2
                },
                ViolationInterval {
                    start_tick: 4,
                    end_tick: 5
                },
            ]
        )]
    );
    acceptor.stop();
    service.shutdown();
}
