//! Fuzzing the TCP frame codec: arbitrary corruption, truncation, and
//! raw garbage must never panic the decoder (a hostile peer gets a
//! [`DecodeError`] quarantine, not a crashed shard), while untouched
//! frames round-trip bit-identically.
//!
//! [`DecodeError`]: esafe_serve::DecodeError

use esafe_logic::{Frame, SignalTable, Value};
use esafe_serve::tcp::{decode_payload, read_frame, write_frame};
use proptest::prelude::*;
use std::sync::Arc;

fn table() -> Arc<SignalTable> {
    let mut b = SignalTable::builder();
    b.bool("flag");
    b.int("count");
    b.real("x");
    b.sym("cmd");
    b.finish()
}

/// Builds a frame from fuzz picks: each `(selector, bits)` sets one of
/// the four signals to a value derived from `bits`. Reals are kept
/// finite and non-NaN so round-trip equality is meaningful.
fn build(table: &Arc<SignalTable>, picks: &[(u8, u64)]) -> Frame {
    let mut f = table.frame();
    for &(sel, bits) in picks {
        match sel % 4 {
            0 => f.set(table.id("flag").unwrap(), Value::Bool(bits & 1 == 1)),
            1 => f.set(table.id("count").unwrap(), Value::Int(bits as i64)),
            2 => f.set(
                table.id("x").unwrap(),
                Value::Real((bits % 1_000_000) as f64 / 8.0 - 1000.0),
            ),
            _ => f.set(
                table.id("cmd").unwrap(),
                Value::sym(["GO", "STOP", "HOLD", "IDLE"][(bits % 4) as usize]),
            ),
        }
    }
    f
}

/// Reads messages until clean EOF or the first error; the property
/// under test is simply that this returns instead of panicking.
fn drain_wire(table: &Arc<SignalTable>, wire: &[u8]) -> (usize, bool) {
    let mut reader = wire;
    let mut frame = table.frame();
    let mut decoded = 0usize;
    loop {
        match read_frame(&mut reader, &mut frame) {
            Ok(true) => decoded += 1,
            Ok(false) => return (decoded, true),
            Err(_) => return (decoded, false),
        }
    }
}

fn pick() -> impl Strategy<Value = (u8, u64)> {
    (0u8..8, 0u64..u64::MAX)
}

proptest! {
    /// Untouched frames round-trip bit-identically, any mix of value
    /// kinds, any signal subset (including the empty frame).
    #[test]
    fn untouched_frames_round_trip_bit_identically(
        frames in proptest::collection::vec(
            proptest::collection::vec(pick(), 0..10),
            1..6,
        ),
    ) {
        let table = table();
        let originals: Vec<Frame> = frames.iter().map(|p| build(&table, p)).collect();
        let mut wire = Vec::new();
        for frame in &originals {
            write_frame(&mut wire, frame).unwrap();
        }
        let mut reader = &wire[..];
        let mut decoded = table.frame();
        for (i, original) in originals.iter().enumerate() {
            assert!(read_frame(&mut reader, &mut decoded).unwrap(), "frame {i}");
            assert_eq!(&decoded, original, "frame {i} must survive the wire");
        }
        assert!(!read_frame(&mut reader, &mut decoded).unwrap(), "clean EOF");
    }

    /// Arbitrary byte corruption of a valid wire never panics the
    /// decoder: it either still decodes (the flip hit a value payload)
    /// or fails with an error.
    #[test]
    fn corrupted_wire_never_panics(
        picks in proptest::collection::vec(pick(), 0..10),
        flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..8),
    ) {
        let table = table();
        let frame = build(&table, &picks);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        write_frame(&mut wire, &frame).unwrap();
        for &(pos, mask) in &flips {
            let at = pos % wire.len();
            wire[at] ^= mask;
        }
        let _ = drain_wire(&table, &wire);
    }

    /// Truncation at every possible byte boundary never panics: a cut
    /// mid-message is an error, a cut at a message boundary is a clean
    /// EOF, and the complete messages before the cut still decode.
    #[test]
    fn truncated_wire_never_panics(
        picks in proptest::collection::vec(pick(), 0..10),
        cut in 0usize..100_000,
    ) {
        let table = table();
        let frame = build(&table, &picks);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let message_len = wire.len();
        write_frame(&mut wire, &frame).unwrap();
        let keep = cut % (wire.len() + 1);
        wire.truncate(keep);
        let (decoded, clean) = drain_wire(&table, &wire);
        assert_eq!(
            clean,
            keep % message_len == 0,
            "clean EOF iff the cut hit a message boundary (cut at {keep}/{message_len})"
        );
        assert_eq!(decoded, keep / message_len, "messages fully before the cut decode");
    }

    /// Raw garbage fed straight to the payload decoder never panics.
    #[test]
    fn arbitrary_payload_bytes_never_panic(
        bytes in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..128),
    ) {
        let table = table();
        let mut frame = table.frame();
        let _ = decode_payload(&bytes, &mut frame);
    }
}
