//! Chaos: a mixed healthy/hostile fleet through the service.
//!
//! Two layers, matching the service's two degradation mechanisms:
//!
//! 1. **Deterministic core chaos** — a [`ShardCore`] fed ≥20% faulty
//!    streams (stalls under and over the deadline, a mid-run
//!    disconnect, a corrupt frame, a duplicated tick). Every stream's
//!    merged verdicts must be *bit-identical* to a dedicated scalar
//!    [`MonitorSuite`] replay of the frames the stream actually
//!    delivered, and every faulty stream must be evicted/closed with
//!    the right provenance.
//! 2. **Supervisor chaos** — a live [`MonitorService`] takes an
//!    injected in-wave panic: the shard reports the crash, evicts the
//!    lost streams with [`EvictReason::ShardRestart`], restarts, and
//!    keeps accepting (and correctly monitoring) new connections.

use esafe_logic::{parse, Frame, SignalTable};
use esafe_monitor::{Location, MonitorSuite, SuiteTemplate, ViolationInterval};
use esafe_serve::{
    EvictReason, FaultPlan, FaultySource, MonitorService, ReplaySource, ReportEvent, ServiceConfig,
    ShardConfig, ShardCore, ShardId, StreamId,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

struct Sigs {
    table: Arc<SignalTable>,
    x: esafe_logic::SignalId,
    template: Arc<SuiteTemplate>,
}

fn sigs() -> Sigs {
    let mut b = SignalTable::builder();
    let x = b.real("x");
    let table = b.finish();
    let mut suite = MonitorSuite::new(table.clone());
    suite
        .add_goal("G", Location::new("Chaos"), parse("x < 40.0").unwrap())
        .unwrap();
    suite
        .add_goal(
            "H",
            Location::new("Chaos"),
            parse("held_for(x < 35.0, 2ticks)").unwrap(),
        )
        .unwrap();
    let template = Arc::new(suite.template());
    Sigs { table, x, template }
}

/// Stream `i`'s recorded trace: a deterministic ramp crossing both
/// goal thresholds at stream-specific phases.
fn trace(sigs: &Sigs, stream: usize, ticks: usize) -> Vec<Frame> {
    (0..ticks)
        .map(|t| {
            let mut f = sigs.table.frame();
            f.set(sigs.x, 30.0 + ((stream * 7 + t * 3) % 17) as f64);
            f
        })
        .collect()
}

/// The reference: a dedicated scalar suite over exactly the frames the
/// stream delivered.
fn scalar_violations(sigs: &Sigs, delivered: &[Frame]) -> BTreeMap<String, Vec<ViolationInterval>> {
    let mut suite = sigs.template.instantiate();
    for frame in delivered {
        suite.observe(frame).unwrap();
    }
    suite.finish();
    suite
        .take_violations()
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .collect()
}

/// How each chaos stream must leave the shard.
#[derive(Debug, PartialEq)]
enum Expected {
    Closed,
    EvictedStalled,
    EvictedCorrupt(&'static str),
}

#[test]
fn hostile_fleet_degrades_per_stream_and_healthy_verdicts_are_bit_identical() {
    const STALL_LIMIT: u64 = 4;
    let sigs = sigs();
    let mut core = ShardCore::new(
        ShardId(0),
        &sigs.template,
        ShardConfig {
            width: 8, // 10 streams over 8 lanes: chaos + lane churn
            report_every: 3,
            stall_limit: Some(STALL_LIMIT),
        },
    );

    // The fleet: streams 0-4 healthy, streams 5-9 hostile (50% — well
    // over the ≥20% the robustness bar asks for).
    let ticks = |i: usize| 12 + i; // 12..21 ticks each
    let full = |i: usize| trace(&sigs, i, ticks(i));
    let source = |i: usize, plan: FaultPlan| {
        let t = full(i);
        let n = t.len() as u64;
        Box::new(FaultySource::new(
            ReplaySource::new(Arc::new(t), 0, n),
            plan,
        ))
    };

    let mut plans: Vec<(FaultPlan, Vec<Frame>, Expected)> = Vec::new();
    // 0-4: healthy — full trace, clean close.
    for i in 0..5 {
        plans.push((FaultPlan::new(), full(i), Expected::Closed));
    }
    // 5: duplicated tick — monitored exactly as delivered.
    let mut dup = full(5);
    dup.insert(3, dup[2].clone());
    plans.push((FaultPlan::new().duplicate_frame(2), dup, Expected::Closed));
    // 6: stalls *under* the deadline (3 < 4 consecutive) — must close
    // with verdicts identical to the uninterrupted replay.
    plans.push((
        FaultPlan::new().stall(2, 2).stall(7, 3),
        full(6),
        Expected::Closed,
    ));
    // 7: stalls *past* the deadline after 5 delivered frames.
    plans.push((
        FaultPlan::new().stall(5, 1_000),
        full(7)[..5].to_vec(),
        Expected::EvictedStalled,
    ));
    // 8: corrupt transport after 3 frames — quarantined.
    plans.push((
        FaultPlan::new().corrupt_after(3, "injected bit flip"),
        full(8)[..3].to_vec(),
        Expected::EvictedCorrupt("injected bit flip"),
    ));
    // 9: mid-run disconnect after 4 frames — a clean (early) close.
    plans.push((
        FaultPlan::new().disconnect_after(4),
        full(9)[..4].to_vec(),
        Expected::Closed,
    ));

    for (i, (plan, _, _)) in plans.iter().enumerate() {
        core.connect(StreamId(i as u64), source(i, plan.clone()));
    }

    // Drive waves to quiescence, merging periodic drains with terminal
    // records exactly as an operator would.
    let mut merged: BTreeMap<u64, BTreeMap<String, Vec<ViolationInterval>>> = BTreeMap::new();
    let mut terminal: BTreeMap<u64, (Expected, u64)> = BTreeMap::new();
    let mut waves = 0u64;
    while !core.is_idle() {
        core.wave().unwrap();
        for event in core.take_events() {
            match event {
                ReportEvent::Violations(report) => {
                    let per = merged.entry(report.stream.0).or_default();
                    for (monitor, intervals) in report.violations {
                        per.entry(monitor).or_default().extend(intervals);
                    }
                }
                ReportEvent::StreamClosed(summary) => {
                    let per = merged.entry(summary.stream.0).or_default();
                    for (monitor, intervals) in summary.violations {
                        per.entry(monitor).or_default().extend(intervals);
                    }
                    let seen = terminal.insert(summary.stream.0, (Expected::Closed, summary.ticks));
                    assert!(seen.is_none(), "one terminal event per stream");
                }
                ReportEvent::StreamEvicted(eviction) => {
                    let per = merged.entry(eviction.stream.0).or_default();
                    for (monitor, intervals) in eviction.violations {
                        per.entry(monitor).or_default().extend(intervals);
                    }
                    let expected = match eviction.reason {
                        EvictReason::Stalled { waves } => {
                            assert_eq!(waves, STALL_LIMIT, "evicted exactly at the deadline");
                            Expected::EvictedStalled
                        }
                        EvictReason::Corrupt { detail } => {
                            assert_eq!(detail, "injected bit flip");
                            Expected::EvictedCorrupt("injected bit flip")
                        }
                        EvictReason::ShardRestart => panic!("no restart in the core test"),
                    };
                    let seen = terminal.insert(eviction.stream.0, (expected, eviction.ticks));
                    assert!(seen.is_none(), "one terminal event per stream");
                }
                other => panic!("unexpected event: {other:?}"),
            }
        }
        waves += 1;
        assert!(waves < 10_000, "the chaos fleet must quiesce");
    }

    for (i, (_, delivered, expected)) in plans.iter().enumerate() {
        let id = i as u64;
        let (got_kind, got_ticks) = terminal
            .remove(&id)
            .unwrap_or_else(|| panic!("stream {id} never reached a terminal event"));
        assert_eq!(&got_kind, expected, "stream {id} terminal kind");
        assert_eq!(
            got_ticks,
            delivered.len() as u64,
            "stream {id} observed-frame count"
        );
        // The heart of the robustness bar: whatever the rest of the
        // fleet did, this stream's verdicts are bit-identical to its
        // scalar twin over the frames it actually delivered.
        let got = merged.remove(&id).unwrap_or_default();
        let got: BTreeMap<_, _> = got.into_iter().filter(|(_, v)| !v.is_empty()).collect();
        assert_eq!(
            got,
            scalar_violations(&sigs, delivered),
            "stream {id} diverged from its scalar twin"
        );
    }
}

#[test]
fn injected_panic_restarts_the_shard_and_service_keeps_accepting() {
    let sigs = sigs();
    let mut service = MonitorService::new(ServiceConfig {
        lanes_per_shard: 4,
        stall_limit: Some(64),
        pending_park: Duration::from_micros(100),
        ..ServiceConfig::default()
    });
    service.load_suite(&sigs.template);

    // A healthy long-lived stream that will be lost to the restart: its
    // producer keeps the channel open the whole time.
    let (sender, healthy_id) = service.connect_channel(&sigs.table, 64).unwrap();
    for frame in trace(&sigs, 0, 4) {
        sender.send(frame).unwrap();
    }

    // The saboteur: panics inside its second wave.
    let bomb = trace(&sigs, 1, 8);
    let bomb_n = bomb.len() as u64;
    let bomb_id = service
        .connect(
            &sigs.table,
            Box::new(FaultySource::new(
                ReplaySource::new(Arc::new(bomb), 0, bomb_n),
                FaultPlan::new().panic_at_poll(1),
            )),
        )
        .unwrap();

    // The supervisor's crash protocol, in order: an erroring stop, one
    // ShardRestart eviction per lost stream, then the restart marker.
    let deadline = Duration::from_secs(30);
    let mut crash_error = None;
    let mut evicted = Vec::new();
    let restarted = loop {
        match service
            .recv_report_timeout(deadline)
            .expect("the crash protocol must be reported")
        {
            ReportEvent::ShardStopped { error: Some(e), .. } => crash_error = Some(e),
            ReportEvent::StreamEvicted(ev) => {
                assert_eq!(ev.reason, EvictReason::ShardRestart);
                assert_eq!(ev.ticks, 0, "restart losses are reported as zero ticks");
                evicted.push(ev.stream);
            }
            ReportEvent::ShardRestarted { streams_lost, .. } => break streams_lost,
            _ => continue,
        }
    };
    let crash_error = crash_error.expect("the erroring stop precedes the restart");
    assert!(
        crash_error.contains("injected fault: panic at poll 1"),
        "the crash report names the panic: {crash_error}"
    );
    assert_eq!(restarted, 2, "both live streams went down with the core");
    evicted.sort();
    let mut expected = vec![healthy_id, bomb_id];
    expected.sort();
    assert_eq!(evicted, expected, "every lost stream is accounted for");

    // The healthy producer observes the eviction as a closed transport:
    // its sends start failing instead of blocking forever.
    let mut producer_saw_closure = false;
    for frame in trace(&sigs, 0, 128) {
        if sender.send(frame).is_err() {
            producer_saw_closure = true;
            break;
        }
    }
    assert!(
        producer_saw_closure,
        "the evicted stream's producer must see the transport close"
    );

    // Degraded, never dead: the restarted shard accepts new streams and
    // monitors them correctly — and the new generation numbering is
    // fresh (never reused across the restart).
    let (sender2, new_id) = service.connect_channel(&sigs.table, 64).unwrap();
    let replay = trace(&sigs, 2, 10);
    let expected_verdicts = scalar_violations(&sigs, &replay);
    assert_eq!(sender2.replay(&replay), 10);
    drop(sender2);
    let summary = loop {
        match service
            .recv_report_timeout(deadline)
            .expect("the restarted shard must keep reporting")
        {
            ReportEvent::StreamClosed(summary) if summary.stream == new_id => break summary,
            _ => continue,
        }
    };
    assert_eq!(summary.ticks, 10);
    let got: BTreeMap<_, _> = summary
        .violations
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(m, v)| (m.clone(), v.clone()))
        .collect();
    assert_eq!(got, expected_verdicts, "post-restart verdicts are correct");

    let remaining = service.shutdown();
    assert!(
        remaining
            .iter()
            .any(|e| matches!(e, ReportEvent::ShardStopped { error: None, .. })),
        "shutdown after a restart still stops cleanly"
    );
}
