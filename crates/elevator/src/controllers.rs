//! The software control agents: button latches, dispatcher, door and
//! drive controllers, and the emergency brake.

use crate::faults::ElevatorFaults;
use crate::model::{ElevatorParams, ElevatorSigs};
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{LaneSubsystem, SimTime};

/// Latches raw button presses into pending calls (the
/// `CarButtonController`/`HallButtonController` agents of Fig. 4.5).
/// A call clears when the car is at the floor with the door open.
#[derive(Debug)]
pub struct ButtonLatches {
    params: ElevatorParams,
    sigs: ElevatorSigs,
}

impl ButtonLatches {
    /// Creates the latch bank.
    pub fn new(params: ElevatorParams, sigs: ElevatorSigs) -> Self {
        ButtonLatches { params, sigs }
    }
}

impl LaneSubsystem for ButtonLatches {
    fn name(&self) -> &str {
        "ButtonLatches"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, _t: &SimTime, prev: &R, next: &mut W) {
        let m = &self.sigs;
        let at_floor = prev.real_or(m.floor, 0.0) as u32;
        // Clear on the same fully-open sensor the dispatcher's dwell uses,
        // so the serving window and the dwell window meet.
        let door_open = prev.bool_or(m.door_open, false);
        let stopped = prev.bool_or(m.elevator_stopped, false);
        for f in 0..self.params.floors {
            let fi = f as usize;
            let serving = door_open && stopped && at_floor == f;
            for (button, call) in [
                (m.car_buttons[fi], m.car_calls[fi]),
                (m.hall_buttons[fi], m.hall_calls[fi]),
            ] {
                let latched = prev.bool_or(call, false);
                let pressed = prev.bool_or(button, false);
                next.set(call, (latched || pressed) && !serving);
            }
        }
    }
}

/// Schedules the next destination from pending calls and requests door
/// cycles at landings (the `DispatchController` agent).
#[derive(Debug)]
pub struct DispatchController {
    params: ElevatorParams,
    faults: ElevatorFaults,
    sigs: ElevatorSigs,
    dwell_ticks_left: u64,
    door_was_open: bool,
}

impl DispatchController {
    /// Creates the dispatcher.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults, sigs: ElevatorSigs) -> Self {
        DispatchController {
            params,
            faults,
            sigs,
            dwell_ticks_left: 0,
            door_was_open: false,
        }
    }

    fn nearest_call<R: SignalRead>(&self, prev: &R, from_floor: u32) -> Option<u32> {
        (0..self.params.floors)
            .filter(|f| {
                let fi = *f as usize;
                prev.bool_or(self.sigs.car_calls[fi], false)
                    || prev.bool_or(self.sigs.hall_calls[fi], false)
            })
            .min_by_key(|f| u32::abs_diff(*f, from_floor))
    }
}

impl LaneSubsystem for DispatchController {
    fn name(&self) -> &str {
        "DispatchController"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        let p = &self.params;
        let m = &self.sigs;
        let position = prev.real_or(m.position, 0.0);
        let stopped = prev.bool_or(m.elevator_stopped, false);
        let here = p.floor_at(position);
        let target = prev.real_or(m.dispatch_target, 0.0) as u32;
        let at_target = stopped && (position - p.floor_height(target)).abs() < 0.05;

        let dwell_ticks = (p.door_dwell_s * 1000.0 / t.dt_millis as f64) as u64;
        let door_open = prev.bool_or(m.door_open, false);

        if at_target && door_open && !self.door_was_open {
            // Door just reached fully open at the landing: start the dwell
            // countdown (once per opening).
            self.dwell_ticks_left = dwell_ticks;
        }
        self.door_was_open = door_open;
        if self.dwell_ticks_left > 0 {
            self.dwell_ticks_left -= 1;
        }

        let serving_here = at_target
            && (prev.bool_or(m.car_calls[here as usize], false)
                || prev.bool_or(m.hall_calls[here as usize], false));
        let want_door_open = at_target && (serving_here || self.dwell_ticks_left > 0);
        next.set(
            m.dispatch_door_request,
            if want_door_open {
                m.sym_open
            } else {
                m.sym_close
            },
        );

        // Retarget only while parked with the door (sensed) shut and no
        // dwell. The `drive_ignores_door` fault models a missing
        // door/drive interlock in this dispatch path as well.
        let door_closed_now = prev.bool_or(m.door_closed, false);
        let interlock = door_closed_now || self.faults.drive_ignores_door;
        if at_target && interlock && self.dwell_ticks_left == 0 {
            if let Some(next_target) = self.nearest_call(prev, here) {
                next.set(m.dispatch_target, i64::from(next_target));
            }
        }
    }
}

/// The `DoorController` agent, carrying its Table 4.4 safety subgoal:
/// *if the door is not blocked and the elevator is moving or has been
/// commanded to move, command the door to CLOSE.*
#[derive(Debug)]
pub struct DoorController {
    #[allow(dead_code)]
    params: ElevatorParams,
    faults: ElevatorFaults,
    sigs: ElevatorSigs,
}

impl DoorController {
    /// Creates the door controller.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults, sigs: ElevatorSigs) -> Self {
        DoorController {
            params,
            faults,
            sigs,
        }
    }
}

impl LaneSubsystem for DoorController {
    fn name(&self) -> &str {
        "DoorController"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, _t: &SimTime, prev: &R, next: &mut W) {
        let m = &self.sigs;
        let blocked = prev.bool_or(m.door_blocked, false);
        let stopped = prev.bool_or(m.elevator_stopped, false);
        let drive_cmd = prev.get(m.drive_command);
        let request = prev.get(m.dispatch_door_request).unwrap_or(m.sym_close);

        // Door-reversal safety goal (eq. 4.7): a blocked door opens, with
        // priority over everything else.
        // Early-open fault: opens as soon as the car is in the target
        // floor's band, even while still decelerating.
        let target = prev.real_or(m.dispatch_target, 0.0) as u32;
        let here = prev.real_or(m.floor, 0.0) as u32;
        let early_open = self.faults.door_opens_while_moving && here == target && !stopped;

        let cmd = if blocked || early_open {
            m.sym_open
        } else if !stopped || drive_cmd != Some(m.sym_stop) {
            // Table 4.4 subgoal: close when moving or commanded to move.
            m.sym_close
        } else {
            request
        };
        next.set(m.door_motor_command, cmd);
    }
}

/// The `DriveController` agent, carrying three safety subgoals:
/// Table 4.4's *stop when the door is open or has been commanded open*,
/// Fig. 4.6's overweight stop, and Fig. 4.10's primary hoistway guard.
#[derive(Debug)]
pub struct DriveController {
    params: ElevatorParams,
    faults: ElevatorFaults,
    sigs: ElevatorSigs,
    stuck_up: bool,
}

impl DriveController {
    /// Creates the drive controller.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults, sigs: ElevatorSigs) -> Self {
        DriveController {
            params,
            faults,
            sigs,
            stuck_up: false,
        }
    }

    /// Distance needed to stop from full speed, plus the restrictive
    /// safety margin (§4.5.2).
    fn guard_distance(&self) -> f64 {
        let p = &self.params;
        p.max_speed * p.max_speed / (2.0 * p.accel) + p.stop_margin_m
    }
}

impl LaneSubsystem for DriveController {
    fn name(&self) -> &str {
        "DriveController"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, _t: &SimTime, prev: &R, next: &mut W) {
        let p = &self.params;
        let m = &self.sigs;
        let position = prev.real_or(m.position, 0.0);
        let door_closed = prev.bool_or(m.door_closed, false);
        let door_cmd = prev.get(m.door_motor_command);
        let overweight = prev.bool_or(m.overweight, false);
        let target = prev.real_or(m.dispatch_target, 0.0) as u32;
        let target_pos = p.floor_height(target);

        let door_unsafe = !door_closed || door_cmd == Some(m.sym_open);
        if door_unsafe && !self.faults.drive_ignores_door {
            next.set(m.drive_command, m.sym_stop);
            return;
        }
        if overweight && !self.faults.overweight_ignored {
            next.set(m.drive_command, m.sym_stop);
            return;
        }
        // The `hoistway_guard_missing` fault is a runaway: once the
        // controller commands UP it never re-evaluates, and the primary
        // hoistway guard below is also absent.
        if self.faults.hoistway_guard_missing && (self.stuck_up || target_pos > position + 0.1) {
            self.stuck_up = true;
            next.set(m.drive_command, m.sym_up);
            return;
        }

        // Position tracking with a stopping-distance approach window.
        let speed = prev.real_or(m.elevator_speed, 0.0);
        let braking = speed * speed / (2.0 * p.accel) + 0.02;
        let error = target_pos - position;
        let mut cmd = if error > braking {
            m.sym_up
        } else if error < -braking {
            m.sym_down
        } else {
            m.sym_stop
        };
        // Primary hoistway guard (redundancy leg 1): upward motion is
        // forbidden inside the guard band no matter what the dispatcher
        // asked for.
        if !self.faults.hoistway_guard_missing
            && cmd == m.sym_up
            && position >= p.hoistway_limit_m - self.guard_distance()
        {
            cmd = m.sym_stop;
        }
        next.set(m.drive_command, cmd);
    }
}

/// The emergency-brake agent: the *secondary* redundancy leg of the
/// hoistway goal (Fig. 4.11), latching when the car passes the tighter
/// emergency margin.
#[derive(Debug)]
pub struct EmergencyBrake {
    params: ElevatorParams,
    faults: ElevatorFaults,
    sigs: ElevatorSigs,
}

impl EmergencyBrake {
    /// Creates the emergency brake controller.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults, sigs: ElevatorSigs) -> Self {
        EmergencyBrake {
            params,
            faults,
            sigs,
        }
    }
}

impl LaneSubsystem for EmergencyBrake {
    fn name(&self) -> &str {
        "EmergencyBrake"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, _t: &SimTime, prev: &R, next: &mut W) {
        if self.faults.ebrake_inoperative {
            return;
        }
        let p = &self.params;
        let m = &self.sigs;
        let position = prev.real_or(m.position, 0.0);
        let speed = prev.real_or(m.elevator_speed, 0.0);
        let braking = speed * speed / (2.0 * p.ebrake_decel);
        let latched = prev.bool_or(m.emergency_brake, false);
        if latched || (speed > 0.0 && position + braking >= p.hoistway_limit_m - p.ebrake_margin_m)
        {
            next.set(m.emergency_brake, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{elevator_table, initial_frame};
    use esafe_logic::{Frame, Value};
    use esafe_sim::Subsystem;

    fn ctx() -> (Frame, ElevatorSigs) {
        let p = ElevatorParams::default();
        let (table, sigs) = elevator_table(&p);
        (initial_frame(&table, &sigs), sigs)
    }

    fn tick(s: &mut dyn Subsystem, prev: &Frame) -> Frame {
        let mut next = prev.clone();
        s.step(
            &SimTime {
                tick: 1,
                dt_millis: 10,
            },
            prev,
            &mut next,
        );
        next
    }

    #[test]
    fn latch_holds_until_served() {
        let p = ElevatorParams::default();
        let (mut s, m) = ctx();
        let mut latches = ButtonLatches::new(p, m.clone());
        s.set(m.car_buttons[3], true);
        let s2 = tick(&mut latches, &s);
        assert!(s2.bool_or(m.car_calls[3], false));
        // Press released: the call stays latched.
        let mut s3 = s2.clone();
        s3.set(m.car_buttons[3], false);
        let s4 = tick(&mut latches, &s3);
        assert!(s4.bool_or(m.car_calls[3], false));
        // Serving the floor clears it.
        let mut s5 = s4.clone();
        s5.set(m.floor, 3.0);
        s5.set(m.door_open, true);
        s5.set(m.elevator_stopped, true);
        let s6 = tick(&mut latches, &s5);
        assert!(!s6.bool_or(m.car_calls[3], true));
    }

    #[test]
    fn dispatcher_targets_nearest_call() {
        let p = ElevatorParams::default();
        let (mut s, m) = ctx();
        let mut d = DispatchController::new(p, ElevatorFaults::none(), m.clone());
        s.set(m.car_calls[4], true);
        s.set(m.car_calls[1], true);
        let s2 = tick(&mut d, &s);
        assert_eq!(s2.get(m.dispatch_target), Some(Value::Int(1)));
    }

    #[test]
    fn door_controller_closes_while_moving() {
        let p = ElevatorParams::default();
        let (mut s, m) = ctx();
        let mut dc = DoorController::new(p, ElevatorFaults::none(), m.clone());
        s.set(m.elevator_stopped, false);
        s.set(m.dispatch_door_request, m.sym_open);
        let s2 = tick(&mut dc, &s);
        assert_eq!(s2.get(m.door_motor_command), Some(m.sym_close));
    }

    #[test]
    fn door_reversal_beats_everything() {
        let p = ElevatorParams::default();
        let (mut s, m) = ctx();
        let mut dc = DoorController::new(p, ElevatorFaults::none(), m.clone());
        s.set(m.door_blocked, true);
        s.set(m.elevator_stopped, false);
        let s2 = tick(&mut dc, &s);
        assert_eq!(s2.get(m.door_motor_command), Some(m.sym_open));
    }

    #[test]
    fn faulty_door_controller_opens_while_moving() {
        let p = ElevatorParams::default();
        let faults = ElevatorFaults {
            door_opens_while_moving: true,
            ..ElevatorFaults::none()
        };
        let (mut s, m) = ctx();
        let mut dc = DoorController::new(p, faults, m.clone());
        s.set(m.elevator_stopped, false);
        s.set(m.dispatch_door_request, m.sym_open);
        let s2 = tick(&mut dc, &s);
        assert_eq!(s2.get(m.door_motor_command), Some(m.sym_open));
    }

    #[test]
    fn drive_stops_for_open_door_and_overweight() {
        let p = ElevatorParams::default();
        let (mut s, m) = ctx();
        let mut drv = DriveController::new(p, ElevatorFaults::none(), m.clone());
        s.set(m.dispatch_target, 3i64);
        s.set(m.door_closed, false);
        let s2 = tick(&mut drv, &s);
        assert_eq!(s2.get(m.drive_command), Some(m.sym_stop));
        s.set(m.door_closed, true);
        s.set(m.overweight, true);
        let s3 = tick(&mut drv, &s);
        assert_eq!(s3.get(m.drive_command), Some(m.sym_stop));
        s.set(m.overweight, false);
        let s4 = tick(&mut drv, &s);
        assert_eq!(s4.get(m.drive_command), Some(m.sym_up));
    }

    #[test]
    fn hoistway_guard_blocks_upward_motion_near_limit() {
        let p = ElevatorParams::default();
        let (mut s, m) = ctx();
        let mut drv = DriveController::new(p, ElevatorFaults::none(), m.clone());
        // A corrupted dispatch target far above the hoistway would drive
        // the car up; the guard must refuse inside the band.
        s.set(m.dispatch_target, 10i64);
        s.set(m.position, p.hoistway_limit_m - 0.5);
        let s2 = tick(&mut drv, &s);
        assert_eq!(s2.get(m.drive_command), Some(m.sym_stop));
        // Downward motion is still allowed near the top.
        s.set(m.dispatch_target, 0i64);
        let s3 = tick(&mut drv, &s);
        assert_eq!(s3.get(m.drive_command), Some(m.sym_down));
    }

    #[test]
    fn ebrake_latches_near_the_limit() {
        let p = ElevatorParams::default();
        let (mut s, m) = ctx();
        let mut eb = EmergencyBrake::new(p, ElevatorFaults::none(), m.clone());
        s.set(m.position, p.hoistway_limit_m - 0.2);
        s.set(m.elevator_speed, 2.0);
        let s2 = tick(&mut eb, &s);
        assert!(s2.bool_or(m.emergency_brake, false));
        // Latched even after the hazard clears.
        let mut s3 = s2.clone();
        s3.set(m.elevator_speed, 0.0);
        s3.set(m.position, 1.0);
        let s4 = tick(&mut eb, &s3);
        assert!(s4.bool_or(m.emergency_brake, false));
    }

    #[test]
    fn inoperative_ebrake_never_fires() {
        let p = ElevatorParams::default();
        let faults = ElevatorFaults {
            ebrake_inoperative: true,
            ..ElevatorFaults::none()
        };
        let (mut s, m) = ctx();
        let mut eb = EmergencyBrake::new(p, faults, m.clone());
        s.set(m.position, p.hoistway_limit_m);
        s.set(m.elevator_speed, 2.0);
        let s2 = tick(&mut eb, &s);
        assert!(!s2.bool_or(m.emergency_brake, true));
    }
}
