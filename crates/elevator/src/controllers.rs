//! The software control agents: button latches, dispatcher, door and
//! drive controllers, and the emergency brake.

use crate::faults::ElevatorFaults;
use crate::model::{self as m, ElevatorParams};
use esafe_logic::{State, Value};
use esafe_sim::{SimTime, Subsystem};

fn real(state: &State, name: &str, default: f64) -> f64 {
    state.get(name).and_then(Value::as_real).unwrap_or(default)
}

fn boolean(state: &State, name: &str) -> bool {
    state.get(name).and_then(Value::as_bool).unwrap_or(false)
}

fn symbol<'a>(state: &'a State, name: &str, default: &'a str) -> &'a str {
    match state.get(name) {
        Some(Value::Sym(s)) => s.as_str(),
        _ => default,
    }
}

/// Latches raw button presses into pending calls (the
/// `CarButtonController`/`HallButtonController` agents of Fig. 4.5).
/// A call clears when the car is at the floor with the door open.
#[derive(Debug)]
pub struct ButtonLatches {
    params: ElevatorParams,
}

impl ButtonLatches {
    /// Creates the latch bank.
    pub fn new(params: ElevatorParams) -> Self {
        ButtonLatches { params }
    }
}

impl Subsystem for ButtonLatches {
    fn name(&self) -> &str {
        "ButtonLatches"
    }

    fn step(&mut self, _t: &SimTime, prev: &State, next: &mut State) {
        let at_floor = real(prev, m::FLOOR, 0.0) as u32;
        // Clear on the same fully-open sensor the dispatcher's dwell uses,
        // so the serving window and the dwell window meet.
        let door_open = boolean(prev, m::DOOR_OPEN);
        let stopped = boolean(prev, m::ELEVATOR_STOPPED);
        for f in 0..self.params.floors {
            let serving = door_open && stopped && at_floor == f;
            for (button, call) in [
                (m::car_button(f), m::car_call(f)),
                (m::hall_button(f), m::hall_call(f)),
            ] {
                let latched = boolean(prev, &call);
                let pressed = boolean(prev, &button);
                next.set(call, (latched || pressed) && !serving);
            }
        }
    }
}

/// Schedules the next destination from pending calls and requests door
/// cycles at landings (the `DispatchController` agent).
#[derive(Debug)]
pub struct DispatchController {
    params: ElevatorParams,
    faults: ElevatorFaults,
    dwell_ticks_left: u64,
    door_was_open: bool,
}

impl DispatchController {
    /// Creates the dispatcher.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults) -> Self {
        DispatchController {
            params,
            faults,
            dwell_ticks_left: 0,
            door_was_open: false,
        }
    }

    fn nearest_call(&self, prev: &State, from_floor: u32) -> Option<u32> {
        (0..self.params.floors)
            .filter(|f| boolean(prev, &m::car_call(*f)) || boolean(prev, &m::hall_call(*f)))
            .min_by_key(|f| u32::abs_diff(*f, from_floor))
    }
}

impl Subsystem for DispatchController {
    fn name(&self) -> &str {
        "DispatchController"
    }

    fn step(&mut self, t: &SimTime, prev: &State, next: &mut State) {
        let p = &self.params;
        let position = real(prev, m::POSITION, 0.0);
        let stopped = boolean(prev, m::ELEVATOR_STOPPED);
        let here = p.floor_at(position);
        let target = real(prev, m::DISPATCH_TARGET, 0.0) as u32;
        let at_target = stopped && (position - p.floor_height(target)).abs() < 0.05;

        let dwell_ticks = (p.door_dwell_s * 1000.0 / t.dt_millis as f64) as u64;
        let door_open = boolean(prev, m::DOOR_OPEN);

        if at_target && door_open && !self.door_was_open {
            // Door just reached fully open at the landing: start the dwell
            // countdown (once per opening).
            self.dwell_ticks_left = dwell_ticks;
        }
        self.door_was_open = door_open;
        if self.dwell_ticks_left > 0 {
            self.dwell_ticks_left -= 1;
        }

        let serving_here =
            at_target && (boolean(prev, &m::car_call(here)) || boolean(prev, &m::hall_call(here)));
        let want_door_open = at_target && (serving_here || self.dwell_ticks_left > 0);
        next.set(
            m::DISPATCH_DOOR_REQUEST,
            Value::sym(if want_door_open { "OPEN" } else { "CLOSE" }),
        );

        // Retarget only while parked with the door (sensed) shut and no
        // dwell. The `drive_ignores_door` fault models a missing
        // door/drive interlock in this dispatch path as well.
        let door_closed_now = boolean(prev, m::DOOR_CLOSED);
        let interlock = door_closed_now || self.faults.drive_ignores_door;
        if at_target && interlock && self.dwell_ticks_left == 0 {
            if let Some(next_target) = self.nearest_call(prev, here) {
                next.set(m::DISPATCH_TARGET, i64::from(next_target));
            }
        }
    }
}

/// The `DoorController` agent, carrying its Table 4.4 safety subgoal:
/// *if the door is not blocked and the elevator is moving or has been
/// commanded to move, command the door to CLOSE.*
#[derive(Debug)]
pub struct DoorController {
    #[allow(dead_code)]
    params: ElevatorParams,
    faults: ElevatorFaults,
}

impl DoorController {
    /// Creates the door controller.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults) -> Self {
        DoorController { params, faults }
    }
}

impl Subsystem for DoorController {
    fn name(&self) -> &str {
        "DoorController"
    }

    fn step(&mut self, _t: &SimTime, prev: &State, next: &mut State) {
        let blocked = boolean(prev, m::DOOR_BLOCKED);
        let stopped = boolean(prev, m::ELEVATOR_STOPPED);
        let drive_cmd = symbol(prev, m::DRIVE_COMMAND, "STOP");
        let request = symbol(prev, m::DISPATCH_DOOR_REQUEST, "CLOSE");

        // Door-reversal safety goal (eq. 4.7): a blocked door opens, with
        // priority over everything else.
        // Early-open fault: opens as soon as the car is in the target
        // floor's band, even while still decelerating.
        let target = real(prev, m::DISPATCH_TARGET, 0.0) as u32;
        let here = real(prev, m::FLOOR, 0.0) as u32;
        let early_open = self.faults.door_opens_while_moving && here == target && !stopped;

        let cmd = if blocked || early_open {
            "OPEN"
        } else if !stopped || drive_cmd != "STOP" {
            // Table 4.4 subgoal: close when moving or commanded to move.
            "CLOSE"
        } else {
            request
        };
        next.set(m::DOOR_MOTOR_COMMAND, Value::sym(cmd));
    }
}

/// The `DriveController` agent, carrying three safety subgoals:
/// Table 4.4's *stop when the door is open or has been commanded open*,
/// Fig. 4.6's overweight stop, and Fig. 4.10's primary hoistway guard.
#[derive(Debug)]
pub struct DriveController {
    params: ElevatorParams,
    faults: ElevatorFaults,
    stuck_up: bool,
}

impl DriveController {
    /// Creates the drive controller.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults) -> Self {
        DriveController {
            params,
            faults,
            stuck_up: false,
        }
    }

    /// Distance needed to stop from full speed, plus the restrictive
    /// safety margin (§4.5.2).
    fn guard_distance(&self) -> f64 {
        let p = &self.params;
        p.max_speed * p.max_speed / (2.0 * p.accel) + p.stop_margin_m
    }
}

impl Subsystem for DriveController {
    fn name(&self) -> &str {
        "DriveController"
    }

    fn step(&mut self, _t: &SimTime, prev: &State, next: &mut State) {
        let p = &self.params;
        let position = real(prev, m::POSITION, 0.0);
        let door_closed = boolean(prev, m::DOOR_CLOSED);
        let door_cmd = symbol(prev, m::DOOR_MOTOR_COMMAND, "CLOSE");
        let overweight = boolean(prev, m::OVERWEIGHT);
        let target = real(prev, m::DISPATCH_TARGET, 0.0) as u32;
        let target_pos = p.floor_height(target);

        let door_unsafe = !door_closed || door_cmd == "OPEN";
        if door_unsafe && !self.faults.drive_ignores_door {
            next.set(m::DRIVE_COMMAND, Value::sym("STOP"));
            return;
        }
        if overweight && !self.faults.overweight_ignored {
            next.set(m::DRIVE_COMMAND, Value::sym("STOP"));
            return;
        }
        // The `hoistway_guard_missing` fault is a runaway: once the
        // controller commands UP it never re-evaluates, and the primary
        // hoistway guard below is also absent.
        if self.faults.hoistway_guard_missing && (self.stuck_up || target_pos > position + 0.1) {
            self.stuck_up = true;
            next.set(m::DRIVE_COMMAND, Value::sym("UP"));
            return;
        }

        // Position tracking with a stopping-distance approach window.
        let speed = real(prev, m::ELEVATOR_SPEED, 0.0);
        let braking = speed * speed / (2.0 * p.accel) + 0.02;
        let error = target_pos - position;
        let mut cmd = if error > braking {
            "UP"
        } else if error < -braking {
            "DOWN"
        } else {
            "STOP"
        };
        // Primary hoistway guard (redundancy leg 1): upward motion is
        // forbidden inside the guard band no matter what the dispatcher
        // asked for.
        if !self.faults.hoistway_guard_missing
            && cmd == "UP"
            && position >= p.hoistway_limit_m - self.guard_distance()
        {
            cmd = "STOP";
        }
        next.set(m::DRIVE_COMMAND, Value::sym(cmd));
    }
}

/// The emergency-brake agent: the *secondary* redundancy leg of the
/// hoistway goal (Fig. 4.11), latching when the car passes the tighter
/// emergency margin.
#[derive(Debug)]
pub struct EmergencyBrake {
    params: ElevatorParams,
    faults: ElevatorFaults,
}

impl EmergencyBrake {
    /// Creates the emergency brake controller.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults) -> Self {
        EmergencyBrake { params, faults }
    }
}

impl Subsystem for EmergencyBrake {
    fn name(&self) -> &str {
        "EmergencyBrake"
    }

    fn step(&mut self, _t: &SimTime, prev: &State, next: &mut State) {
        if self.faults.ebrake_inoperative {
            return;
        }
        let p = &self.params;
        let position = real(prev, m::POSITION, 0.0);
        let speed = real(prev, m::ELEVATOR_SPEED, 0.0);
        let braking = speed * speed / (2.0 * p.ebrake_decel);
        let latched = boolean(prev, m::EMERGENCY_BRAKE);
        if latched || (speed > 0.0 && position + braking >= p.hoistway_limit_m - p.ebrake_margin_m)
        {
            next.set(m::EMERGENCY_BRAKE, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> State {
        m::initial_state(&ElevatorParams::default())
    }

    fn tick(s: &mut dyn Subsystem, prev: &State) -> State {
        let mut next = prev.clone();
        s.step(
            &SimTime {
                tick: 1,
                dt_millis: 10,
            },
            prev,
            &mut next,
        );
        next
    }

    #[test]
    fn latch_holds_until_served() {
        let p = ElevatorParams::default();
        let mut latches = ButtonLatches::new(p);
        let mut s = base();
        s.set(m::car_button(3), true);
        let s2 = tick(&mut latches, &s);
        assert!(boolean(&s2, &m::car_call(3)));
        // Press released: the call stays latched.
        let mut s3 = s2.clone();
        s3.set(m::car_button(3), false);
        let s4 = tick(&mut latches, &s3);
        assert!(boolean(&s4, &m::car_call(3)));
        // Serving the floor clears it.
        let mut s5 = s4.clone();
        s5.set(m::FLOOR, 3.0);
        s5.set(m::DOOR_OPEN, true);
        s5.set(m::ELEVATOR_STOPPED, true);
        let s6 = tick(&mut latches, &s5);
        assert!(!boolean(&s6, &m::car_call(3)));
    }

    #[test]
    fn dispatcher_targets_nearest_call() {
        let p = ElevatorParams::default();
        let mut d = DispatchController::new(p, ElevatorFaults::none());
        let mut s = base();
        s.set(m::car_call(4), true);
        s.set(m::car_call(1), true);
        let s2 = tick(&mut d, &s);
        assert_eq!(s2.get(m::DISPATCH_TARGET), Some(&Value::Int(1)));
    }

    #[test]
    fn door_controller_closes_while_moving() {
        let p = ElevatorParams::default();
        let mut dc = DoorController::new(p, ElevatorFaults::none());
        let mut s = base();
        s.set(m::ELEVATOR_STOPPED, false);
        s.set(m::DISPATCH_DOOR_REQUEST, Value::sym("OPEN"));
        let s2 = tick(&mut dc, &s);
        assert_eq!(s2.get(m::DOOR_MOTOR_COMMAND), Some(&Value::sym("CLOSE")));
    }

    #[test]
    fn door_reversal_beats_everything() {
        let p = ElevatorParams::default();
        let mut dc = DoorController::new(p, ElevatorFaults::none());
        let mut s = base();
        s.set(m::DOOR_BLOCKED, true);
        s.set(m::ELEVATOR_STOPPED, false);
        let s2 = tick(&mut dc, &s);
        assert_eq!(s2.get(m::DOOR_MOTOR_COMMAND), Some(&Value::sym("OPEN")));
    }

    #[test]
    fn faulty_door_controller_opens_while_moving() {
        let p = ElevatorParams::default();
        let faults = ElevatorFaults {
            door_opens_while_moving: true,
            ..ElevatorFaults::none()
        };
        let mut dc = DoorController::new(p, faults);
        let mut s = base();
        s.set(m::ELEVATOR_STOPPED, false);
        s.set(m::DISPATCH_DOOR_REQUEST, Value::sym("OPEN"));
        let s2 = tick(&mut dc, &s);
        assert_eq!(s2.get(m::DOOR_MOTOR_COMMAND), Some(&Value::sym("OPEN")));
    }

    #[test]
    fn drive_stops_for_open_door_and_overweight() {
        let p = ElevatorParams::default();
        let mut drv = DriveController::new(p, ElevatorFaults::none());
        let mut s = base();
        s.set(m::DISPATCH_TARGET, 3i64);
        s.set(m::DOOR_CLOSED, false);
        let s2 = tick(&mut drv, &s);
        assert_eq!(s2.get(m::DRIVE_COMMAND), Some(&Value::sym("STOP")));
        s.set(m::DOOR_CLOSED, true);
        s.set(m::OVERWEIGHT, true);
        let s3 = tick(&mut drv, &s);
        assert_eq!(s3.get(m::DRIVE_COMMAND), Some(&Value::sym("STOP")));
        s.set(m::OVERWEIGHT, false);
        let s4 = tick(&mut drv, &s);
        assert_eq!(s4.get(m::DRIVE_COMMAND), Some(&Value::sym("UP")));
    }

    #[test]
    fn hoistway_guard_blocks_upward_motion_near_limit() {
        let p = ElevatorParams::default();
        let mut drv = DriveController::new(p, ElevatorFaults::none());
        let mut s = base();
        // A corrupted dispatch target far above the hoistway would drive
        // the car up; the guard must refuse inside the band.
        s.set(m::DISPATCH_TARGET, 10i64);
        s.set(m::POSITION, p.hoistway_limit_m - 0.5);
        let s2 = tick(&mut drv, &s);
        assert_eq!(s2.get(m::DRIVE_COMMAND), Some(&Value::sym("STOP")));
        // Downward motion is still allowed near the top.
        s.set(m::DISPATCH_TARGET, 0i64);
        let s3 = tick(&mut drv, &s);
        assert_eq!(s3.get(m::DRIVE_COMMAND), Some(&Value::sym("DOWN")));
    }

    #[test]
    fn ebrake_latches_near_the_limit() {
        let p = ElevatorParams::default();
        let mut eb = EmergencyBrake::new(p, ElevatorFaults::none());
        let mut s = base();
        s.set(m::POSITION, p.hoistway_limit_m - 0.2);
        s.set(m::ELEVATOR_SPEED, 2.0);
        let s2 = tick(&mut eb, &s);
        assert!(boolean(&s2, m::EMERGENCY_BRAKE));
        // Latched even after the hazard clears.
        let mut s3 = s2.clone();
        s3.set(m::ELEVATOR_SPEED, 0.0);
        s3.set(m::POSITION, 1.0);
        let s4 = tick(&mut eb, &s3);
        assert!(boolean(&s4, m::EMERGENCY_BRAKE));
    }

    #[test]
    fn inoperative_ebrake_never_fires() {
        let p = ElevatorParams::default();
        let faults = ElevatorFaults {
            ebrake_inoperative: true,
            ..ElevatorFaults::none()
        };
        let mut eb = EmergencyBrake::new(p, faults);
        let mut s = base();
        s.set(m::POSITION, p.hoistway_limit_m);
        s.set(m::ELEVATOR_SPEED, 2.0);
        let s2 = tick(&mut eb, &s);
        assert!(!boolean(&s2, m::EMERGENCY_BRAKE));
    }
}
