//! Fault injection for the elevator: the failure modes the hierarchical
//! monitors are supposed to detect.

use serde::{Deserialize, Serialize};

/// Injectable faults. Each corresponds to a violation of one of the
/// Chapter 4 subgoals (or of a critical assumption), so monitoring the
/// subgoals localizes the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ElevatorFaults {
    /// DriveController ignores the door state: violates
    /// `Achieve[StopElevatorWhenDoorOpenOrOpened]` and, through it,
    /// `Maintain[DoorClosedOrElevatorStopped]`.
    pub drive_ignores_door: bool,
    /// DoorController opens at the target floor without checking motion:
    /// violates `Achieve[CloseDoorWhenElevatorMovingOrMoved]`.
    pub door_opens_while_moving: bool,
    /// DriveController ignores the weight sensor: violates
    /// `Maintain[DriveStoppedWhenOverweight]`'s subgoal.
    pub overweight_ignored: bool,
    /// DriveController misses the hoistway guard (primary redundancy
    /// leg): the emergency brake should still catch the car — a subgoal
    /// violation masked at the system level (false positive).
    pub hoistway_guard_missing: bool,
    /// Emergency brake also inoperative: with the primary guard missing
    /// too, the system goal `Maintain[ElevatorBelowHoistwayUpperLimit]`
    /// is violated.
    pub ebrake_inoperative: bool,
    /// The door-closed sensor sticks at `true`: a violated critical
    /// assumption — subgoals stay clean while the system goal fails
    /// (false negative / emergence).
    pub door_sensor_stuck_closed: bool,
}

impl ElevatorFaults {
    /// No faults: the correctly built elevator.
    pub fn none() -> Self {
        Self::default()
    }

    /// Number of enabled faults.
    pub fn count(&self) -> usize {
        [
            self.drive_ignores_door,
            self.door_opens_while_moving,
            self.overweight_ignored,
            self.hoistway_guard_missing,
            self.ebrake_inoperative,
            self.door_sensor_stuck_closed,
        ]
        .iter()
        .filter(|b| **b)
        .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_zero_faults() {
        assert_eq!(ElevatorFaults::none().count(), 0);
        let f = ElevatorFaults {
            drive_ignores_door: true,
            ebrake_inoperative: true,
            ..ElevatorFaults::none()
        };
        assert_eq!(f.count(), 2);
    }
}
