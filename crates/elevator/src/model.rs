//! Elevator signal names, parameters, and the initial blackboard.

use esafe_logic::State;
use serde::{Deserialize, Serialize};

/// Door-closed switch (sensed).
pub const DOOR_CLOSED: &str = "door_closed";
/// Door-blocked light curtain (sensed; driven by passengers).
pub const DOOR_BLOCKED: &str = "door_blocked";
/// Car speed, m/s (sensed; positive = up).
pub const ELEVATOR_SPEED: &str = "elevator_speed";
/// Whether the car speed is inside the stopped band (derived sensor
/// output, `IsStopped(es)` in the thesis's goals).
pub const ELEVATOR_STOPPED: &str = "elevator_stopped";
/// Car weight, kg (sensed).
pub const ELEVATOR_WEIGHT: &str = "elevator_weight";
/// Whether the weight exceeds the safe-operation threshold.
pub const OVERWEIGHT: &str = "overweight";
/// Car position in the hoistway, m above the bottom landing.
pub const POSITION: &str = "elevator_position";
/// Current floor index derived from position.
pub const FLOOR: &str = "elevator_floor";
/// Drive actuation signal: `'STOP'`, `'UP'`, or `'DOWN'`.
pub const DRIVE_COMMAND: &str = "drive_command";
/// Door-motor actuation signal: `'OPEN'` or `'CLOSE'`.
pub const DOOR_MOTOR_COMMAND: &str = "door_motor_command";
/// Physical door opening fraction, 0 (closed) to 1 (open).
pub const DOOR_POSITION: &str = "door_position";
/// Door fully-open switch (sensed).
pub const DOOR_OPEN: &str = "door_open";
/// Dispatcher's destination floor.
pub const DISPATCH_TARGET: &str = "dispatch_target";
/// Dispatcher's door request at the landing: `'OPEN'` or `'CLOSE'`.
pub const DISPATCH_DOOR_REQUEST: &str = "dispatch_door_request";
/// Emergency brake engagement (latched).
pub const EMERGENCY_BRAKE: &str = "emergency_brake";

/// Latched car-call for floor `f`.
pub fn car_call(f: u32) -> String {
    format!("car_call.{f}")
}

/// Latched hall-call for floor `f`.
pub fn hall_call(f: u32) -> String {
    format!("hall_call.{f}")
}

/// Raw button press for floor `f` (set by passengers for one tick).
pub fn car_button(f: u32) -> String {
    format!("car_button.{f}")
}

/// Raw hall button press for floor `f`.
pub fn hall_button(f: u32) -> String {
    format!("hall_button.{f}")
}

/// Physical and control constants of the elevator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElevatorParams {
    /// Simulation tick, ms.
    pub dt_millis: u64,
    /// Number of floors.
    pub floors: u32,
    /// Floor-to-floor height, m.
    pub floor_height_m: f64,
    /// Hoistway upper limit above the bottom landing, m.
    pub hoistway_limit_m: f64,
    /// Drive maximum speed, m/s.
    pub max_speed: f64,
    /// Drive acceleration magnitude, m/s².
    pub accel: f64,
    /// Emergency-brake deceleration magnitude, m/s².
    pub ebrake_decel: f64,
    /// Full door travel time, s.
    pub door_travel_s: f64,
    /// Door dwell at a landing, s.
    pub door_dwell_s: f64,
    /// |speed| below which the car counts as stopped, m/s.
    pub stopped_eps: f64,
    /// Weight threshold for safe operation, kg.
    pub weight_threshold_kg: f64,
    /// Primary stop margin below the hoistway limit, m (restrictive
    /// safety margin, §4.5.2).
    pub stop_margin_m: f64,
    /// Secondary (emergency-brake) margin below the limit, m.
    pub ebrake_margin_m: f64,
}

impl Default for ElevatorParams {
    fn default() -> Self {
        ElevatorParams {
            dt_millis: 10,
            floors: 5,
            floor_height_m: 4.0,
            hoistway_limit_m: 19.5, // top floor at 16 m + guard headroom
            max_speed: 2.0,
            accel: 1.0,
            ebrake_decel: 4.0,
            door_travel_s: 2.0,
            door_dwell_s: 3.0,
            stopped_eps: 0.005,
            weight_threshold_kg: 680.0,
            stop_margin_m: 0.6,
            ebrake_margin_m: 0.3,
        }
    }
}

impl ElevatorParams {
    /// Height of floor `f` above the bottom landing, m.
    pub fn floor_height(&self, f: u32) -> f64 {
        f64::from(f) * self.floor_height_m
    }

    /// Nearest floor index for a hoistway position.
    pub fn floor_at(&self, position_m: f64) -> u32 {
        let f = (position_m / self.floor_height_m).round();
        (f.max(0.0) as u32).min(self.floors - 1)
    }
}

/// The initial blackboard: car parked at floor 0, doors closed, idle.
pub fn initial_state(params: &ElevatorParams) -> State {
    let mut s = State::new()
        .with_bool(DOOR_CLOSED, true)
        .with_bool(DOOR_BLOCKED, false)
        .with_real(ELEVATOR_SPEED, 0.0)
        .with_bool(ELEVATOR_STOPPED, true)
        .with_real(ELEVATOR_WEIGHT, 0.0)
        .with_bool(OVERWEIGHT, false)
        .with_real(POSITION, 0.0)
        .with_real(FLOOR, 0.0)
        .with_sym(DRIVE_COMMAND, "STOP")
        .with_sym(DOOR_MOTOR_COMMAND, "CLOSE")
        .with_real(DOOR_POSITION, 0.0)
        .with_bool(DOOR_OPEN, false)
        .with_int(DISPATCH_TARGET, 0)
        .with_sym(DISPATCH_DOOR_REQUEST, "CLOSE")
        .with_bool(EMERGENCY_BRAKE, false);
    for f in 0..params.floors {
        s.set(car_call(f), false);
        s.set(hall_call(f), false);
        s.set(car_button(f), false);
        s.set(hall_button(f), false);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_mapping_round_trips() {
        let p = ElevatorParams::default();
        assert_eq!(p.floor_height(3), 12.0);
        assert_eq!(p.floor_at(12.0), 3);
        assert_eq!(p.floor_at(12.4), 3);
        assert_eq!(p.floor_at(-1.0), 0);
        assert_eq!(p.floor_at(99.0), p.floors - 1);
    }

    #[test]
    fn initial_state_is_parked_and_complete() {
        let p = ElevatorParams::default();
        let s = initial_state(&p);
        assert_eq!(s.get(DOOR_CLOSED).unwrap().as_bool(), Some(true));
        assert_eq!(s.get(POSITION).unwrap().as_real(), Some(0.0));
        // 4 signal groups per floor + 15 scalar signals.
        assert_eq!(s.len(), 15 + 4 * p.floors as usize);
    }

    #[test]
    fn hoistway_limit_clears_top_floor() {
        let p = ElevatorParams::default();
        assert!(p.hoistway_limit_m > p.floor_height(p.floors - 1));
    }
}
