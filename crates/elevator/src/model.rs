//! Elevator signal names, parameters, the interned [`ElevatorSigs`] id
//! set, and the initial blackboard.

use esafe_logic::{Frame, SignalId, SignalTable, SignalTableBuilder, SignalWrite, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Door-closed switch (sensed).
pub const DOOR_CLOSED: &str = "door_closed";
/// Door-blocked light curtain (sensed; driven by passengers).
pub const DOOR_BLOCKED: &str = "door_blocked";
/// Car speed, m/s (sensed; positive = up).
pub const ELEVATOR_SPEED: &str = "elevator_speed";
/// Whether the car speed is inside the stopped band (derived sensor
/// output, `IsStopped(es)` in the thesis's goals).
pub const ELEVATOR_STOPPED: &str = "elevator_stopped";
/// Car weight, kg (sensed).
pub const ELEVATOR_WEIGHT: &str = "elevator_weight";
/// Whether the weight exceeds the safe-operation threshold.
pub const OVERWEIGHT: &str = "overweight";
/// Car position in the hoistway, m above the bottom landing.
pub const POSITION: &str = "elevator_position";
/// Current floor index derived from position.
pub const FLOOR: &str = "elevator_floor";
/// Drive actuation signal: `'STOP'`, `'UP'`, or `'DOWN'`.
pub const DRIVE_COMMAND: &str = "drive_command";
/// Door-motor actuation signal: `'OPEN'` or `'CLOSE'`.
pub const DOOR_MOTOR_COMMAND: &str = "door_motor_command";
/// Physical door opening fraction, 0 (closed) to 1 (open).
pub const DOOR_POSITION: &str = "door_position";
/// Door fully-open switch (sensed).
pub const DOOR_OPEN: &str = "door_open";
/// Dispatcher's destination floor.
pub const DISPATCH_TARGET: &str = "dispatch_target";
/// Dispatcher's door request at the landing: `'OPEN'` or `'CLOSE'`.
pub const DISPATCH_DOOR_REQUEST: &str = "dispatch_door_request";
/// Emergency brake engagement (latched).
pub const EMERGENCY_BRAKE: &str = "emergency_brake";

/// Latched car-call for floor `f`.
pub fn car_call(f: u32) -> String {
    format!("car_call.{f}")
}

/// Latched hall-call for floor `f`.
pub fn hall_call(f: u32) -> String {
    format!("hall_call.{f}")
}

/// Raw button press for floor `f` (set by passengers for one tick).
pub fn car_button(f: u32) -> String {
    format!("car_button.{f}")
}

/// Raw hall button press for floor `f`.
pub fn hall_button(f: u32) -> String {
    format!("hall_button.{f}")
}

/// Physical and control constants of the elevator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElevatorParams {
    /// Simulation tick, ms.
    pub dt_millis: u64,
    /// Number of floors.
    pub floors: u32,
    /// Floor-to-floor height, m.
    pub floor_height_m: f64,
    /// Hoistway upper limit above the bottom landing, m.
    pub hoistway_limit_m: f64,
    /// Drive maximum speed, m/s.
    pub max_speed: f64,
    /// Drive acceleration magnitude, m/s².
    pub accel: f64,
    /// Emergency-brake deceleration magnitude, m/s².
    pub ebrake_decel: f64,
    /// Full door travel time, s.
    pub door_travel_s: f64,
    /// Door dwell at a landing, s.
    pub door_dwell_s: f64,
    /// |speed| below which the car counts as stopped, m/s.
    pub stopped_eps: f64,
    /// Weight threshold for safe operation, kg.
    pub weight_threshold_kg: f64,
    /// Primary stop margin below the hoistway limit, m (restrictive
    /// safety margin, §4.5.2).
    pub stop_margin_m: f64,
    /// Secondary (emergency-brake) margin below the limit, m.
    pub ebrake_margin_m: f64,
}

impl Default for ElevatorParams {
    fn default() -> Self {
        ElevatorParams {
            dt_millis: 10,
            floors: 5,
            floor_height_m: 4.0,
            hoistway_limit_m: 19.5, // top floor at 16 m + guard headroom
            max_speed: 2.0,
            accel: 1.0,
            ebrake_decel: 4.0,
            door_travel_s: 2.0,
            door_dwell_s: 3.0,
            stopped_eps: 0.005,
            weight_threshold_kg: 680.0,
            stop_margin_m: 0.6,
            ebrake_margin_m: 0.3,
        }
    }
}

impl ElevatorParams {
    /// Height of floor `f` above the bottom landing, m.
    pub fn floor_height(&self, f: u32) -> f64 {
        f64::from(f) * self.floor_height_m
    }

    /// Nearest floor index for a hoistway position.
    pub fn floor_at(&self, position_m: f64) -> u32 {
        let f = (position_m / self.floor_height_m).round();
        (f.max(0.0) as u32).min(self.floors - 1)
    }
}

/// The resolved elevator signal ids plus the pre-interned command
/// symbols. Built once per substrate alongside its
/// [`SignalTable`]; the per-floor call/button vectors are sized by
/// [`ElevatorParams::floors`].
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub struct ElevatorSigs {
    pub door_closed: SignalId,
    pub door_blocked: SignalId,
    pub elevator_speed: SignalId,
    pub elevator_stopped: SignalId,
    pub elevator_weight: SignalId,
    pub overweight: SignalId,
    pub position: SignalId,
    pub floor: SignalId,
    pub drive_command: SignalId,
    pub door_motor_command: SignalId,
    pub door_position: SignalId,
    pub door_open: SignalId,
    pub dispatch_target: SignalId,
    pub dispatch_door_request: SignalId,
    pub emergency_brake: SignalId,
    /// Latched car-call ids, indexed by floor.
    pub car_calls: Vec<SignalId>,
    /// Latched hall-call ids, indexed by floor.
    pub hall_calls: Vec<SignalId>,
    /// Momentary car-button ids, indexed by floor.
    pub car_buttons: Vec<SignalId>,
    /// Momentary hall-button ids, indexed by floor.
    pub hall_buttons: Vec<SignalId>,
    /// `'STOP'`
    pub sym_stop: Value,
    /// `'UP'`
    pub sym_up: Value,
    /// `'DOWN'`
    pub sym_down: Value,
    /// `'OPEN'`
    pub sym_open: Value,
    /// `'CLOSE'`
    pub sym_close: Value,
}

impl ElevatorSigs {
    /// Declares the complete elevator namespace into `b` and resolves the
    /// id set. Idempotent on an already-populated builder.
    pub fn declare(params: &ElevatorParams, b: &mut SignalTableBuilder) -> Self {
        ElevatorSigs {
            door_closed: b.bool(DOOR_CLOSED),
            door_blocked: b.bool(DOOR_BLOCKED),
            elevator_speed: b.real(ELEVATOR_SPEED),
            elevator_stopped: b.bool(ELEVATOR_STOPPED),
            elevator_weight: b.real(ELEVATOR_WEIGHT),
            overweight: b.bool(OVERWEIGHT),
            position: b.real(POSITION),
            floor: b.real(FLOOR),
            drive_command: b.sym(DRIVE_COMMAND),
            door_motor_command: b.sym(DOOR_MOTOR_COMMAND),
            door_position: b.real(DOOR_POSITION),
            door_open: b.bool(DOOR_OPEN),
            dispatch_target: b.int(DISPATCH_TARGET),
            dispatch_door_request: b.sym(DISPATCH_DOOR_REQUEST),
            emergency_brake: b.bool(EMERGENCY_BRAKE),
            car_calls: (0..params.floors).map(|f| b.bool(&car_call(f))).collect(),
            hall_calls: (0..params.floors).map(|f| b.bool(&hall_call(f))).collect(),
            car_buttons: (0..params.floors).map(|f| b.bool(&car_button(f))).collect(),
            hall_buttons: (0..params.floors)
                .map(|f| b.bool(&hall_button(f)))
                .collect(),
            sym_stop: Value::sym("STOP"),
            sym_up: Value::sym("UP"),
            sym_down: Value::sym("DOWN"),
            sym_open: Value::sym("OPEN"),
            sym_close: Value::sym("CLOSE"),
        }
    }
}

/// Builds the elevator's shared signal table and id set for the given
/// parameters (the floor count sizes the call/button groups).
pub fn elevator_table(params: &ElevatorParams) -> (Arc<SignalTable>, ElevatorSigs) {
    let mut b = SignalTable::builder();
    let sigs = ElevatorSigs::declare(params, &mut b);
    (b.finish(), sigs)
}

/// Seeds the initial blackboard: car parked at floor 0, doors closed,
/// idle. Generic over the write target so the same seeding runs on a
/// scalar [`Frame`] and on one lane of a batched state slab.
pub fn seed_initial<W: SignalWrite>(frame: &mut W, sigs: &ElevatorSigs) {
    frame.set(sigs.door_closed, true);
    frame.set(sigs.door_blocked, false);
    frame.set(sigs.elevator_speed, 0.0);
    frame.set(sigs.elevator_stopped, true);
    frame.set(sigs.elevator_weight, 0.0);
    frame.set(sigs.overweight, false);
    frame.set(sigs.position, 0.0);
    frame.set(sigs.floor, 0.0);
    frame.set(sigs.drive_command, sigs.sym_stop);
    frame.set(sigs.door_motor_command, sigs.sym_close);
    frame.set(sigs.door_position, 0.0);
    frame.set(sigs.door_open, false);
    frame.set(sigs.dispatch_target, 0i64);
    frame.set(sigs.dispatch_door_request, sigs.sym_close);
    frame.set(sigs.emergency_brake, false);
    for f in 0..sigs.car_calls.len() {
        frame.set(sigs.car_calls[f], false);
        frame.set(sigs.hall_calls[f], false);
        frame.set(sigs.car_buttons[f], false);
        frame.set(sigs.hall_buttons[f], false);
    }
}

/// The initial blackboard as a fresh frame.
pub fn initial_frame(table: &Arc<SignalTable>, sigs: &ElevatorSigs) -> Frame {
    let mut frame = table.frame();
    seed_initial(&mut frame, sigs);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_mapping_round_trips() {
        let p = ElevatorParams::default();
        assert_eq!(p.floor_height(3), 12.0);
        assert_eq!(p.floor_at(12.0), 3);
        assert_eq!(p.floor_at(12.4), 3);
        assert_eq!(p.floor_at(-1.0), 0);
        assert_eq!(p.floor_at(99.0), p.floors - 1);
    }

    #[test]
    fn initial_frame_is_parked_and_complete() {
        let p = ElevatorParams::default();
        let (table, sigs) = elevator_table(&p);
        let s = initial_frame(&table, &sigs);
        assert_eq!(
            s.get(sigs.door_closed).and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(s.real_or(sigs.position, -1.0), 0.0);
        // 4 signal groups per floor + 15 scalar signals, every slot set.
        assert_eq!(s.iter().count(), 15 + 4 * p.floors as usize);
        assert_eq!(table.len(), 15 + 4 * p.floors as usize);
    }

    #[test]
    fn hoistway_limit_clears_top_floor() {
        let p = ElevatorParams::default();
        assert!(p.hoistway_limit_m > p.floor_height(p.floors - 1));
    }
}
