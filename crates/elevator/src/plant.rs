//! The physical plant: drive, door motor, and sensors.

use crate::faults::ElevatorFaults;
use crate::model::{ElevatorParams, ElevatorSigs};
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{LaneSubsystem, SimTime};

/// Drive + door-motor dynamics and the sensor package.
///
/// The drive accelerates toward ±`max_speed` under `'UP'`/`'DOWN'` and
/// decelerates to rest under `'STOP'` (the Min/Max Stop/Go delay
/// relationships of Table 4.2 emerge from the acceleration limit); the
/// emergency brake decelerates harder. The door traverses at constant
/// rate and cannot close against a blocking passenger (eq. 4.6).
#[derive(Debug)]
pub struct ElevatorPlant {
    params: ElevatorParams,
    faults: ElevatorFaults,
    sigs: ElevatorSigs,
}

impl ElevatorPlant {
    /// Creates the plant.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults, sigs: ElevatorSigs) -> Self {
        ElevatorPlant {
            params,
            faults,
            sigs,
        }
    }
}

impl LaneSubsystem for ElevatorPlant {
    fn name(&self) -> &str {
        "ElevatorPlant"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, t: &SimTime, prev: &R, next: &mut W) {
        let p = &self.params;
        let m = &self.sigs;
        let dt = t.dt_seconds();

        // ---- Drive dynamics.
        let mut speed = prev.real_or(m.elevator_speed, 0.0);
        let mut position = prev.real_or(m.position, 0.0);
        let drive_cmd = prev.get(m.drive_command);
        let ebrake = prev.bool_or(m.emergency_brake, false);

        let target_speed = if ebrake {
            0.0
        } else if drive_cmd == Some(m.sym_up) {
            p.max_speed
        } else if drive_cmd == Some(m.sym_down) {
            -p.max_speed
        } else {
            0.0
        };
        let rate = if ebrake { p.ebrake_decel } else { p.accel };
        let max_delta = rate * dt;
        speed += (target_speed - speed).clamp(-max_delta, max_delta);
        if speed.abs() < 1e-9 {
            speed = 0.0;
        }
        position = (position + speed * dt).max(0.0);

        next.set(m.elevator_speed, speed);
        next.set(m.elevator_stopped, speed.abs() <= p.stopped_eps);
        next.set(m.position, position);
        next.set(m.floor, f64::from(p.floor_at(position)));

        // ---- Door dynamics. A blocked door cannot close (eq. 4.6).
        let mut door_pos = prev.real_or(m.door_position, 0.0);
        let door_cmd = prev.get(m.door_motor_command);
        let blocked = prev.bool_or(m.door_blocked, false);
        let door_rate = dt / p.door_travel_s;
        if door_cmd == Some(m.sym_open) {
            door_pos = (door_pos + door_rate).min(1.0);
        } else if !blocked {
            door_pos = (door_pos - door_rate).max(0.0);
        } // else: closing force defeated by the passenger
        next.set(m.door_position, door_pos);
        let truly_closed = door_pos <= 0.01;
        let sensed_closed = if self.faults.door_sensor_stuck_closed {
            true // violated critical assumption: the sensor lies
        } else {
            truly_closed
        };
        next.set(m.door_closed, sensed_closed);
        next.set(m.door_open, door_pos >= 0.99);

        // ---- Weight sensor threshold.
        let weight = prev.real_or(m.elevator_weight, 0.0);
        next.set(m.overweight, weight > p.weight_threshold_kg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{self as model, elevator_table};
    use esafe_logic::{SignalTable, Value};
    use esafe_sim::Simulator;
    use std::sync::Arc;

    fn plant_sim(faults: ElevatorFaults) -> (Simulator, Arc<SignalTable>, ElevatorSigs) {
        let p = ElevatorParams::default();
        let (table, sigs) = elevator_table(&p);
        let mut sim = Simulator::new(p.dt_millis, &table);
        sim.add(ElevatorPlant::new(p, faults, sigs.clone()));
        sim.init(model::initial_frame(&table, &sigs));
        (sim, table, sigs)
    }

    fn force(sim: &mut Simulator, id: esafe_logic::SignalId, v: impl Into<Value>) {
        let mut s = sim.state().clone();
        s.set(id, v);
        // Re-seed the state while keeping history semantics: the plant
        // only reads `prev`, so restarting from the forced state is fine
        // for plant-only tests.
        sim.init(s);
    }

    #[test]
    fn drive_accelerates_and_stops_with_bounded_rate() {
        let (mut sim, _t, m) = plant_sim(ElevatorFaults::none());
        force(&mut sim, m.drive_command, m.sym_up);
        for _ in 0..300 {
            sim.step();
        }
        let speed = sim.state().real_or(m.elevator_speed, 0.0);
        assert!(
            (speed - 2.0).abs() < 1e-6,
            "cruise at max speed, got {speed}"
        );
        force(&mut sim, m.drive_command, m.sym_stop);
        for _ in 0..300 {
            sim.step();
        }
        assert_eq!(sim.state().real_or(m.elevator_speed, 9.0), 0.0);
        assert!(sim.state().real_or(m.position, 0.0) > 0.0);
    }

    #[test]
    fn door_cannot_close_against_block() {
        let (mut sim, _t, m) = plant_sim(ElevatorFaults::none());
        force(&mut sim, m.door_motor_command, m.sym_open);
        for _ in 0..250 {
            sim.step();
        }
        assert_eq!(sim.state().real_or(m.door_position, 0.0), 1.0);
        assert!(!sim.state().bool_or(m.door_closed, true));
        let mut s = sim.state().clone();
        s.set(m.door_motor_command, m.sym_close);
        s.set(m.door_blocked, true);
        sim.init(s);
        for _ in 0..250 {
            sim.step();
        }
        assert_eq!(
            sim.state().real_or(m.door_position, 0.0),
            1.0,
            "block holds"
        );
    }

    #[test]
    fn stuck_sensor_reports_closed_when_open() {
        let faults = ElevatorFaults {
            door_sensor_stuck_closed: true,
            ..ElevatorFaults::none()
        };
        let (mut sim, _t, m) = plant_sim(faults);
        force(&mut sim, m.door_motor_command, m.sym_open);
        for _ in 0..250 {
            sim.step();
        }
        assert!(sim.state().real_or(m.door_position, 0.0) > 0.9);
        assert!(sim.state().bool_or(m.door_closed, false), "the sensor lies");
    }

    #[test]
    fn overweight_flag_follows_threshold() {
        let (mut sim, _t, m) = plant_sim(ElevatorFaults::none());
        force(&mut sim, m.elevator_weight, 700.0);
        sim.step();
        assert!(sim.state().bool_or(m.overweight, false));
        force(&mut sim, m.elevator_weight, 100.0);
        sim.step();
        assert!(!sim.state().bool_or(m.overweight, true));
    }

    #[test]
    fn emergency_brake_stops_faster_than_drive() {
        let (mut sim, _t, m) = plant_sim(ElevatorFaults::none());
        force(&mut sim, m.drive_command, m.sym_up);
        for _ in 0..300 {
            sim.step();
        }
        let mut s = sim.state().clone();
        s.set(m.emergency_brake, true);
        sim.init(s);
        let mut ticks = 0;
        while sim.state().real_or(m.elevator_speed, 0.0) > 0.0 && ticks < 1000 {
            sim.step();
            ticks += 1;
        }
        // 2 m/s at 4 m/s² → 0.5 s = 50 ticks (10 ms each).
        assert!(ticks <= 55, "stopped in {ticks} ticks");
    }
}
