//! The physical plant: drive, door motor, and sensors.

use crate::faults::ElevatorFaults;
use crate::model::{self as m, ElevatorParams};
use esafe_logic::{State, Value};
use esafe_sim::{SimTime, Subsystem};

fn real(state: &State, name: &str, default: f64) -> f64 {
    state.get(name).and_then(Value::as_real).unwrap_or(default)
}

fn boolean(state: &State, name: &str) -> bool {
    state.get(name).and_then(Value::as_bool).unwrap_or(false)
}

fn symbol<'a>(state: &'a State, name: &str, default: &'a str) -> &'a str {
    match state.get(name) {
        Some(Value::Sym(s)) => s.as_str(),
        _ => default,
    }
}

/// Drive + door-motor dynamics and the sensor package.
///
/// The drive accelerates toward ±`max_speed` under `'UP'`/`'DOWN'` and
/// decelerates to rest under `'STOP'` (the Min/Max Stop/Go delay
/// relationships of Table 4.2 emerge from the acceleration limit); the
/// emergency brake decelerates harder. The door traverses at constant
/// rate and cannot close against a blocking passenger (eq. 4.6).
#[derive(Debug)]
pub struct ElevatorPlant {
    params: ElevatorParams,
    faults: ElevatorFaults,
}

impl ElevatorPlant {
    /// Creates the plant.
    pub fn new(params: ElevatorParams, faults: ElevatorFaults) -> Self {
        ElevatorPlant { params, faults }
    }
}

impl Subsystem for ElevatorPlant {
    fn name(&self) -> &str {
        "ElevatorPlant"
    }

    fn step(&mut self, t: &SimTime, prev: &State, next: &mut State) {
        let p = &self.params;
        let dt = t.dt_seconds();

        // ---- Drive dynamics.
        let mut speed = real(prev, m::ELEVATOR_SPEED, 0.0);
        let mut position = real(prev, m::POSITION, 0.0);
        let drive_cmd = symbol(prev, m::DRIVE_COMMAND, "STOP");
        let ebrake = boolean(prev, m::EMERGENCY_BRAKE);

        let target_speed = if ebrake {
            0.0
        } else {
            match drive_cmd {
                "UP" => p.max_speed,
                "DOWN" => -p.max_speed,
                _ => 0.0,
            }
        };
        let rate = if ebrake { p.ebrake_decel } else { p.accel };
        let max_delta = rate * dt;
        speed += (target_speed - speed).clamp(-max_delta, max_delta);
        if speed.abs() < 1e-9 {
            speed = 0.0;
        }
        position = (position + speed * dt).max(0.0);

        next.set(m::ELEVATOR_SPEED, speed);
        next.set(m::ELEVATOR_STOPPED, speed.abs() <= p.stopped_eps);
        next.set(m::POSITION, position);
        next.set(m::FLOOR, f64::from(p.floor_at(position)));

        // ---- Door dynamics. A blocked door cannot close (eq. 4.6).
        let mut door_pos = real(prev, m::DOOR_POSITION, 0.0);
        let door_cmd = symbol(prev, m::DOOR_MOTOR_COMMAND, "CLOSE");
        let blocked = boolean(prev, m::DOOR_BLOCKED);
        let door_rate = dt / p.door_travel_s;
        match door_cmd {
            "OPEN" => door_pos = (door_pos + door_rate).min(1.0),
            _ if blocked => {} // closing force defeated by the passenger
            _ => door_pos = (door_pos - door_rate).max(0.0),
        }
        next.set(m::DOOR_POSITION, door_pos);
        let truly_closed = door_pos <= 0.01;
        let sensed_closed = if self.faults.door_sensor_stuck_closed {
            true // violated critical assumption: the sensor lies
        } else {
            truly_closed
        };
        next.set(m::DOOR_CLOSED, sensed_closed);
        next.set(m::DOOR_OPEN, door_pos >= 0.99);

        // ---- Weight sensor threshold.
        let weight = real(prev, m::ELEVATOR_WEIGHT, 0.0);
        next.set(m::OVERWEIGHT, weight > p.weight_threshold_kg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_sim::Simulator;

    fn plant_sim(faults: ElevatorFaults) -> Simulator {
        let p = ElevatorParams::default();
        let mut sim = Simulator::new(p.dt_millis);
        sim.add(ElevatorPlant::new(p, faults));
        sim.init(m::initial_state(&p));
        sim
    }

    fn force(sim: &mut Simulator, name: &str, v: impl Into<Value>) {
        let mut s = sim.state().clone();
        s.set(name, v);
        // Re-seed the state while keeping history semantics: the plant
        // only reads `prev`, so restarting from the forced state is fine
        // for plant-only tests.
        let tick = sim.tick();
        let _ = tick;
        sim.init(s);
    }

    #[test]
    fn drive_accelerates_and_stops_with_bounded_rate() {
        let mut sim = plant_sim(ElevatorFaults::none());
        force(&mut sim, m::DRIVE_COMMAND, Value::sym("UP"));
        for _ in 0..300 {
            sim.step();
        }
        let speed = real(sim.state(), m::ELEVATOR_SPEED, 0.0);
        assert!(
            (speed - 2.0).abs() < 1e-6,
            "cruise at max speed, got {speed}"
        );
        force(&mut sim, m::DRIVE_COMMAND, Value::sym("STOP"));
        for _ in 0..300 {
            sim.step();
        }
        assert_eq!(real(sim.state(), m::ELEVATOR_SPEED, 9.0), 0.0);
        assert!(real(sim.state(), m::POSITION, 0.0) > 0.0);
    }

    #[test]
    fn door_cannot_close_against_block() {
        let mut sim = plant_sim(ElevatorFaults::none());
        force(&mut sim, m::DOOR_MOTOR_COMMAND, Value::sym("OPEN"));
        for _ in 0..250 {
            sim.step();
        }
        assert_eq!(real(sim.state(), m::DOOR_POSITION, 0.0), 1.0);
        assert!(!boolean(sim.state(), m::DOOR_CLOSED));
        let mut s = sim.state().clone();
        s.set(m::DOOR_MOTOR_COMMAND, Value::sym("CLOSE"));
        s.set(m::DOOR_BLOCKED, true);
        sim.init(s);
        for _ in 0..250 {
            sim.step();
        }
        assert_eq!(real(sim.state(), m::DOOR_POSITION, 0.0), 1.0, "block holds");
    }

    #[test]
    fn stuck_sensor_reports_closed_when_open() {
        let faults = ElevatorFaults {
            door_sensor_stuck_closed: true,
            ..ElevatorFaults::none()
        };
        let mut sim = plant_sim(faults);
        force(&mut sim, m::DOOR_MOTOR_COMMAND, Value::sym("OPEN"));
        for _ in 0..250 {
            sim.step();
        }
        assert!(real(sim.state(), m::DOOR_POSITION, 0.0) > 0.9);
        assert!(boolean(sim.state(), m::DOOR_CLOSED), "the sensor lies");
    }

    #[test]
    fn overweight_flag_follows_threshold() {
        let mut sim = plant_sim(ElevatorFaults::none());
        force(&mut sim, m::ELEVATOR_WEIGHT, 700.0);
        sim.step();
        assert!(boolean(sim.state(), m::OVERWEIGHT));
        force(&mut sim, m::ELEVATOR_WEIGHT, 100.0);
        sim.step();
        assert!(!boolean(sim.state(), m::OVERWEIGHT));
    }

    #[test]
    fn emergency_brake_stops_faster_than_drive() {
        let p = ElevatorParams::default();
        let mut sim = plant_sim(ElevatorFaults::none());
        force(&mut sim, m::DRIVE_COMMAND, Value::sym("UP"));
        for _ in 0..300 {
            sim.step();
        }
        let mut s = sim.state().clone();
        s.set(m::EMERGENCY_BRAKE, true);
        sim.init(s);
        let mut ticks = 0;
        while real(sim.state(), m::ELEVATOR_SPEED, 0.0) > 0.0 && ticks < 1000 {
            sim.step();
            ticks += 1;
        }
        // 2 m/s at 4 m/s² → 0.5 s = 50 ticks (10 ms each).
        assert!(ticks <= 55, "stopped in {ticks} ticks");
        let _ = p;
    }
}
