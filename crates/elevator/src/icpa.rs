//! The Chapter 4 ICPA worked examples: the Figure 4.5 control
//! architecture and the Tables 4.1–4.4 analysis of
//! `Maintain[DoorClosedOrElevatorStopped]`, plus the single- and
//! redundant-responsibility analyses of Figures 4.6 and 4.9–4.11.

use crate::goals;
use crate::model::{self as m, ElevatorParams};
use esafe_core::icpa::{CoverageStrategy, GoalAssignment, GoalScope};
use esafe_core::tactics::TacticKind;
use esafe_core::{Agent, AgentKind, ControlGraph, IcpaBuilder, IcpaTable};
use esafe_logic::parse;

/// Builds the Figure 4.5 architecture.
pub fn control_graph(params: &ElevatorParams) -> ControlGraph {
    let mut g = ControlGraph::new();

    g.add_sensed_var(m::DOOR_CLOSED, "door closed switch");
    g.add_sensed_var(m::DOOR_BLOCKED, "door light curtain");
    g.add_sensed_var(m::ELEVATOR_SPEED, "hoistway speed sensor");
    g.add_sensed_var(m::ELEVATOR_STOPPED, "derived stopped band");
    g.add_sensed_var(m::ELEVATOR_WEIGHT, "load cell");
    g.add_sensed_var(m::OVERWEIGHT, "derived weight threshold flag");
    g.add_sensed_var(m::POSITION, "hoistway position encoder");
    g.add_var(m::EMERGENCY_BRAKE, "emergency brake trigger");
    g.add_var("drive_speed", "physical drive speed");
    g.add_var("door_position_physical", "physical door position");
    g.add_var(m::DRIVE_COMMAND, "actuation signal to the drive");
    g.add_var(m::DOOR_MOTOR_COMMAND, "actuation signal to the door motor");
    g.add_var(m::DISPATCH_TARGET, "dispatch request");
    g.add_var("car_call", "car call message");
    g.add_var("hall_call", "hall call message");
    g.add_var("car_button_press", "physical car button");
    g.add_var("hall_button_press", "physical hall button");

    g.add_physical_link("drive_speed", m::ELEVATOR_SPEED, "car motion sensed");
    g.add_physical_link("drive_speed", m::ELEVATOR_STOPPED, "stopped band derived");
    g.add_physical_link("drive_speed", m::POSITION, "position integrates motion");
    g.add_physical_link(
        "door_position_physical",
        m::DOOR_CLOSED,
        "door position sensed at the closed switch",
    );

    g.add_agent(
        Agent::new("Drive", AgentKind::Actuator)
            .controls(["drive_speed"])
            .monitors([m::DRIVE_COMMAND]),
    );
    g.add_agent(
        Agent::new("DoorMotor", AgentKind::Actuator)
            .controls(["door_position_physical"])
            .monitors([m::DOOR_MOTOR_COMMAND]),
    );
    g.add_agent(
        Agent::new("DriveController", AgentKind::Software)
            .controls([m::DRIVE_COMMAND])
            .monitors([
                m::DISPATCH_TARGET,
                m::DOOR_CLOSED,
                m::DOOR_MOTOR_COMMAND,
                m::OVERWEIGHT,
                m::POSITION,
                m::ELEVATOR_SPEED,
            ]),
    );
    g.add_agent(
        Agent::new("DoorController", AgentKind::Software)
            .controls([m::DOOR_MOTOR_COMMAND])
            .monitors([
                m::DISPATCH_TARGET,
                m::ELEVATOR_SPEED,
                m::ELEVATOR_STOPPED,
                m::DRIVE_COMMAND,
                m::DOOR_BLOCKED,
            ]),
    );
    g.add_agent(
        Agent::new("EmergencyBrake", AgentKind::Software)
            .controls([m::EMERGENCY_BRAKE])
            .monitors([m::POSITION, m::ELEVATOR_SPEED]),
    );
    g.add_agent(
        Agent::new("DispatchController", AgentKind::Software)
            .controls([m::DISPATCH_TARGET])
            .monitors(["car_call", "hall_call"]),
    );
    g.add_agent(
        Agent::new("CarButtonController", AgentKind::Software)
            .controls(["car_call"])
            .monitors(["car_button_press"]),
    );
    g.add_agent(
        Agent::new("HallButtonController", AgentKind::Software)
            .controls(["hall_call"])
            .monitors(["hall_button_press"]),
    );
    g.add_agent(Agent::new("Passenger", AgentKind::Environment).controls([
        m::DOOR_BLOCKED,
        m::ELEVATOR_WEIGHT,
        "car_button_press",
        "hall_button_press",
    ]));
    let _ = params;
    g
}

/// The Tables 4.1–4.3 ICPA of `Maintain[DoorClosedOrElevatorStopped]`,
/// ending in the Table 4.4 shared-responsibility subgoals.
pub fn door_or_stopped_icpa(params: &ElevatorParams) -> IcpaTable {
    let graph = control_graph(params);
    let e = |s: &str| parse(s).expect("formula");

    IcpaBuilder::new(goals::door_goal())
        .trace_paths(&graph)
        // Table 4.1 relationships (door branch).
        .relationship(
            1,
            m::DOOR_CLOSED,
            ["DoorController", "DoorMotor"],
            e("initially(door_closed && door_motor_command == 'OPEN')"),
            "in the initial state the door is closed and commanded OPEN",
        )
        .relationship(
            2,
            m::DOOR_CLOSED,
            ["DoorController", "DoorMotor"],
            e("prev(door_closed && door_motor_command == 'CLOSE') => door_closed"),
            "a closed door that is commanded CLOSE remains closed",
        )
        .relationship(
            4,
            m::DOOR_CLOSED,
            ["DoorController", "DoorMotor"],
            e("held_for(!door_blocked && door_motor_command == 'CLOSE', 2100ms) => door_closed"),
            "an unblocked door commanded CLOSE for MaxCloseDelay will be closed",
        )
        .relationship(
            7,
            m::DOOR_CLOSED,
            ["DoorController", "DoorMotor"],
            e(
                "prev(door_closed) && once_within(door_motor_command == 'CLOSE', 100ms) \
               => door_closed || !door_closed",
            ),
            "MinOpenDelay: a door whose command just switched stays closed briefly",
        )
        .relationship(
            10,
            m::DOOR_BLOCKED,
            ["Passenger"],
            e("prev(door_blocked) => door_motor_command == 'OPEN'"),
            "door-reversal safety goal: a blocked door is commanded OPEN",
        )
        .relationship(
            11,
            m::DOOR_BLOCKED,
            ["Passenger"],
            e("prev(door_blocked) => !door_closed || door_closed"),
            "a blocked door cannot be driven closed against the passenger",
        )
        // Table 4.2 relationships (drive branch).
        .relationship(
            12,
            m::ELEVATOR_SPEED,
            ["Drive"],
            e("drive_speed_stopped <-> elevator_stopped"),
            "if the drive is stopped, the elevator is stopped, and vice versa",
        )
        .relationship(
            13,
            m::ELEVATOR_SPEED,
            ["DriveController", "Drive"],
            e("initially(elevator_stopped && drive_command == 'STOP')"),
            "in the initial state the elevator is stopped and commanded STOP",
        )
        .relationship(
            14,
            m::ELEVATOR_SPEED,
            ["DriveController", "Drive"],
            e("prev(elevator_stopped && drive_command == 'STOP') => elevator_stopped"),
            "a stopped drive commanded STOP remains stopped",
        )
        .relationship(
            19,
            m::ELEVATOR_SPEED,
            ["DriveController", "Drive"],
            e(
                "prev(elevator_stopped) && once_within(drive_command == 'UP' || \
               drive_command == 'DOWN', 100ms) => elevator_stopped",
            ),
            "MinGoDelay: a stopped drive whose command just switched to GO \
             remains stopped for at least one state",
        )
        // Coverage strategy (Table 4.3).
        .strategy(CoverageStrategy {
            assignment: GoalAssignment::SharedResponsibility {
                agents: vec!["DoorController".into(), "DriveController".into()],
            },
            scope: GoalScope::Restrictive {
                rationale: "assumes worst-case actuator response times; real \
                            response may be slower"
                    .into(),
            },
        })
        // Elaboration (Table 4.3): case split on the initial state, then
        // each controller cancels its own actuation when it observes the
        // other's.
        .elaborate(
            e("initially(door_closed && elevator_stopped)"),
            TacticKind::SplitByCase,
            [1, 13],
            "goal satisfied in the initial state; split lack of \
             monitorability/control by case",
        )
        .elaborate(
            e("prev(!elevator_stopped || drive_command != 'STOP') => \
               door_motor_command == 'CLOSE'"),
            TacticKind::IntroduceActuationGoal,
            [2, 7, 10, 19],
            "minimum door-open delay lets the door controller cancel before \
             actuation completes",
        )
        .elaborate(
            e("prev(!door_closed || door_motor_command == 'OPEN') => \
               drive_command == 'STOP'"),
            TacticKind::IntroduceActuationGoal,
            [7, 13, 14, 19],
            "minimum drive-go delay lets the drive controller cancel before \
             the car moves",
        )
        // Table 4.4 subgoals.
        .subgoal(
            "DoorController",
            goals::door_controller_subgoal(),
            [m::DOOR_MOTOR_COMMAND],
            [m::ELEVATOR_SPEED, m::DRIVE_COMMAND, m::DOOR_BLOCKED],
        )
        .subgoal(
            "DriveController",
            goals::drive_controller_subgoal(),
            [m::DRIVE_COMMAND],
            [m::DOOR_CLOSED, m::DOOR_MOTOR_COMMAND],
        )
        .finish()
}

/// The Figure 4.6 single-responsibility ICPA of
/// `Maintain[DriveStoppedWhenOverweight]`.
pub fn overweight_icpa(params: &ElevatorParams) -> IcpaTable {
    let graph = control_graph(params);
    let e = |s: &str| parse(s).expect("formula");
    IcpaBuilder::new(goals::overweight_goal())
        .trace_paths(&graph)
        .relationship(
            1,
            m::ELEVATOR_WEIGHT,
            ["Passenger"],
            e("prev(overweight) => prev(overweight)"),
            "passengers load the car; weight changes only at landings",
        )
        .relationship(
            2,
            m::ELEVATOR_SPEED,
            ["DriveController", "Drive"],
            e("prev(drive_command == 'STOP') && prev(elevator_stopped) => elevator_stopped"),
            "a stopped drive commanded STOP remains stopped",
        )
        .strategy(CoverageStrategy {
            assignment: GoalAssignment::SingleResponsibility {
                agent: "DriveController".into(),
            },
            scope: GoalScope::Restrictive {
                rationale: "weight can only change while parked with open \
                            doors, so stopping the drive suffices"
                    .into(),
            },
        })
        .elaborate(
            goals::overweight_subgoal().formal().clone(),
            TacticKind::IntroduceActuationGoal,
            [1, 2],
            "shift the stop obligation to the drive command",
        )
        .subgoal(
            "DriveController",
            goals::overweight_subgoal(),
            [m::DRIVE_COMMAND],
            [m::OVERWEIGHT],
        )
        .finish()
}

/// The Figures 4.9–4.11 redundant-responsibility ICPA of
/// `Maintain[ElevatorBelowHoistwayUpperLimit]`.
pub fn hoistway_icpa(params: &ElevatorParams) -> IcpaTable {
    let graph = control_graph(params);
    let e = |s: &str| parse(s).expect("formula");
    IcpaBuilder::new(goals::hoistway_goal(params))
        .trace_paths(&graph)
        .relationship(
            1,
            m::POSITION,
            ["Drive"],
            e("prev(drive_command != 'UP') => position_not_increasing"),
            "position rises only under upward drive",
        )
        .relationship(
            2,
            m::POSITION,
            ["EmergencyBrake"],
            e("prev(emergency_brake) => position_not_increasing"),
            "the emergency brake arrests motion regardless of the drive",
        )
        .strategy(CoverageStrategy {
            assignment: GoalAssignment::RedundantResponsibility {
                primary: vec!["DriveController".into()],
                secondary: vec!["EmergencyBrake".into()],
            },
            scope: GoalScope::Restrictive {
                rationale: "both legs use safety margins: the primary stops \
                            one stopping-distance early, the secondary \
                            tighter — normal service avoids brake wear \
                            (§4.5.1)"
                    .into(),
            },
        })
        .elaborate(
            goals::hoistway_primary_subgoal(params).formal().clone(),
            TacticKind::SafetyMargin,
            [1],
            "primary: stop margin below the limit",
        )
        .elaborate(
            goals::hoistway_secondary_subgoal(params).formal().clone(),
            TacticKind::SafetyMargin,
            [2],
            "secondary: emergency braking margin",
        )
        .subgoal(
            "DriveController",
            goals::hoistway_primary_subgoal(params),
            [m::DRIVE_COMMAND],
            [m::POSITION],
        )
        .subgoal(
            "EmergencyBrake",
            goals::hoistway_secondary_subgoal(params),
            [m::EMERGENCY_BRAKE],
            [m::POSITION, m::ELEVATOR_SPEED],
        )
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_core::render;

    #[test]
    fn door_goal_paths_reach_both_branches() {
        let p = ElevatorParams::default();
        let g = control_graph(&p);
        let path = g.trace(m::DOOR_CLOSED);
        let agents = path.all_agents();
        assert!(agents.contains(&"DoorMotor".to_owned()));
        assert!(agents.contains(&"DoorController".to_owned()));
        assert!(agents.contains(&"Passenger".to_owned()));
        let speed_path = g.trace(m::ELEVATOR_SPEED);
        assert_eq!(speed_path.agents_at_level(1), vec!["Drive".to_owned()]);
        assert_eq!(
            speed_path.agents_at_level(2),
            vec!["DriveController".to_owned()]
        );
    }

    #[test]
    fn door_icpa_renders_with_all_sections() {
        let table = door_or_stopped_icpa(&ElevatorParams::default());
        assert!(table.dangling_citations().is_empty());
        let text = render::icpa_table(&table);
        for needle in [
            "Maintain[DoorClosedOrElevatorStopped]",
            "Shared Responsibility (DoorController & DriveController)",
            "Restrictive",
            "Achieve[CloseDoorWhenElevatorMovingOrMoved]",
            "Achieve[StopElevatorWhenDoorOpenOrOpened]",
            "[10]",
        ] {
            assert!(text.contains(needle), "missing `{needle}`");
        }
    }

    #[test]
    fn overweight_icpa_is_single_responsibility() {
        let table = overweight_icpa(&ElevatorParams::default());
        assert_eq!(table.subgoals.len(), 1);
        assert!(matches!(
            table.strategy.assignment,
            GoalAssignment::SingleResponsibility { .. }
        ));
    }

    #[test]
    fn hoistway_icpa_is_redundant_with_two_legs() {
        let table = hoistway_icpa(&ElevatorParams::default());
        assert_eq!(table.subgoals.len(), 2);
        assert!(matches!(
            table.strategy.assignment,
            GoalAssignment::RedundantResponsibility { .. }
        ));
        let text = render::icpa_table(&table);
        assert!(text.contains("EmergencyBrake"));
    }
}
