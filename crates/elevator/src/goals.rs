//! The Chapter 4 safety goals and their monitor suite.

use crate::model::ElevatorParams;
use esafe_core::{Goal, GoalClass};
use esafe_logic::{parse, EvalError, Expr, SignalTable};
use esafe_monitor::{Location, MonitorSuite};
use std::sync::Arc;

fn p(src: &str) -> Expr {
    parse(src).unwrap_or_else(|e| panic!("bad goal formula `{src}`: {e}"))
}

/// `Maintain[DoorClosedOrElevatorStopped]` (Fig. 4.8).
pub fn door_goal() -> Goal {
    Goal::new(
        "Maintain[DoorClosedOrElevatorStopped]",
        GoalClass::Maintain,
        "At all times the door shall be closed or the elevator speed shall \
         be STOPPED.",
        p("always(door_closed || elevator_stopped)"),
    )
}

/// Table 4.4 subgoal for the DoorController:
/// `Achieve[CloseDoorWhenElevatorMovingOrMoved]`.
pub fn door_controller_subgoal() -> Goal {
    Goal::new(
        "Achieve[CloseDoorWhenElevatorMovingOrMoved]",
        GoalClass::Achieve,
        "If the door is not blocked and the elevator is moving or has been \
         commanded to move, the door shall be commanded to CLOSE.",
        p(
            "(prev(!elevator_stopped || drive_command != 'STOP') && prev(!door_blocked)) \
           => door_motor_command == 'CLOSE'",
        ),
    )
}

/// Table 4.4 subgoal for the DriveController:
/// `Achieve[StopElevatorWhenDoorOpenOrOpened]`.
pub fn drive_controller_subgoal() -> Goal {
    Goal::new(
        "Achieve[StopElevatorWhenDoorOpenOrOpened]",
        GoalClass::Achieve,
        "If the doors are not closed or have been commanded open, the drive \
         shall be commanded to STOP.",
        p("prev(!door_closed || door_motor_command == 'OPEN') \
           => drive_command == 'STOP'"),
    )
}

/// `Maintain[DriveStoppedWhenOverweight]` (Fig. 4.6).
pub fn overweight_goal() -> Goal {
    Goal::new(
        "Maintain[DriveStoppedWhenOverweight]",
        GoalClass::Maintain,
        "If the elevator weight exceeds the weight threshold, the elevator \
         speed shall be STOPPED.",
        p("prev(overweight) => elevator_stopped"),
    )
}

/// The DriveController's overweight subgoal.
pub fn overweight_subgoal() -> Goal {
    Goal::new(
        "Achieve[StopDriveWhenOverweight]",
        GoalClass::Achieve,
        "If the weight threshold was exceeded, the drive shall be commanded \
         to STOP.",
        p("prev(overweight) => drive_command == 'STOP'"),
    )
}

/// `Maintain[ElevatorBelowHoistwayUpperLimit]` (Fig. 4.9).
pub fn hoistway_goal(params: &ElevatorParams) -> Goal {
    Goal::new(
        "Maintain[ElevatorBelowHoistwayUpperLimit]",
        GoalClass::Maintain,
        "The top of the elevator shall never exceed the upper limit of the \
         hoistway.",
        p(&format!(
            "always(elevator_position <= {})",
            params.hoistway_limit_m
        )),
    )
}

/// `Achieve[StopBeforeHoistwayUpperLimit]` (Fig. 4.10) — the primary
/// redundancy leg, with the restrictive stop margin.
pub fn hoistway_primary_subgoal(params: &ElevatorParams) -> Goal {
    let guard = params.hoistway_limit_m
        - (params.max_speed * params.max_speed / (2.0 * params.accel) + params.stop_margin_m);
    Goal::new(
        "Achieve[StopBeforeHoistwayUpperLimit]",
        GoalClass::Achieve,
        "If the elevator nears the upper hoistway limit, the drive shall \
         not be commanded upward.",
        p(&format!(
            "prev(elevator_position >= {guard}) => drive_command != 'UP'"
        )),
    )
}

/// `Achieve[EmergencyStopBeforeHoistwayUpperLimit]` (Fig. 4.11) — the
/// secondary redundancy leg.
pub fn hoistway_secondary_subgoal(params: &ElevatorParams) -> Goal {
    let trip = params.hoistway_limit_m - params.ebrake_margin_m;
    Goal::new(
        "Achieve[EmergencyStopBeforeHoistwayUpperLimit]",
        GoalClass::Achieve,
        "If the elevator nears the upper hoistway limit, the emergency \
         brake shall be applied.",
        p(&format!(
            "prev(elevator_position >= {trip}) => emergency_brake"
        )),
    )
}

/// The door-reversal goal (eq. 4.7): a blocked door is commanded open.
pub fn reversal_goal() -> Goal {
    Goal::new(
        "Achieve[DoorReversalWhenBlocked]",
        GoalClass::Achieve,
        "If the door is blocked, the door shall be commanded OPEN.",
        p("prev(door_blocked) => door_motor_command == 'OPEN'"),
    )
}

/// Assembles the hierarchical monitor suite for all Chapter 4 goals,
/// compiled against the substrate's shared signal table (all variable
/// references resolve to signal ids here, once).
///
/// Monitor ids: `door` (+`door:DoorCtl`, `door:DriveCtl`), `overweight`
/// (+`overweight:DriveCtl`), `hoistway` (+`hoistway:DriveCtl`,
/// `hoistway:EBrake`), and `reversal` (+`reversal:DoorCtl`).
///
/// # Errors
///
/// Propagates [`EvalError`] if a formula fails to compile or references a
/// signal outside the table (programming error, exercised by tests).
pub fn build_suite(
    table: &Arc<SignalTable>,
    params: &ElevatorParams,
) -> Result<MonitorSuite, EvalError> {
    let mut suite = MonitorSuite::new(table.clone());
    let system = Location::new("Elevator");
    let door_ctl = Location::new("DoorController");
    let drive_ctl = Location::new("DriveController");
    let ebrake = Location::new("EmergencyBrake");

    suite.add_goal("door", system.clone(), door_goal().formal().clone())?;
    suite.add_subgoal(
        "door:DoorCtl",
        "door",
        door_ctl.clone(),
        door_controller_subgoal().formal().clone(),
    )?;
    suite.add_subgoal(
        "door:DriveCtl",
        "door",
        drive_ctl.clone(),
        drive_controller_subgoal().formal().clone(),
    )?;

    suite.add_goal(
        "overweight",
        system.clone(),
        overweight_goal().formal().clone(),
    )?;
    suite.add_subgoal(
        "overweight:DriveCtl",
        "overweight",
        drive_ctl.clone(),
        overweight_subgoal().formal().clone(),
    )?;

    suite.add_goal(
        "hoistway",
        system.clone(),
        hoistway_goal(params).formal().clone(),
    )?;
    suite.add_subgoal(
        "hoistway:DriveCtl",
        "hoistway",
        drive_ctl,
        hoistway_primary_subgoal(params).formal().clone(),
    )?;
    suite.add_subgoal(
        "hoistway:EBrake",
        "hoistway",
        ebrake,
        hoistway_secondary_subgoal(params).formal().clone(),
    )?;

    suite.add_goal("reversal", system, reversal_goal().formal().clone())?;
    suite.add_subgoal(
        "reversal:DoorCtl",
        "reversal",
        door_ctl,
        reversal_goal().formal().clone(),
    )?;

    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::ElevatorFaults;
    use crate::model;
    use crate::substrate::ElevatorSubstrate;
    use esafe_harness::{Experiment, ExperimentConfig, RunReport};
    use esafe_logic::Value;

    /// The window the elevator analyses use: 5 ticks of 10 ms.
    const WINDOW: ExperimentConfig = ExperimentConfig {
        post_terminal_ms: 100,
        correlation_window_ms: 50,
    };

    fn run_with(faults: ElevatorFaults, ticks: u64) -> RunReport {
        let substrate = ElevatorSubstrate::new(faults, 7).with_ticks(ticks);
        Experiment::new(&substrate)
            .with_config(WINDOW)
            .run()
            .unwrap()
    }

    #[test]
    fn suite_has_four_goals_and_six_subgoals() {
        let params = ElevatorParams::default();
        let (table, _sigs) = crate::model::elevator_table(&params);
        let suite = build_suite(&table, &params).unwrap();
        assert_eq!(suite.goal_ids().len(), 4);
        assert_eq!(suite.location_matrix().len(), 10);
    }

    #[test]
    fn drive_ignoring_door_is_a_hit() {
        let faults = ElevatorFaults {
            drive_ignores_door: true,
            ..ElevatorFaults::none()
        };
        let report = run_with(faults, 12_000);
        let row = report.correlation.for_goal("door").unwrap();
        assert!(
            row.goal_violations > 0,
            "system goal must fire:\n{}",
            report.correlation
        );
        assert!(
            row.hits > 0,
            "the DriveCtl subgoal must cover it:\n{}",
            report.correlation
        );
        assert!(
            !report.violations_for("door:DriveCtl").is_empty(),
            "the faulty controller's subgoal localizes the defect"
        );
    }

    #[test]
    fn early_door_open_is_caught_by_door_subgoal() {
        let faults = ElevatorFaults {
            door_opens_while_moving: true,
            ..ElevatorFaults::none()
        };
        let report = run_with(faults, 12_000);
        assert!(
            !report.violations_for("door:DoorCtl").is_empty(),
            "door controller subgoal must fire"
        );
    }

    #[test]
    fn overweight_ignored_is_a_hit_with_low_threshold() {
        let params = ElevatorParams {
            weight_threshold_kg: 100.0, // two passengers trip it
            ..ElevatorParams::default()
        };
        let faults = ElevatorFaults {
            overweight_ignored: true,
            ..ElevatorFaults::none()
        };
        let substrate = ElevatorSubstrate::new(faults, 7)
            .with_params(params)
            .with_ticks(20_000);
        let report = Experiment::new(&substrate)
            .with_config(WINDOW)
            .run()
            .unwrap();
        let row = report.correlation.for_goal("overweight").unwrap();
        assert!(
            row.goal_violations > 0,
            "goal must fire:\n{}",
            report.correlation
        );
        assert!(
            row.hits > 0,
            "subgoal must cover it:\n{}",
            report.correlation
        );
    }

    #[test]
    fn runaway_masked_by_emergency_brake_is_a_false_positive() {
        let faults = ElevatorFaults {
            hoistway_guard_missing: true,
            ..ElevatorFaults::none()
        };
        let substrate = ElevatorSubstrate::new(faults, 7).with_ticks(6_000);
        let mut brake_engaged_at_end = false;
        let report = Experiment::new(&substrate)
            .with_config(WINDOW)
            .run_with(|_tick, raw, _observed| {
                brake_engaged_at_end =
                    raw.get_named(model::EMERGENCY_BRAKE) == Some(Value::Bool(true));
            })
            .unwrap();
        let row = report.correlation.for_goal("hoistway").unwrap();
        assert_eq!(
            row.goal_violations, 0,
            "the secondary leg must keep the system safe:\n{}",
            report.correlation
        );
        assert!(
            row.false_positives > 0,
            "the primary subgoal violation is a false positive — redundant \
             coverage masked the defect (thesis §3.4):\n{}",
            report.correlation
        );
        // The emergency brake actually engaged.
        assert!(brake_engaged_at_end);
    }

    #[test]
    fn runaway_with_dead_ebrake_violates_the_system_goal() {
        let faults = ElevatorFaults {
            hoistway_guard_missing: true,
            ebrake_inoperative: true,
            ..ElevatorFaults::none()
        };
        let report = run_with(faults, 6_000);
        let row = report.correlation.for_goal("hoistway").unwrap();
        assert!(
            row.goal_violations > 0,
            "both legs lost:\n{}",
            report.correlation
        );
        assert!(
            row.hits > 0,
            "subgoal violations cover it:\n{}",
            report.correlation
        );
    }

    #[test]
    fn stuck_door_sensor_is_a_false_negative_for_the_monitors() {
        let faults = ElevatorFaults {
            door_sensor_stuck_closed: true,
            ..ElevatorFaults::none()
        };
        let substrate = ElevatorSubstrate::new(faults, 7).with_ticks(12_000);
        let mut physically_unsafe = false;
        let report = Experiment::new(&substrate)
            .run_with(|_tick, raw, _observed| {
                let open = raw
                    .get_named(model::DOOR_POSITION)
                    .and_then(|v| v.as_real())
                    .unwrap_or(0.0)
                    > 0.05;
                let moving = !raw
                    .get_named(model::ELEVATOR_STOPPED)
                    .and_then(|v| v.as_bool())
                    .unwrap_or(true);
                if open && moving {
                    physically_unsafe = true;
                }
            })
            .unwrap();
        assert!(
            physically_unsafe,
            "the lying sensor lets the car move with open doors"
        );
        // Yet every monitor is quiet: the hazard is invisible — the
        // violated critical assumption is the emergence `X` of eq. 3.14.
        assert!(!report.correlation.any_violations());
    }
}
