//! Deterministic randomized passenger traffic (the `Passenger`
//! environmental agent of Fig. 4.5).

use crate::model::{ElevatorParams, ElevatorSigs};
use esafe_logic::{SignalRead, SignalWrite};
use esafe_sim::{LaneSubsystem, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scripted-random passengers: they press hall and car buttons, step in
/// and out at landings (changing the car weight), and occasionally block
/// the closing doors.
#[derive(Debug)]
pub struct PassengerTraffic {
    params: ElevatorParams,
    sigs: ElevatorSigs,
    rng: StdRng,
    onboard_kg: f64,
    block_ticks_left: u64,
}

impl PassengerTraffic {
    /// Creates a traffic source with a deterministic seed.
    pub fn new(params: ElevatorParams, seed: u64, sigs: ElevatorSigs) -> Self {
        PassengerTraffic {
            params,
            sigs,
            rng: StdRng::seed_from_u64(seed),
            onboard_kg: 0.0,
            block_ticks_left: 0,
        }
    }
}

impl LaneSubsystem for PassengerTraffic {
    fn name(&self) -> &str {
        "PassengerTraffic"
    }

    fn step_lane<R: SignalRead, W: SignalWrite>(&mut self, _t: &SimTime, prev: &R, next: &mut W) {
        let p = self.params;
        let m = &self.sigs;
        // Clear the previous tick's momentary button presses.
        for f in 0..p.floors as usize {
            next.set(m.car_buttons[f], false);
            next.set(m.hall_buttons[f], false);
        }

        // ~1 press per 2 simulated seconds across the building.
        let press_prob = p.dt_millis as f64 / 2000.0;
        if self.rng.gen_bool(press_prob) {
            let f = self.rng.gen_range(0..p.floors) as usize;
            if self.rng.gen_bool(0.5) {
                next.set(m.hall_buttons[f], true);
            } else {
                next.set(m.car_buttons[f], true);
            }
        }

        // Boarding and alighting while the door is open at a landing.
        let door_open = prev.real_or(m.door_position, 0.0) > 0.9;
        if door_open {
            let exchange_prob = p.dt_millis as f64 / 1500.0;
            if self.rng.gen_bool(exchange_prob) {
                // Boarding outweighs alighting so load accumulates over a
                // run (rush-hour style traffic).
                if self.rng.gen_bool(0.35) && self.onboard_kg > 0.0 {
                    self.onboard_kg = (self.onboard_kg - 75.0).max(0.0);
                } else {
                    self.onboard_kg += 75.0;
                }
            }
            // Occasionally a passenger lingers in the doorway.
            if self.block_ticks_left == 0 && self.rng.gen_bool(p.dt_millis as f64 / 5000.0) {
                self.block_ticks_left = 1000 / p.dt_millis; // ~1 s
            }
        }
        if self.block_ticks_left > 0 {
            self.block_ticks_left -= 1;
        }

        next.set(m.door_blocked, self.block_ticks_left > 0);
        next.set(m.elevator_weight, self.onboard_kg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{elevator_table, initial_frame};
    use esafe_logic::Value;
    use esafe_sim::Subsystem;

    #[test]
    fn traffic_eventually_presses_buttons() {
        let p = ElevatorParams::default();
        let (table, m) = elevator_table(&p);
        let mut traffic = PassengerTraffic::new(p, 3, m.clone());
        let mut s = initial_frame(&table, &m);
        let mut presses = 0;
        for tick in 0..2000u64 {
            let mut next = s.clone();
            traffic.step(
                &SimTime {
                    tick,
                    dt_millis: p.dt_millis,
                },
                &s,
                &mut next,
            );
            for f in 0..p.floors as usize {
                if next.bool_or(m.hall_buttons[f], false) || next.bool_or(m.car_buttons[f], false) {
                    presses += 1;
                }
            }
            s = next;
        }
        assert!(presses > 0, "20 s of traffic must include presses");
    }

    #[test]
    fn weight_changes_only_with_open_door() {
        let p = ElevatorParams::default();
        let (table, m) = elevator_table(&p);
        let mut traffic = PassengerTraffic::new(p, 3, m.clone());
        let mut s = initial_frame(&table, &m);
        // Door closed: weight must stay zero.
        for tick in 0..2000u64 {
            let mut next = s.clone();
            traffic.step(
                &SimTime {
                    tick,
                    dt_millis: p.dt_millis,
                },
                &s,
                &mut next,
            );
            assert_eq!(next.get(m.elevator_weight), Some(Value::Real(0.0)));
            s = next;
        }
    }
}
