//! The elevator's [`Substrate`] implementation: one seed × fault
//! configuration, runnable under the generic experiment harness.

use crate::faults::ElevatorFaults;
use crate::model::{self, ElevatorParams, ElevatorSigs};
use crate::{build_elevator, build_elevator_batch, goals, ElevatorLaneConfig};
use esafe_harness::Substrate;
use esafe_logic::{EvalError, Frame, FrameBatch, SignalId, SignalTable};
use esafe_monitor::{MonitorSuite, SuiteTemplate};
use esafe_sim::{Simulator, SimulatorBatch};
use std::sync::Arc;

/// The compile-once artifacts of the elevator substrate *family*: the
/// shared [`SignalTable`] (sized by the floor count), its resolved
/// [`ElevatorSigs`], and the [`SuiteTemplate`] holding every Chapter 4
/// goal/subgoal formula compiled against that table.
///
/// A seed or fault sweep builds one family and derives each cell via
/// [`ElevatorFamily::substrate`], sharing one namespace and one compiled
/// suite across all cells. Standalone [`ElevatorSubstrate::new`] still
/// self-compiles — the reference path the template-backed sweep is
/// tested against.
#[derive(Debug, Clone)]
pub struct ElevatorFamily {
    params: ElevatorParams,
    table: Arc<SignalTable>,
    sigs: ElevatorSigs,
    template: Arc<SuiteTemplate>,
}

impl ElevatorFamily {
    /// Builds the family for the given parameters: constructs the signal
    /// table and compiles the monitor suite once.
    ///
    /// # Panics
    ///
    /// Panics if a goal formula fails to compile — the goal tables are
    /// static, so this is a programming error caught by any test.
    pub fn new(params: ElevatorParams) -> Self {
        let (table, sigs) = model::elevator_table(&params);
        let template = Arc::new(
            goals::build_suite(&table, &params)
                .expect("elevator goal tables compile against the elevator signal table")
                .template(),
        );
        ElevatorFamily {
            params,
            table,
            sigs,
            template,
        }
    }

    /// The family's parameters.
    pub fn params(&self) -> &ElevatorParams {
        &self.params
    }

    /// The family's shared signal namespace.
    pub fn table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    /// The family's resolved signal ids.
    pub fn sigs(&self) -> &ElevatorSigs {
        &self.sigs
    }

    /// The compile-once goal/subgoal suite template.
    pub fn template(&self) -> &Arc<SuiteTemplate> {
        &self.template
    }

    /// Derives one cell's substrate: shares the family's table, signal
    /// ids, parameters, and suite template, with the same defaults as
    /// [`ElevatorSubstrate::new`] (two simulated minutes, car
    /// position/door/weight series tracked).
    pub fn substrate(&self, faults: ElevatorFaults, seed: u64) -> ElevatorSubstrate {
        ElevatorSubstrate {
            params: self.params,
            faults,
            seed,
            ticks: DEFAULT_TICKS,
            label: None,
            table: self.table.clone(),
            sigs: self.sigs.clone(),
            tracked: default_tracked(&self.sigs),
            template: Some(Arc::clone(&self.template)),
        }
    }
}

/// The default schedule: two simulated minutes at the 10 ms tick.
const DEFAULT_TICKS: u64 = 12_000;

/// The default figure series: car position, door position, load.
fn default_tracked(sigs: &ElevatorSigs) -> Vec<SignalId> {
    vec![sigs.position, sigs.door_position, sigs.elevator_weight]
}

impl Default for ElevatorFamily {
    fn default() -> Self {
        Self::new(ElevatorParams::default())
    }
}

/// One monitored elevator run: the Chapter 4 substrate under randomized
/// passenger traffic (driven by `seed`) and an [`ElevatorFaults`]
/// configuration.
///
/// The substrate builds its [`SignalTable`] once at construction (the
/// floor count sizes the call/button signal groups); every simulator,
/// monitor suite, and sweep cell derived from it shares that table.
///
/// The elevator's monitors read the plant blackboard directly (its
/// derived signals are produced by the sensor models inside the
/// simulation), so the default copying [`Substrate::observe`] applies,
/// and there is no terminal event — runs always complete their schedule.
///
/// # Example
///
/// ```
/// use esafe_elevator::faults::ElevatorFaults;
/// use esafe_elevator::substrate::ElevatorSubstrate;
/// use esafe_harness::Experiment;
///
/// let substrate = ElevatorSubstrate::new(ElevatorFaults::none(), 42)
///     .with_ticks(3000);
/// let report = Experiment::new(&substrate).run().unwrap();
/// assert!(!report.correlation.any_violations());
/// ```
#[derive(Debug, Clone)]
pub struct ElevatorSubstrate {
    /// Physical and control constants.
    pub params: ElevatorParams,
    /// The injected fault configuration.
    pub faults: ElevatorFaults,
    /// Seed for the deterministic passenger traffic.
    pub seed: u64,
    /// Scheduled run length in ticks of the substrate's own period (so
    /// the schedule stays `ticks` long no matter when `with_params`
    /// changes `dt_millis`).
    pub ticks: u64,
    /// Label override; defaults to `seed-<seed>` when `None`.
    pub label: Option<String>,
    table: Arc<SignalTable>,
    sigs: ElevatorSigs,
    tracked: Vec<SignalId>,
    /// The family's compile-once suite template, when this substrate was
    /// derived from an [`ElevatorFamily`]; `None` self-compiles per run.
    template: Option<Arc<SuiteTemplate>>,
}

impl ElevatorSubstrate {
    /// Creates a substrate with default parameters, two simulated minutes
    /// of traffic (12 000 ticks of 10 ms), and the car position/door
    /// series tracked. The signal table is constructed here, once.
    pub fn new(faults: ElevatorFaults, seed: u64) -> Self {
        let params = ElevatorParams::default();
        let (table, sigs) = model::elevator_table(&params);
        let tracked = default_tracked(&sigs);
        ElevatorSubstrate {
            params,
            faults,
            seed,
            ticks: DEFAULT_TICKS,
            label: None,
            table,
            sigs,
            tracked,
            template: None,
        }
    }

    /// The substrate's resolved signal ids.
    pub fn sigs(&self) -> &ElevatorSigs {
        &self.sigs
    }

    /// Overrides the report label (sweep cells over fault configurations
    /// at a fixed seed need distinct labels).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Replaces the elevator parameters, rebuilding the signal table (the
    /// floor count shapes the namespace). The configured tracked series
    /// carry over by name; a tracked per-floor signal that no longer
    /// exists (fewer floors) is dropped, and any family suite template
    /// (compiled against the old table) is dropped with it.
    pub fn with_params(mut self, params: ElevatorParams) -> Self {
        self.params = params;
        let (table, sigs) = model::elevator_table(&params);
        self.tracked = self
            .tracked
            .iter()
            .filter_map(|&id| table.id(self.table.name(id)))
            .collect();
        self.table = table;
        self.sigs = sigs;
        self.template = None;
        self
    }

    /// Sets the schedule as a tick count.
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// Sets the signals to record each tick, by name.
    ///
    /// # Panics
    ///
    /// Panics on a name outside the elevator signal table.
    pub fn with_tracked(mut self, tracked: impl IntoIterator<Item = impl AsRef<str>>) -> Self {
        self.tracked = self.table.resolve_all(tracked);
        self
    }
}

impl Substrate for ElevatorSubstrate {
    fn name(&self) -> &str {
        "elevator"
    }

    fn label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| format!("seed-{}", self.seed))
    }

    fn duration_ms(&self) -> u64 {
        self.ticks * self.params.dt_millis
    }

    fn signal_table(&self) -> &Arc<SignalTable> {
        &self.table
    }

    fn build_simulator(&self) -> Simulator {
        build_elevator(self.params, self.faults, self.seed, &self.table, &self.sigs)
    }

    fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
        goals::build_suite(&self.table, &self.params)
    }

    /// Batches the whole group when every member shares the first cell's
    /// parameters — true for family-derived sweep cells, which differ
    /// only in faults and seed.
    fn build_simulator_batch(group: &[&Self]) -> Option<SimulatorBatch> {
        let first = group.first()?;
        if !group.iter().all(|s| s.params == first.params) {
            return None;
        }
        let configs: Vec<ElevatorLaneConfig> = group
            .iter()
            .map(|s| ElevatorLaneConfig {
                faults: s.faults,
                seed: s.seed,
            })
            .collect();
        Some(build_elevator_batch(
            first.params,
            &configs,
            &first.table,
            &first.sigs,
        ))
    }

    fn suite_template(&self) -> Option<&Arc<SuiteTemplate>> {
        self.template.as_ref()
    }

    /// The elevator's monitors read plant signals directly (the scalar
    /// observe is an identity copy), so batched observation is a no-op:
    /// the slab lane already *is* the observed frame.
    fn observe_lane(
        &self,
        _slab: &mut FrameBatch,
        _lane: usize,
        _raw: &mut Frame,
        _observed: &mut Frame,
    ) {
    }

    /// The elevator has no terminal events; skip the default's lane copy.
    fn terminal_event_lane(
        &self,
        _slab: &FrameBatch,
        _lane: usize,
        _scratch: &mut Frame,
    ) -> Option<&'static str> {
        None
    }

    fn tracked_signals(&self) -> &[SignalId] {
        &self.tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_harness::Experiment;

    #[test]
    fn schedule_respects_the_ten_ms_tick() {
        let substrate = ElevatorSubstrate::new(ElevatorFaults::none(), 1).with_ticks(500);
        let report = Experiment::new(&substrate).run().unwrap();
        assert_eq!(report.dt_millis, 10);
        assert_eq!(report.scheduled_ticks, 500);
        assert_eq!(report.ticks, 500);
        assert!((report.end_time_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn label_defaults_to_seed_and_can_be_overridden() {
        let default = ElevatorSubstrate::new(ElevatorFaults::none(), 42);
        assert_eq!(Substrate::label(&default), "seed-42");
        let named = default.with_label("ebrake-dead");
        assert_eq!(Substrate::label(&named), "ebrake-dead");
    }

    #[test]
    fn schedule_is_independent_of_builder_order() {
        let params = ElevatorParams {
            dt_millis: 20,
            ..ElevatorParams::default()
        };
        let ticks_first = ElevatorSubstrate::new(ElevatorFaults::none(), 1)
            .with_ticks(1000)
            .with_params(params);
        let params_first = ElevatorSubstrate::new(ElevatorFaults::none(), 1)
            .with_params(params)
            .with_ticks(1000);
        assert_eq!(Substrate::duration_ms(&ticks_first), 20_000);
        assert_eq!(
            Substrate::duration_ms(&ticks_first),
            Substrate::duration_ms(&params_first)
        );
    }

    #[test]
    fn with_params_preserves_configured_tracked_signals() {
        let params = ElevatorParams {
            dt_millis: 20,
            ..ElevatorParams::default()
        };
        let substrate = ElevatorSubstrate::new(ElevatorFaults::none(), 1)
            .with_tracked([crate::model::DOOR_CLOSED])
            .with_params(params);
        assert_eq!(substrate.tracked.len(), 1);
        assert_eq!(
            substrate.signal_table().name(substrate.tracked[0]),
            crate::model::DOOR_CLOSED
        );
    }

    #[test]
    fn family_substrates_match_standalone_substrates() {
        let family = ElevatorFamily::default();
        let faults = crate::faults::ElevatorFaults {
            drive_ignores_door: true,
            ..crate::faults::ElevatorFaults::none()
        };
        let standalone = ElevatorSubstrate::new(faults, 7).with_ticks(3000);
        let derived = family.substrate(faults, 7).with_ticks(3000);
        assert!(derived.suite_template().is_some());
        let a = Experiment::new(&standalone).run().unwrap();
        let b = Experiment::new(&derived).run().unwrap();
        assert_eq!(a, b, "template-backed run must match self-compiled run");
    }

    #[test]
    fn with_params_drops_the_family_template() {
        let family = ElevatorFamily::default();
        let params = crate::model::ElevatorParams {
            dt_millis: 20,
            ..crate::model::ElevatorParams::default()
        };
        let tweaked = family
            .substrate(crate::faults::ElevatorFaults::none(), 1)
            .with_params(params);
        assert!(
            tweaked.suite_template().is_none(),
            "the old table's compiled goals cannot monitor the new table"
        );
    }

    #[test]
    fn tracked_series_capture_the_car() {
        let substrate = ElevatorSubstrate::new(ElevatorFaults::none(), 7).with_ticks(2000);
        let report = Experiment::new(&substrate).run().unwrap();
        let positions = report.series.series(crate::model::POSITION).unwrap();
        assert_eq!(positions.len(), 2000);
    }
}
