//! The elevator's [`Substrate`] implementation: one seed × fault
//! configuration, runnable under the generic experiment harness.

use crate::faults::ElevatorFaults;
use crate::model::{self, ElevatorParams};
use crate::{build_elevator, goals};
use esafe_harness::Substrate;
use esafe_logic::EvalError;
use esafe_monitor::MonitorSuite;
use esafe_sim::Simulator;

/// One monitored elevator run: the Chapter 4 substrate under randomized
/// passenger traffic (driven by `seed`) and an [`ElevatorFaults`]
/// configuration.
///
/// The elevator's monitors read the plant blackboard directly (its
/// derived signals are produced by the sensor models inside the
/// simulation), so the default identity [`Substrate::observe`] applies,
/// and there is no terminal event — runs always complete their schedule.
///
/// # Example
///
/// ```
/// use esafe_elevator::faults::ElevatorFaults;
/// use esafe_elevator::substrate::ElevatorSubstrate;
/// use esafe_harness::Experiment;
///
/// let substrate = ElevatorSubstrate::new(ElevatorFaults::none(), 42)
///     .with_ticks(3000);
/// let report = Experiment::new(&substrate).run().unwrap();
/// assert!(!report.correlation.any_violations());
/// ```
#[derive(Debug, Clone)]
pub struct ElevatorSubstrate {
    /// Physical and control constants.
    pub params: ElevatorParams,
    /// The injected fault configuration.
    pub faults: ElevatorFaults,
    /// Seed for the deterministic passenger traffic.
    pub seed: u64,
    /// Scheduled run length in ticks of the substrate's own period (so
    /// the schedule stays `ticks` long no matter when `with_params`
    /// changes `dt_millis`).
    pub ticks: u64,
    /// Signals recorded into the report's series log.
    pub tracked: Vec<String>,
    /// Label override; defaults to `seed-<seed>` when `None`.
    pub label: Option<String>,
}

impl ElevatorSubstrate {
    /// Creates a substrate with default parameters, two simulated minutes
    /// of traffic (12 000 ticks of 10 ms), and the car position/door
    /// series tracked.
    pub fn new(faults: ElevatorFaults, seed: u64) -> Self {
        let params = ElevatorParams::default();
        ElevatorSubstrate {
            params,
            faults,
            seed,
            ticks: 12_000,
            tracked: vec![
                model::POSITION.to_owned(),
                model::DOOR_POSITION.to_owned(),
                model::ELEVATOR_WEIGHT.to_owned(),
            ],
            label: None,
        }
    }

    /// Overrides the report label (sweep cells over fault configurations
    /// at a fixed seed need distinct labels).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Replaces the elevator parameters.
    pub fn with_params(mut self, params: ElevatorParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the schedule as a tick count.
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// Sets the signals to record each tick.
    pub fn with_tracked(mut self, tracked: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.tracked = tracked.into_iter().map(Into::into).collect();
        self
    }
}

impl Substrate for ElevatorSubstrate {
    fn name(&self) -> &str {
        "elevator"
    }

    fn label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| format!("seed-{}", self.seed))
    }

    fn duration_ms(&self) -> u64 {
        self.ticks * self.params.dt_millis
    }

    fn build_simulator(&self) -> Simulator {
        build_elevator(self.params, self.faults, self.seed)
    }

    fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
        goals::build_suite(&self.params)
    }

    fn tracked_signals(&self) -> &[String] {
        &self.tracked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_harness::Experiment;

    #[test]
    fn schedule_respects_the_ten_ms_tick() {
        let substrate = ElevatorSubstrate::new(ElevatorFaults::none(), 1).with_ticks(500);
        let report = Experiment::new(&substrate).run().unwrap();
        assert_eq!(report.dt_millis, 10);
        assert_eq!(report.scheduled_ticks, 500);
        assert_eq!(report.ticks, 500);
        assert!((report.end_time_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn label_defaults_to_seed_and_can_be_overridden() {
        let default = ElevatorSubstrate::new(ElevatorFaults::none(), 42);
        assert_eq!(Substrate::label(&default), "seed-42");
        let named = default.with_label("ebrake-dead");
        assert_eq!(Substrate::label(&named), "ebrake-dead");
    }

    #[test]
    fn schedule_is_independent_of_builder_order() {
        let params = ElevatorParams {
            dt_millis: 20,
            ..ElevatorParams::default()
        };
        let ticks_first = ElevatorSubstrate::new(ElevatorFaults::none(), 1)
            .with_ticks(1000)
            .with_params(params);
        let params_first = ElevatorSubstrate::new(ElevatorFaults::none(), 1)
            .with_params(params)
            .with_ticks(1000);
        assert_eq!(Substrate::duration_ms(&ticks_first), 20_000);
        assert_eq!(
            Substrate::duration_ms(&ticks_first),
            Substrate::duration_ms(&params_first)
        );
    }

    #[test]
    fn tracked_series_capture_the_car() {
        let substrate = ElevatorSubstrate::new(ElevatorFaults::none(), 7).with_ticks(2000);
        let report = Experiment::new(&substrate).run().unwrap();
        let positions = report.series.series(crate::model::POSITION).unwrap();
        assert_eq!(positions.len(), 2000);
    }
}
