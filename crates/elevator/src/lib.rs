//! The distributed elevator control substrate of the thesis's Chapter 4 —
//! the running example for Indirect Control Path Analysis.
//!
//! The architecture follows Figure 4.5: `DoorController` and
//! `DriveController` directly control the door-motor and drive actuators;
//! `DispatchController` schedules destinations from latched hall/car
//! calls; `Passenger` agents press buttons, block doors, and load the
//! car; sensors produce `door_closed`, `elevator_speed`,
//! `elevator_weight`, and `door_blocked`.
//!
//! The safety goals are the chapter's worked examples:
//!
//! * `Maintain[DoorClosedOrElevatorStopped]` (Fig. 4.8), decomposed by
//!   *shared responsibility* into the Table 4.4 subgoals
//!   `Achieve[CloseDoorWhenElevatorMovingOrMoved]` (DoorController) and
//!   `Achieve[StopElevatorWhenDoorOpenOrOpened]` (DriveController);
//! * `Maintain[DriveStoppedWhenOverweight]` (Fig. 4.6);
//! * `Maintain[ElevatorBelowHoistwayUpperLimit]` (Fig. 4.9) with
//!   *redundant responsibility*: `Achieve[StopBeforeHoistwayUpperLimit]`
//!   (primary, DriveController) and
//!   `Achieve[EmergencyStopBeforeHoistwayUpperLimit]` (secondary,
//!   EmergencyBrake) — Figs. 4.10/4.11;
//! * the door-reversal goal `●DoorBlocked ⇒ DoorMotorCommand = OPEN`
//!   (eq. 4.7).
//!
//! [`faults::ElevatorFaults`] injects the failure modes the monitors are
//! supposed to catch; a healthy run over randomized passenger traffic
//! keeps every goal clean.
//!
//! # Example
//!
//! ```
//! use esafe_elevator::{build_elevator, faults::ElevatorFaults, goals};
//! use esafe_elevator::model::ElevatorParams;
//!
//! let params = ElevatorParams::default();
//! let mut suite = goals::build_suite(&params).unwrap();
//! let mut sim = build_elevator(params, ElevatorFaults::none(), 42);
//! for _ in 0..3000 {
//!     sim.step();
//!     suite.observe(sim.state()).unwrap();
//! }
//! suite.finish();
//! assert!(!suite.correlate(0).any_violations());
//! ```

pub mod controllers;
pub mod faults;
pub mod goals;
pub mod icpa;
pub mod model;
pub mod passengers;
pub mod plant;

use esafe_sim::Simulator;
pub use model::ElevatorParams;

/// Assembles the full elevator simulation: passengers, button latches,
/// dispatcher, door/drive controllers, emergency brake, and the plant.
/// `seed` drives the deterministic passenger traffic.
pub fn build_elevator(
    params: ElevatorParams,
    faults: faults::ElevatorFaults,
    seed: u64,
) -> Simulator {
    let mut sim = Simulator::new(params.dt_millis);
    sim.add(passengers::PassengerTraffic::new(params, seed));
    sim.add(controllers::ButtonLatches::new(params));
    sim.add(controllers::DispatchController::new(params, faults));
    sim.add(controllers::DoorController::new(params, faults));
    sim.add(controllers::DriveController::new(params, faults));
    sim.add(controllers::EmergencyBrake::new(params, faults));
    sim.add(plant::ElevatorPlant::new(params, faults));
    sim.init(model::initial_state(&params));
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::Value;

    #[test]
    fn healthy_elevator_serves_calls_without_violations() {
        let params = ElevatorParams::default();
        let mut suite = goals::build_suite(&params).unwrap();
        let mut sim = build_elevator(params, faults::ElevatorFaults::none(), 7);
        let mut served_floors = std::collections::BTreeSet::new();
        for _ in 0..12_000 {
            sim.step();
            suite.observe(sim.state()).unwrap();
            if sim.state().get(model::DOOR_CLOSED) == Some(&Value::Bool(false)) {
                if let Some(f) = sim.state().get(model::FLOOR).and_then(|v| v.as_real()) {
                    served_floors.insert(f as i64);
                }
            }
        }
        suite.finish();
        let report = suite.correlate(0);
        assert!(
            !report.any_violations(),
            "healthy run must be clean:\n{report}"
        );
        assert!(
            served_floors.len() >= 2,
            "traffic must move the car: served {served_floors:?}"
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let params = ElevatorParams::default();
        let mut a = build_elevator(params, faults::ElevatorFaults::none(), 11);
        let mut b = build_elevator(params, faults::ElevatorFaults::none(), 11);
        for _ in 0..2000 {
            a.step();
            b.step();
            assert_eq!(a.state(), b.state());
        }
        let mut c = build_elevator(params, faults::ElevatorFaults::none(), 12);
        let mut diverged = false;
        for _ in 0..2000 {
            c.step();
            a.step();
            if a.state() != c.state() {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "different seeds must diverge");
    }
}
