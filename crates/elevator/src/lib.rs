//! The distributed elevator control substrate of the thesis's Chapter 4 —
//! the running example for Indirect Control Path Analysis.
//!
//! The architecture follows Figure 4.5: `DoorController` and
//! `DriveController` directly control the door-motor and drive actuators;
//! `DispatchController` schedules destinations from latched hall/car
//! calls; `Passenger` agents press buttons, block doors, and load the
//! car; sensors produce `door_closed`, `elevator_speed`,
//! `elevator_weight`, and `door_blocked`.
//!
//! The safety goals are the chapter's worked examples:
//!
//! * `Maintain[DoorClosedOrElevatorStopped]` (Fig. 4.8), decomposed by
//!   *shared responsibility* into the Table 4.4 subgoals
//!   `Achieve[CloseDoorWhenElevatorMovingOrMoved]` (DoorController) and
//!   `Achieve[StopElevatorWhenDoorOpenOrOpened]` (DriveController);
//! * `Maintain[DriveStoppedWhenOverweight]` (Fig. 4.6);
//! * `Maintain[ElevatorBelowHoistwayUpperLimit]` (Fig. 4.9) with
//!   *redundant responsibility*: `Achieve[StopBeforeHoistwayUpperLimit]`
//!   (primary, DriveController) and
//!   `Achieve[EmergencyStopBeforeHoistwayUpperLimit]` (secondary,
//!   EmergencyBrake) — Figs. 4.10/4.11;
//! * the door-reversal goal `●DoorBlocked ⇒ DoorMotorCommand = OPEN`
//!   (eq. 4.7).
//!
//! [`faults::ElevatorFaults`] injects the failure modes the monitors are
//! supposed to catch; a healthy run over randomized passenger traffic
//! keeps every goal clean.
//!
//! # Example
//!
//! ```
//! use esafe_elevator::faults::ElevatorFaults;
//! use esafe_elevator::substrate::ElevatorSubstrate;
//! use esafe_harness::Experiment;
//!
//! let substrate = ElevatorSubstrate::new(ElevatorFaults::none(), 42)
//!     .with_ticks(3000);
//! let report = Experiment::new(&substrate).run().unwrap();
//! assert!(!report.correlation.any_violations());
//! ```

pub mod controllers;
pub mod faults;
pub mod goals;
pub mod icpa;
pub mod model;
pub mod passengers;
pub mod plant;
pub mod substrate;

use esafe_logic::SignalTable;
use esafe_sim::{LaneVec, Simulator, SimulatorBatch};
use std::sync::Arc;

pub use model::{ElevatorParams, ElevatorSigs};
pub use substrate::{ElevatorFamily, ElevatorSubstrate};

/// Assembles the full elevator simulation over the shared signal table:
/// passengers, button latches, dispatcher, door/drive controllers,
/// emergency brake, and the plant. `seed` drives the deterministic
/// passenger traffic. Every subsystem holds a clone of the resolved
/// [`ElevatorSigs`], so per-tick reads and writes are dense slot
/// accesses.
pub fn build_elevator(
    params: ElevatorParams,
    faults: faults::ElevatorFaults,
    seed: u64,
    table: &Arc<SignalTable>,
    sigs: &ElevatorSigs,
) -> Simulator {
    let mut sim = Simulator::new(params.dt_millis, table);
    sim.add(passengers::PassengerTraffic::new(
        params,
        seed,
        sigs.clone(),
    ));
    sim.add(controllers::ButtonLatches::new(params, sigs.clone()));
    sim.add(controllers::DispatchController::new(
        params,
        faults,
        sigs.clone(),
    ));
    sim.add(controllers::DoorController::new(
        params,
        faults,
        sigs.clone(),
    ));
    sim.add(controllers::DriveController::new(
        params,
        faults,
        sigs.clone(),
    ));
    sim.add(controllers::EmergencyBrake::new(
        params,
        faults,
        sigs.clone(),
    ));
    sim.add(plant::ElevatorPlant::new(params, faults, sigs.clone()));
    sim.init(model::initial_frame(table, sigs));
    sim
}

/// One lane's configuration for [`build_elevator_batch`]: the per-cell
/// inputs [`build_elevator`] takes, minus the shared
/// parameters/table/sigs (a batch shares one signal namespace, so every
/// lane runs the same [`ElevatorParams`]).
#[derive(Debug, Clone, Copy)]
pub struct ElevatorLaneConfig {
    /// The injected fault configuration.
    pub faults: faults::ElevatorFaults,
    /// Seed for the deterministic passenger traffic.
    pub seed: u64,
}

/// Builds a batched elevator simulator stepping every lane of `lanes`
/// together: the same seven subsystems in the same order as
/// [`build_elevator`], each as a [`LaneVec`] over per-lane instances, and
/// each lane's initial blackboard seeded exactly as `build_elevator`
/// seeds its scalar counterpart. Lane `l` is bit-identical to
/// `build_elevator(params, lanes[l]…)` because every subsystem's
/// `step_lane` body is the one `build_elevator`'s boxed subsystems
/// monomorphize (pinned by this module's tests).
///
/// # Panics
///
/// Panics if `lanes` is empty.
pub fn build_elevator_batch(
    params: ElevatorParams,
    lanes: &[ElevatorLaneConfig],
    table: &Arc<SignalTable>,
    sigs: &ElevatorSigs,
) -> SimulatorBatch {
    assert!(
        !lanes.is_empty(),
        "an elevator batch needs at least one lane"
    );
    let n = lanes.len();
    let mut sim = SimulatorBatch::new(params.dt_millis, table, n);
    sim.add(LaneVec::from_fn(n, |l| {
        passengers::PassengerTraffic::new(params, lanes[l].seed, sigs.clone())
    }));
    sim.add(LaneVec::from_fn(n, |_| {
        controllers::ButtonLatches::new(params, sigs.clone())
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        controllers::DispatchController::new(params, lanes[l].faults, sigs.clone())
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        controllers::DoorController::new(params, lanes[l].faults, sigs.clone())
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        controllers::DriveController::new(params, lanes[l].faults, sigs.clone())
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        controllers::EmergencyBrake::new(params, lanes[l].faults, sigs.clone())
    }));
    sim.add(LaneVec::from_fn(n, |l| {
        plant::ElevatorPlant::new(params, lanes[l].faults, sigs.clone())
    }));
    for l in 0..n {
        sim.init_lane_with(l, |frame| model::seed_initial(frame, sigs));
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_harness::Experiment;
    use esafe_logic::Value;

    #[test]
    fn healthy_elevator_serves_calls_without_violations() {
        let substrate =
            ElevatorSubstrate::new(faults::ElevatorFaults::none(), 7).with_ticks(12_000);
        let mut served_floors = std::collections::BTreeSet::new();
        let report = Experiment::new(&substrate)
            .run_with(|_tick, raw, _observed| {
                if raw.get_named(model::DOOR_CLOSED) == Some(Value::Bool(false)) {
                    if let Some(f) = raw.get_named(model::FLOOR).and_then(|v| v.as_real()) {
                        served_floors.insert(f as i64);
                    }
                }
            })
            .unwrap();
        assert!(
            !report.correlation.any_violations(),
            "healthy run must be clean:\n{}",
            report.correlation
        );
        assert!(
            served_floors.len() >= 2,
            "traffic must move the car: served {served_floors:?}"
        );
    }

    #[test]
    fn batched_elevator_matches_scalar_lanes_bit_for_bit() {
        let params = ElevatorParams::default();
        let (table, sigs) = model::elevator_table(&params);
        let configs = vec![
            ElevatorLaneConfig {
                faults: faults::ElevatorFaults::none(),
                seed: 7,
            },
            ElevatorLaneConfig {
                faults: faults::ElevatorFaults {
                    drive_ignores_door: true,
                    ..faults::ElevatorFaults::none()
                },
                seed: 11,
            },
            ElevatorLaneConfig {
                faults: faults::ElevatorFaults {
                    door_sensor_stuck_closed: true,
                    ..faults::ElevatorFaults::none()
                },
                seed: 7,
            },
        ];
        let mut batch = build_elevator_batch(params, &configs, &table, &sigs);
        let mut scalars: Vec<Simulator> = configs
            .iter()
            .map(|c| build_elevator(params, c.faults, c.seed, &table, &sigs))
            .collect();
        let mut frame = table.frame();
        for tick in 0..2000u64 {
            batch.step();
            for (l, sim) in scalars.iter_mut().enumerate() {
                sim.step();
                batch.state().read_lane_into(l, &mut frame);
                assert_eq!(&frame, sim.state(), "lane {l} diverged at tick {tick}");
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        // Record the *complete* blackboard every tick, not just the
        // report: determinism must hold for every signal, including ones
        // no monitor or tracked series reads.
        let run = |seed: u64| {
            let substrate =
                ElevatorSubstrate::new(faults::ElevatorFaults::none(), seed).with_ticks(2000);
            let mut states = Vec::with_capacity(2000);
            let report = Experiment::new(&substrate)
                .run_with(|_tick, raw, _observed| states.push(raw.clone()))
                .unwrap();
            (report, states)
        };
        let (report_a, states_a) = run(11);
        let (report_b, states_b) = run(11);
        assert_eq!(states_a, states_b, "same seed must replay every state");
        assert_eq!(report_a, report_b, "and the identical report");
        let (_, states_c) = run(12);
        assert_ne!(states_a, states_c, "different seeds must diverge");
    }
}
