//! Striped batched sweeps: whole groups of cells simulating *and*
//! monitoring together through lane-major slabs.
//!
//! The scalar sweep runs one cell at a time: each run steps its own
//! simulator and walks the fused monitor DAG once per tick for *its
//! own* frame. The batched sweep instead groups cells that share a
//! compile-once [`SuiteTemplate`](esafe_monitor::SuiteTemplate) (and
//! schedule) into **stripes** of up to `width` cells, advances the
//! whole stripe through one [`SimulatorBatch`] — every subsystem
//! stepping all lanes of a lane-major
//! [`FrameBatch`](esafe_logic::FrameBatch) state slab before the next
//! subsystem runs — and feeds the slab directly to one
//! [`MonitorSuiteBatch`] pass per tick. Monitoring, series sampling,
//! and terminal-event checks all read the slab **in place**: the
//! per-lane `Frame` copy across the sim→observe boundary is gone, and
//! both engines evaluate each node/subsystem across every run in the
//! stripe before moving on, amortizing decode and turning the inner
//! loops into straight-line sweeps over contiguous lanes.
//!
//! Batching is observationally invisible — reports and aggregates are
//! **bit-identical** to the scalar paths ([`Sweep::run`] /
//! [`Sweep::run_aggregate`]), which the workspace's golden sweeps and
//! property tests pin. The shapes that don't fit a stripe degrade
//! gracefully to the scalar fused path, never to different results:
//!
//! * cells without a suite template (self-compiling substrates) run
//!   scalar;
//! * ragged tails — the last `< 2` cells of a group — run scalar;
//! * a run hitting its terminal event mid-stripe is *retired*: its lane
//!   freezes (temporal history, violation trackers, step counter) while
//!   the surviving lanes keep ticking, exactly as if each had run alone;
//! * a monitoring error inside a stripe reruns the whole stripe on the
//!   scalar path, so per-cell errors surface identically to
//!   [`Sweep::run`] (earliest-cell-first);
//! * with a [`Quarantine`] installed via
//!   [`Sweep::with_quarantine`], a panic anywhere in a stripe reruns
//!   every lane on the guarded scalar path: the panicking cell is
//!   quarantined as a typed [`CellFailure`](crate::sweep::CellFailure)
//!   while its stripe-mates reproduce their healthy reports
//!   bit-identically — fault containment at the cell boundary.

use crate::context::{RunContext, RunTiming, SuiteProvenance};
use crate::experiment::{Experiment, ExperimentConfig, ExperimentError, RunReport};
use crate::journal::{CellDelta, JournalRecord, SweepJournal};
use crate::lanes::LaneAllocator;
use crate::substrate::Substrate;
use crate::sweep::{
    cell_seed, GuardedOutcome, Partial, Quarantine, Sweep, SweepAggregate, SweepReport, SweepStats,
};
use esafe_logic::SignalId;
use esafe_monitor::MonitorSuiteBatch;
use esafe_sim::{sample_point, SeriesLog, Simulator, SimulatorBatch};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default stripe width for batched sweeps: wide enough to amortize the
/// per-node decode across many lanes, narrow enough that a grid still
/// splits into more stripes than cores. (The mega-grid reproduction
/// calibrates its width empirically; see `esafe-bench`.)
pub const DEFAULT_BATCH_WIDTH: usize = 8;

/// One schedulable piece of a batched sweep: a lock-step stripe of
/// same-template cell indices, or a single cell on the scalar path.
#[derive(Debug)]
enum Unit {
    Stripe(Vec<usize>),
    Scalar(usize),
}

/// Partitions cells into stripes of up to `width` same-group cells plus
/// scalar singles. Cells group when they share the same suite template,
/// signal table, and scheduled duration (`Arc` identity — the family
/// pattern); template-less cells and one-cell tails run scalar. `None`
/// cells are planned into **no** unit — they are cells the caller is
/// skipping (already checkpointed) or failed to build (quarantined
/// separately by the guarded planner).
fn plan_units<S: Substrate>(subs: &[Option<S>], width: usize) -> Vec<Unit> {
    let width = width.max(1);
    let mut units = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut by_key: HashMap<(usize, usize, u64), usize> = HashMap::new();
    for (i, sub) in subs.iter().enumerate() {
        let Some(sub) = sub else { continue };
        match sub.suite_template() {
            None => units.push(Unit::Scalar(i)),
            Some(template) => {
                let key = (
                    Arc::as_ptr(sub.signal_table()) as usize,
                    Arc::as_ptr(template) as usize,
                    sub.duration_ms(),
                );
                let g = *by_key.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[g].push(i);
            }
        }
    }
    for group in groups {
        for chunk in group.chunks(width) {
            if chunk.len() == 1 {
                units.push(Unit::Scalar(chunk[0]));
            } else {
                units.push(Unit::Stripe(chunk.to_vec()));
            }
        }
    }
    units
}

/// The per-lane run state a stripe carries for one cell: everything the
/// scalar experiment loop keeps per run, minus the monitor suite (which
/// lives lane-indexed in the shared [`MonitorSuiteBatch`]) and the
/// simulator (which lives lane-indexed in the stripe's
/// [`SimulatorBatch`]).
struct Lane<'s> {
    /// The substrate's tracked signal ids, resolved once at stripe
    /// setup rather than re-fetched per tick.
    tracked: &'s [SignalId],
    /// Per-tracked-signal point buffers (the indexed fast path), used
    /// when no signal is tracked twice.
    buffers: Vec<Vec<(f64, f64)>>,
    buffered: bool,
    series: SeriesLog,
    terminal_tick: Option<u64>,
    terminal_event: Option<String>,
    terminated_early: bool,
}

type CellOutcome = (usize, Result<RunReport, ExperimentError>, RunTiming);

/// A planned cell's substrate. Planning only emits units over built
/// (`Some`) cells, so the lookup cannot fail for a planned index.
fn built<S>(subs: &[Option<S>], i: usize) -> &S {
    subs[i].as_ref().expect("planned cells are built")
}

/// Runs one cell on the scalar experiment loop — the fallback for
/// template-less cells, one-cell tails, and stripes that hit a
/// monitoring error. `budget` is the quarantine's tick budget (always
/// `None` on the unguarded paths), forwarded so fallback runs fail
/// exactly where a guarded scalar run would.
fn run_scalar_cell<S: Substrate>(
    config: ExperimentConfig,
    budget: Option<u64>,
    substrate: &S,
    index: usize,
) -> CellOutcome {
    match Experiment::new(substrate)
        .with_config(config)
        .with_tick_budget(budget)
        .run_in(&mut RunContext::new())
    {
        Ok((report, timing)) => (index, Ok(report), timing),
        Err(e) => (index, Err(e), RunTiming::default()),
    }
}

/// Runs one stripe: one [`SimulatorBatch`] advancing every lane through
/// lane-major state slabs, with monitors, series sampling, and terminal
/// checks all reading the slab **in place** — no per-lane `Frame` copy
/// anywhere in the tick loop (substrates without in-place observe
/// overrides bridge through two stripe-owned scratch frames). Per lane,
/// the loop reproduces the scalar experiment semantics exactly — same
/// tick schedule, same series sampling, same terminal-event grace
/// window, same correlation — so each cell's report is bit-identical to
/// a scalar run of the same substrate.
fn run_stripe<S: Substrate>(
    config: ExperimentConfig,
    budget: Option<u64>,
    subs: &[Option<S>],
    lanes_idx: &[usize],
) -> Vec<CellOutcome> {
    let width = lanes_idx.len();
    let setup_started = Instant::now();
    let template = built(subs, lanes_idx[0])
        .suite_template()
        .expect("planned stripes carry a template");
    let group: Vec<&S> = lanes_idx.iter().map(|&i| built(subs, i)).collect();
    let mut lanes: Vec<Lane<'_>> = group
        .iter()
        .map(|substrate| {
            // Tracked ids are resolved once here, not per tick.
            let tracked = substrate.tracked_signals();
            let buffered = {
                let mut ids: Vec<_> = tracked.to_vec();
                ids.sort_unstable();
                ids.dedup();
                ids.len() == tracked.len()
            };
            Lane {
                tracked,
                buffers: if buffered {
                    tracked.iter().map(|_| Vec::new()).collect()
                } else {
                    Vec::new()
                },
                buffered,
                series: SeriesLog::new(),
                terminal_tick: None,
                terminal_event: None,
                terminated_early: false,
            }
        })
        .collect();
    // A stripe is the static case of the shared lane-occupancy
    // abstraction (see [`LaneAllocator`]): every lane is claimed up
    // front and released as its run retires.
    let mut occupancy = LaneAllocator::new(width);
    for _ in 0..width {
        occupancy.claim();
    }

    let mut sim = match S::build_simulator_batch(&group) {
        Some(sim) => sim,
        None => {
            // No native batched builder: wrap scalar simulators. Their
            // per-lane chains step bit-identically inside the batch.
            let sims: Vec<Simulator> = group.iter().map(|s| s.build_simulator()).collect();
            let dt = sims[0].dt_millis();
            if sims.iter().any(|s| s.dt_millis() != dt) {
                // Mixed tick periods cannot tick in lock-step. Grouping
                // keys on the shared table/template/duration, which in
                // practice fixes dt too — this is a correctness
                // backstop, not a hot path.
                return lanes_idx
                    .iter()
                    .map(|&i| run_scalar_cell(config, budget, built(subs, i), i))
                    .collect();
            }
            SimulatorBatch::from_scalar(sims)
        }
    };
    let dt = sim.dt_millis();

    let mut batch: MonitorSuiteBatch = template.instantiate_batch(width);
    let table = Arc::clone(built(subs, lanes_idx[0]).signal_table());
    // Stripe-owned scratch frames for substrates whose observe /
    // terminal check still runs per lane over a copied frame.
    let mut raw = table.frame();
    let mut observed = table.frame();
    let scheduled_ticks = built(subs, lanes_idx[0]).duration_ms().div_ceil(dt);
    let post_terminal_ticks = config.post_terminal_ms.div_ceil(dt);
    let setup = setup_started.elapsed();

    // Whether the quarantine's tick budget elapsed with lanes still
    // live; those lanes fail exactly where a scalar guarded run would.
    let mut budget_tripped = false;
    let tick_started = Instant::now();
    for tick in 1..=scheduled_ticks {
        if let Some(b) = budget {
            if tick > b {
                budget_tripped = true;
                break;
            }
        }
        sim.step();
        for (l, sub) in group.iter().enumerate().take(width) {
            if occupancy.is_claimed(l) {
                sub.observe_lane(sim.state_mut(), l, &mut raw, &mut observed);
            }
        }
        if batch.observe_slab(sim.state()).is_err() {
            // A monitoring error mid-stripe: rerun every lane on the
            // scalar path so per-cell results (successes *and* the
            // failing cell's error) match `Sweep::run` exactly.
            return lanes_idx
                .iter()
                .map(|&i| run_scalar_cell(config, budget, built(subs, i), i))
                .collect();
        }
        for (l, lane) in lanes.iter_mut().enumerate() {
            if !occupancy.is_claimed(l) {
                continue;
            }
            let t = sim.lane_seconds(l);
            if lane.buffered {
                for (buffer, &id) in lane.buffers.iter_mut().zip(lane.tracked) {
                    if let Some(x) = sample_point(sim.state().get(id, l)) {
                        buffer.push((t, x));
                    }
                }
            } else {
                for &id in lane.tracked {
                    // Same rule as `SeriesLog::sample`, reading the slab.
                    if let Some(x) = sample_point(sim.state().get(id, l)) {
                        lane.series.push(table.name(id), t, x);
                    }
                }
            }
            if lane.terminal_tick.is_none() {
                if let Some(event) = group[l].terminal_event_lane(sim.state(), l, &mut raw) {
                    lane.terminal_tick = Some(tick);
                    lane.terminal_event = Some(event.to_owned());
                }
            }
            if let Some(at) = lane.terminal_tick {
                if tick >= at + post_terminal_ticks {
                    lane.terminated_early = tick < scheduled_ticks;
                    occupancy.release(l);
                    batch.retire_lane(l);
                    sim.retire_lane(l);
                }
            }
        }
        if occupancy.in_use() == 0 {
            break;
        }
    }
    batch.finish();
    let ticking = tick_started.elapsed();

    // Per-lane timing: the stripe's wall-clock split evenly across its
    // lanes, so `SweepStats` totals stay comparable to the scalar paths.
    let lane_timing = RunTiming {
        setup: setup / width as u32,
        ticking: ticking / width as u32,
        suite: SuiteProvenance::Instantiated,
    };
    let window_ticks = config.correlation_window_ms.div_ceil(dt);
    lanes
        .into_iter()
        .enumerate()
        .map(|(l, lane)| {
            let index = lanes_idx[l];
            if budget_tripped && occupancy.is_claimed(l) {
                let budget = budget.expect("budget trips only when armed");
                return (
                    index,
                    Err(ExperimentError::TickBudget { budget }),
                    RunTiming::default(),
                );
            }
            let substrate = built(subs, index);
            let correlation = batch.correlate_lane(l, window_ticks);
            let violations = batch.take_violations_lane(l);
            let mut series = lane.series;
            for (buffer, &id) in lane.buffers.into_iter().zip(lane.tracked) {
                series.append_points(substrate.signal_table().name(id), buffer);
            }
            let report = RunReport {
                substrate: substrate.name().to_owned(),
                label: substrate.label(),
                config,
                dt_millis: dt,
                scheduled_ticks,
                ticks: sim.lane_tick(l),
                end_time_s: sim.lane_seconds(l),
                terminated_early: lane.terminated_early,
                terminal_event: lane.terminal_event,
                violations,
                correlation,
                series,
                trace: None,
            };
            (index, Ok(report), lane_timing)
        })
        .collect()
}

impl<C: Sync> Sweep<C> {
    /// [`Sweep::run`] on the **batched** engine: cells sharing a suite
    /// template are grouped into lock-step stripes of up to `width`
    /// runs, each tick feeding every lane's observed frame to one
    /// [`MonitorSuiteBatch`] pass (see the [module docs](self)).
    /// Reports are bit-identical to the scalar paths, in cell order.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_batched<S, F>(&self, build: F, width: usize) -> Result<SweepReport, ExperimentError>
    where
        S: Substrate + Sync,
        F: Fn(&C, u64) -> S + Sync,
    {
        self.run_batched_timed(build, width)
            .map(|(report, _)| report)
    }

    /// [`Sweep::run_batched`] plus the aggregated [`SweepStats`]
    /// (stripe wall-clock split evenly across its lanes).
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_batched_timed<S, F>(
        &self,
        build: F,
        width: usize,
    ) -> Result<(SweepReport, SweepStats), ExperimentError>
    where
        S: Substrate + Sync,
        F: Fn(&C, u64) -> S + Sync,
    {
        if let Some(q) = self.quarantine {
            let subs = self.build_all_guarded(&build);
            let units = plan_units_with_unbuilt(&subs, width);
            let per_unit: Vec<Vec<(usize, GuardedOutcome)>> = units
                .into_par_iter()
                .map(|unit| self.run_unit_guarded(q, &subs, &unit, &build))
                .collect();
            let mut slots: Vec<Option<GuardedOutcome>> = (0..subs.len()).map(|_| None).collect();
            for (i, outcome) in per_unit.into_iter().flatten() {
                slots[i] = Some(outcome);
            }
            let results: Vec<GuardedOutcome> = slots
                .into_iter()
                .map(|slot| slot.expect("every cell is planned into exactly one unit"))
                .collect();
            return Ok(Self::collect_guarded(results));
        }
        let subs = self.build_all(&build);
        let units = plan_units(&subs, width);
        let per_unit: Vec<Vec<CellOutcome>> = units
            .into_par_iter()
            .map(|unit| run_unit(self.config, &subs, &unit))
            .collect();
        let mut slots: Vec<Option<(Result<RunReport, ExperimentError>, RunTiming)>> =
            (0..subs.len()).map(|_| None).collect();
        for (i, result, timing) in per_unit.into_iter().flatten() {
            slots[i] = Some((result, timing));
        }
        let results: Vec<_> = slots
            .into_iter()
            .map(|slot| slot.expect("every cell is planned into exactly one unit"))
            .collect();
        Self::collect_reports(results)
    }

    /// [`Sweep::run_aggregate`] on the **batched** engine: stripes run
    /// in parallel, and every lane's report folds into a per-worker
    /// partial aggregate the moment its stripe completes — no report
    /// outlives its stripe, so memory is O(workers × width) regardless
    /// of grid size. The aggregate is identical to every other sweep
    /// path (pinned by the workspace's regression tests); this is the
    /// engine behind `repro --grid` and `repro --mega-grid`.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_aggregate_batched<S, F>(
        &self,
        build: F,
        width: usize,
    ) -> Result<(SweepAggregate, SweepStats), ExperimentError>
    where
        S: Substrate + Sync,
        F: Fn(&C, u64) -> S + Sync,
    {
        if let Some(q) = self.quarantine {
            let subs = self.build_all_guarded(&build);
            let units = plan_units_with_unbuilt(&subs, width);
            let partial = units
                .into_par_iter()
                .map_init(
                    || (),
                    |(), unit| self.run_unit_guarded(q, &subs, &unit, &build),
                )
                .fold(Partial::default, |acc: Partial, outcomes| {
                    outcomes
                        .into_iter()
                        .fold(acc, |acc, (_, outcome)| acc.absorbed_guarded(outcome))
                })
                .reduce(Partial::default, Partial::merged);
            return partial.finish();
        }
        let subs = self.build_all(&build);
        let units = plan_units(&subs, width);
        let partial = units
            .into_par_iter()
            // `map_init` only for its `fold` hook — stripes carry no
            // per-worker pooled state (scalar fallbacks build their own
            // `RunContext`).
            .map_init(|| (), |(), unit| run_unit(self.config, &subs, &unit))
            .fold(Partial::default, |acc: Partial, outcomes| {
                outcomes.into_iter().fold(acc, |acc, (i, result, timing)| {
                    acc.absorbed(i, (result, timing))
                })
            })
            .reduce(Partial::default, Partial::merged);
        partial.finish()
    }

    /// [`Sweep::run_aggregate_batched`] with durable progress: every
    /// finished cell (healthy or quarantined) is appended to `journal`
    /// the moment its unit completes, and cells the journal already
    /// marks done are **skipped** — their contributions replay from the
    /// journal's records instead of re-running. Interrupt the process
    /// at any point, reopen the journal ([`SweepJournal::open`] — torn
    /// tails are truncated), and call this again: the final aggregate
    /// is bit-identical to an uninterrupted run, because per-cell seeds
    /// are deterministic ([`cell_seed`]) and every aggregate total is a
    /// commutative sum over per-cell deltas.
    ///
    /// Fault isolation is always on here (the sweep's
    /// [`Quarantine`] if installed, else the default policy): a sweep
    /// durable enough to checkpoint should not abort on one bad cell.
    /// The returned [`SweepStats`] covers only the cells run by *this*
    /// call — resumed cells contribute no timing.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Journal`] if the journal does not
    /// describe this sweep (seed, cell count, or timing policy
    /// mismatch) or on journal I/O failure.
    pub fn run_aggregate_batched_checkpointed<S, F>(
        &self,
        build: F,
        width: usize,
        journal: &mut SweepJournal,
    ) -> Result<(SweepAggregate, SweepStats), ExperimentError>
    where
        S: Substrate + Sync,
        F: Fn(&C, u64) -> S + Sync,
    {
        if journal.base_seed() != self.base_seed
            || journal.cells() != self.cells.len()
            || journal.config() != self.config
        {
            return Err(ExperimentError::Journal(format!(
                "journal describes a different sweep: journal has seed {} / {} cells / {:?}, \
                 this sweep has seed {} / {} cells / {:?}",
                journal.base_seed(),
                journal.cells(),
                journal.config(),
                self.base_seed,
                self.cells.len(),
                self.config,
            )));
        }
        let q = self.quarantine.unwrap_or_default();
        // Completed cells are `None` (skip); incomplete cells build
        // under `catch_unwind` like the guarded path.
        let subs: Vec<Option<S>> = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                if journal.is_completed(i) {
                    None
                } else {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        build(cell, cell_seed(self.base_seed, i))
                    }))
                    .ok()
                }
            })
            .collect();
        let mut units = plan_units(&subs, width);
        for (i, sub) in subs.iter().enumerate() {
            if sub.is_none() && !journal.is_completed(i) {
                units.push(Unit::Scalar(i));
            }
        }
        // Workers funnel records through one mutex; the first append
        // error latches and surfaces after the join (remaining cells
        // still run — they are simply no longer durable).
        let sink = Mutex::new((journal, None::<ExperimentError>));
        let stats = units
            .into_par_iter()
            .map_init(
                || (),
                |(), unit| {
                    let outcomes = self.run_unit_guarded(q, &subs, &unit, &build);
                    let mut stats = SweepStats::default();
                    let mut records = Vec::with_capacity(outcomes.len());
                    for (i, (result, retries)) in outcomes {
                        match result {
                            Ok((report, timing)) => {
                                stats.absorb(timing);
                                records.push(JournalRecord::Completed(CellDelta::from_report(
                                    i, retries, &report,
                                )));
                            }
                            Err(failure) => records.push(JournalRecord::Quarantined(failure)),
                        }
                    }
                    let mut guard = sink.lock().unwrap_or_else(|e| e.into_inner());
                    for record in records {
                        if guard.1.is_some() {
                            break;
                        }
                        if let Err(e) = guard.0.append(record) {
                            guard.1 = Some(e);
                        }
                    }
                    stats
                },
            )
            .fold(SweepStats::default, |mut a, b| {
                a.merge(b);
                a
            })
            .reduce(SweepStats::default, |mut a, b| {
                a.merge(b);
                a
            });
        let (journal, error) = sink.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = error {
            return Err(e);
        }
        journal.sync()?;
        Ok((journal.partial().finish(), stats))
    }

    /// Builds every cell's substrate up front (cells must be inspected
    /// — table, template, duration — before they can be grouped into
    /// stripes). Substrate construction is the cheap, amortized part of
    /// a run; simulators and suites are still built per stripe. Every
    /// slot is `Some` — the `Option` is the planner's shared currency
    /// with the guarded and checkpoint-resume paths, which skip cells.
    pub(crate) fn build_all<S, F>(&self, build: &F) -> Vec<Option<S>>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, cell)| Some(build(cell, cell_seed(self.base_seed, i))))
            .collect()
    }

    /// [`Sweep::build_all`] under `catch_unwind`: a cell whose *build*
    /// panics becomes `None` and is later quarantined through the
    /// guarded scalar ladder (which retries the build per policy).
    fn build_all_guarded<S, F>(&self, build: &F) -> Vec<Option<S>>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    build(cell, cell_seed(self.base_seed, i))
                }))
                .ok()
            })
            .collect()
    }

    /// Executes one planned unit with fault isolation. Healthy stripe
    /// lanes keep their (bit-identical) batched reports; any failing
    /// lane — and, after a panic, the whole stripe — re-runs the full
    /// guarded scalar ladder so provenance and retries match
    /// [`Sweep::run_cell_quarantined`] exactly.
    fn run_unit_guarded<S, F>(
        &self,
        q: Quarantine,
        subs: &[Option<S>],
        unit: &Unit,
        build: &F,
    ) -> Vec<(usize, GuardedOutcome)>
    where
        S: Substrate + Sync,
        F: Fn(&C, u64) -> S + Sync,
    {
        let guarded_scalar = |i: usize| {
            (
                i,
                self.run_cell_quarantined(q, &mut RunContext::new(), i, build),
            )
        };
        match unit {
            Unit::Scalar(i) => vec![guarded_scalar(*i)],
            Unit::Stripe(lanes) => {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_stripe(self.config, q.tick_budget, subs, lanes)
                }));
                match caught {
                    Ok(outcomes) => outcomes
                        .into_iter()
                        .map(|(i, result, timing)| match result {
                            Ok(report) => (i, (Ok((report, timing)), 0)),
                            Err(_) => guarded_scalar(i),
                        })
                        .collect(),
                    // A panic anywhere in the stripe: every lane re-runs
                    // guarded-scalar. The faulty cell is quarantined with
                    // its own panic payload; stripe-mates reproduce their
                    // healthy reports bit-identically.
                    Err(_) => lanes.iter().map(|&i| guarded_scalar(i)).collect(),
                }
            }
        }
    }
}

/// Executes one planned unit.
fn run_unit<S: Substrate>(
    config: ExperimentConfig,
    subs: &[Option<S>],
    unit: &Unit,
) -> Vec<CellOutcome> {
    match unit {
        Unit::Scalar(i) => vec![run_scalar_cell(config, None, built(subs, *i), *i)],
        Unit::Stripe(lanes) => run_stripe(config, None, subs, lanes),
    }
}

/// [`plan_units`] plus explicit scalar units for unbuilt (`None`) cells,
/// so the guarded runner can rebuild and quarantine them with
/// provenance. Only the guarded paths use this — on a checkpoint resume
/// `None` means "already completed, skip", not "rebuild".
fn plan_units_with_unbuilt<S: Substrate>(subs: &[Option<S>], width: usize) -> Vec<Unit> {
    let mut units = plan_units(subs, width);
    for (i, sub) in subs.iter().enumerate() {
        if sub.is_none() {
            units.push(Unit::Scalar(i));
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::{parse, EvalError, Frame, SignalId, SignalTable};
    use esafe_monitor::{Location, MonitorSuite, SuiteTemplate};
    use esafe_sim::{SimTime, Subsystem};

    /// A ramp that climbs by `slope` per tick.
    struct Ramp {
        x: SignalId,
        slope: f64,
    }

    impl Subsystem for Ramp {
        fn name(&self) -> &str {
            "ramp"
        }
        fn step(&mut self, _t: &SimTime, prev: &Frame, next: &mut Frame) {
            next.set(self.x, prev.real_or(self.x, 0.0) + self.slope);
        }
    }

    /// A family of ramp substrates sharing one table + suite template:
    /// per-cell `slope` controls when (or whether) the terminal limit is
    /// hit, so a stripe mixes clean, early-terminating, and
    /// limit-at-the-boundary lanes.
    struct RampFamily {
        table: Arc<SignalTable>,
        x: SignalId,
        template: Arc<SuiteTemplate>,
    }

    impl RampFamily {
        fn new() -> Self {
            let mut b = SignalTable::builder();
            let x = b.real("x");
            let table = b.finish();
            let mut suite = MonitorSuite::new(table.clone());
            suite
                .add_goal("G", Location::new("Ramp"), parse("x < 40.0").unwrap())
                .unwrap();
            suite
                .add_subgoal(
                    "G.A",
                    "G",
                    Location::new("Sub"),
                    parse("held_for(x < 35.0, 2ticks)").unwrap(),
                )
                .unwrap();
            let template = Arc::new(suite.template());
            RampFamily { table, x, template }
        }

        fn substrate(&self, slope: f64) -> RampCell {
            RampCell {
                table: self.table.clone(),
                x: self.x,
                slope,
                template: Some(Arc::clone(&self.template)),
                tracked: vec![self.x],
                panic_at: None,
            }
        }

        /// A cell whose simulator panics mid-run, once `x` reaches
        /// `at` — for fault-isolation tests.
        fn panicking_substrate(&self, slope: f64, at: f64) -> RampCell {
            let mut cell = self.substrate(slope);
            cell.panic_at = Some(at);
            cell
        }
    }

    /// Panics the tick after `x` reaches `at`.
    struct PanicAt {
        x: SignalId,
        at: f64,
    }

    impl Subsystem for PanicAt {
        fn name(&self) -> &str {
            "panic-at"
        }
        fn step(&mut self, _t: &SimTime, prev: &Frame, _next: &mut Frame) {
            let x = prev.real_or(self.x, 0.0);
            if x >= self.at {
                panic!("lane melted down at x={x}");
            }
        }
    }

    struct RampCell {
        table: Arc<SignalTable>,
        x: SignalId,
        slope: f64,
        template: Option<Arc<SuiteTemplate>>,
        tracked: Vec<SignalId>,
        panic_at: Option<f64>,
    }

    impl Substrate for RampCell {
        fn name(&self) -> &str {
            "ramp"
        }
        fn label(&self) -> String {
            format!("slope-{}", self.slope)
        }
        fn duration_ms(&self) -> u64 {
            600
        }
        fn signal_table(&self) -> &Arc<SignalTable> {
            &self.table
        }
        fn build_simulator(&self) -> Simulator {
            let mut sim = Simulator::new(10, &self.table);
            sim.add(Ramp {
                x: self.x,
                slope: self.slope,
            });
            if let Some(at) = self.panic_at {
                sim.add(PanicAt { x: self.x, at });
            }
            sim.init_with(|f| f.set(self.x, 0.0));
            sim
        }
        fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
            let mut suite = MonitorSuite::new(self.table.clone());
            suite.add_goal("G", Location::new("Ramp"), parse("x < 40.0").unwrap())?;
            suite.add_subgoal(
                "G.A",
                "G",
                Location::new("Sub"),
                parse("held_for(x < 35.0, 2ticks)").unwrap(),
            )?;
            Ok(suite)
        }
        fn suite_template(&self) -> Option<&Arc<SuiteTemplate>> {
            self.template.as_ref()
        }
        fn terminal_event(&self, observed: &Frame) -> Option<&'static str> {
            (observed.real_or(self.x, 0.0) >= 50.0).then_some("limit")
        }
        fn tracked_signals(&self) -> &[SignalId] {
            &self.tracked
        }
    }

    /// Slopes chosen so lanes terminate at different ticks: slope 2.0
    /// hits the terminal limit at tick 25 (mid-stripe), slope 1.0 at
    /// tick 50, slope 0.25 never.
    fn mixed_slopes() -> Vec<f64> {
        vec![2.0, 0.25, 1.0, 0.5, 3.0, 0.75, 1.5, 0.1, 2.5, 0.3, 4.0]
    }

    #[test]
    fn batched_sweep_matches_scalar_sweep_bit_for_bit() {
        let family = RampFamily::new();
        let sweep = Sweep::new(mixed_slopes()).with_base_seed(11);
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let scalar = sweep.run_serial(build).unwrap();
        for width in [2, 3, 8, 64] {
            let batched = sweep.run_batched(build, width).unwrap();
            assert_eq!(batched, scalar, "width {width} diverged from scalar");
        }
    }

    /// The early-termination-inside-a-stripe regression: a lane that
    /// hits its terminal event mid-stripe (slope 4.0 terminates at tick
    /// ~13 of 60) must leave every surviving lane's verdicts, series,
    /// and violation intervals bit-identical to scalar execution.
    #[test]
    fn early_termination_mid_stripe_leaves_survivors_bit_identical() {
        let family = RampFamily::new();
        // One stripe: the fast lane dies first, the slow lanes run the
        // full schedule.
        let sweep = Sweep::new(vec![4.0, 0.2, 1.0, 0.4]).with_base_seed(3);
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let scalar = sweep.run_serial(build).unwrap();
        let batched = sweep.run_batched(build, 4).unwrap();
        assert!(
            batched.runs[0].terminated_early,
            "the fast lane must terminate early"
        );
        assert!(
            !batched.runs[1].terminated_early,
            "the slow lane must run its schedule"
        );
        assert_ne!(
            batched.runs[0].ticks, batched.runs[2].ticks,
            "lanes must terminate at different ticks"
        );
        assert_eq!(batched, scalar);
    }

    #[test]
    fn batched_aggregate_matches_scalar_aggregate() {
        let family = RampFamily::new();
        let sweep = Sweep::new(mixed_slopes()).with_base_seed(7);
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let (scalar, scalar_stats) = sweep.run_aggregate(build).unwrap();
        let (batched, stats) = sweep.run_aggregate_batched(build, 4).unwrap();
        assert_eq!(batched, scalar);
        assert_eq!(stats.runs(), scalar_stats.runs());
        assert_eq!(stats.suites_compiled, 0, "stripes never recompile");
    }

    #[test]
    fn template_less_cells_fall_back_to_the_scalar_path() {
        // RampCell with template stripped: still correct, just scalar.
        let family = RampFamily::new();
        let sweep = Sweep::new(vec![2.0, 1.0, 0.5]).with_base_seed(5);
        let strip = |slope: &f64, _seed: u64| {
            let mut cell = family.substrate(*slope);
            cell.template = None;
            cell
        };
        let batched = sweep.run_batched(strip, 4).unwrap();
        let scalar = sweep.run_serial(strip).unwrap();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn width_one_and_empty_sweeps_are_fine() {
        let family = RampFamily::new();
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let sweep = Sweep::new(vec![1.0, 2.0]).with_base_seed(9);
        assert_eq!(
            sweep.run_batched(build, 1).unwrap(),
            sweep.run_serial(build).unwrap()
        );
        let empty = Sweep::new(Vec::<f64>::new());
        assert_eq!(empty.run_batched(build, 8).unwrap().runs.len(), 0);
        let (agg, stats) = empty.run_aggregate_batched(build, 8).unwrap();
        assert_eq!(agg, SweepAggregate::default());
        assert_eq!(stats.runs(), 0);
    }

    /// A family whose goal references a signal the simulator never sets
    /// — the batch pass errors on the first tick and the stripe must
    /// rerun scalar, reporting the earliest cell's error exactly like
    /// the scalar sweep does.
    #[test]
    fn stripe_monitoring_errors_match_the_scalar_path() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        b.real("ghost");
        let table = b.finish();
        let mut suite = MonitorSuite::new(table.clone());
        suite
            .add_goal("G", Location::new("Ramp"), parse("ghost < 1.0").unwrap())
            .unwrap();
        let broken = RampFamily {
            table,
            x,
            template: Arc::new(suite.template()),
        };
        let sweep = Sweep::new(vec![1.0, 2.0, 3.0]).with_base_seed(1);
        let build = |slope: &f64, _seed: u64| broken.substrate(*slope);
        let batched = sweep.run_batched(build, 4);
        let scalar = sweep.run_serial(build);
        match (batched, scalar) {
            (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
            (a, b) => panic!("both paths must fail: {a:?} vs {b:?}"),
        }
    }

    /// The fault-isolation contract at stripe granularity: one cell
    /// panicking mid-stripe is quarantined with full provenance while
    /// every stripe-mate's report stays bit-identical to an all-healthy
    /// run — at every width from degenerate to wider-than-the-grid.
    #[test]
    fn panicking_lane_is_quarantined_and_stripe_mates_stay_bit_identical() {
        use crate::sweep::FailureReason;

        let family = RampFamily::new();
        let slopes = mixed_slopes();
        // Cell 4 (slope 3.0) reaches x = 21 at tick 7 — well before any
        // lane terminates, so the panic fires mid-stripe.
        let victim = 4usize;
        let base = 21u64;
        let healthy = |slope: &f64, _seed: u64| family.substrate(*slope);
        let poisoned = |slope: &f64, _seed: u64| {
            if *slope == slopes[victim] {
                family.panicking_substrate(*slope, 21.0)
            } else {
                family.substrate(*slope)
            }
        };
        let sweep = Sweep::new(slopes.clone()).with_base_seed(base);
        let baseline = sweep.run_serial(healthy).unwrap();
        let mut expected = baseline.runs.clone();
        expected.remove(victim);
        let guarded = sweep.clone().with_quarantine(Quarantine::default());

        for width in [1, 2, 3, 5, 8, 16, 33, 64] {
            let report = guarded.run_batched(poisoned, width).unwrap();
            assert_eq!(
                report.runs, expected,
                "width {width}: stripe-mates diverged"
            );
            assert_eq!(report.quarantined.len(), 1, "width {width}");
            let failure = &report.quarantined[0];
            assert_eq!(failure.cell, victim);
            assert_eq!(failure.seed, cell_seed(base, victim));
            assert_eq!(failure.retries, 0);
            assert!(
                matches!(&failure.reason, FailureReason::Panic { message }
                    if message.contains("melted down")),
                "width {width}: {:?}",
                failure.reason
            );
            // The streaming-aggregate form of the same width agrees.
            let (agg, _) = guarded.run_aggregate_batched(poisoned, width).unwrap();
            assert_eq!(agg, report.aggregate(), "width {width} aggregate diverged");
        }
    }

    fn temp_journal(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("esafe-batch-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    /// The checkpoint/resume contract: interrupt a checkpointed sweep
    /// anywhere — a clean record boundary or a torn mid-record tail —
    /// reopen the journal, resume, and the final aggregate is
    /// bit-identical to the uninterrupted run, with only the lost cells
    /// re-running.
    #[test]
    fn checkpointed_sweep_resumes_bit_identically() {
        use crate::journal::{decode_record, DecodeOutcome, HEADER_BYTES};

        let family = RampFamily::new();
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let slopes = mixed_slopes();
        let cells = slopes.len();
        let sweep = Sweep::new(slopes).with_base_seed(17);
        let (reference, _) = sweep.run_aggregate_batched(build, 4).unwrap();

        // An uninterrupted checkpointed run matches the plain aggregate.
        let full_path = temp_journal("full");
        let mut journal =
            SweepJournal::create(&full_path, 17, cells, ExperimentConfig::default()).unwrap();
        let (agg, stats) = sweep
            .run_aggregate_batched_checkpointed(build, 4, &mut journal)
            .unwrap();
        assert_eq!(agg, reference);
        assert_eq!(stats.runs(), cells);
        assert_eq!(journal.completed_cells(), cells);
        drop(journal);

        // Simulate a crash: keep the header, the first three records,
        // and a torn fragment of the fourth.
        let bytes = std::fs::read(&full_path).unwrap();
        let mut boundary = HEADER_BYTES;
        for _ in 0..3 {
            match decode_record(&bytes[boundary..]) {
                DecodeOutcome::Record(_, consumed) => boundary += consumed,
                other => panic!("journal must hold intact records: {other:?}"),
            }
        }
        for (name, cut) in [("boundary", boundary), ("torn", boundary + 9)] {
            let cut_path = temp_journal(name);
            std::fs::write(&cut_path, &bytes[..cut]).unwrap();
            let mut resumed = SweepJournal::open(&cut_path).unwrap();
            assert_eq!(resumed.recovered_records(), 3, "{name}");
            let (resumed_agg, resumed_stats) = sweep
                .run_aggregate_batched_checkpointed(build, 4, &mut resumed)
                .unwrap();
            assert_eq!(
                resumed_agg, reference,
                "{name}: resume must be bit-identical"
            );
            assert_eq!(
                resumed_stats.runs(),
                cells - 3,
                "{name}: only the lost cells re-run"
            );
            drop(resumed);

            // Resuming the now-complete journal runs nothing and still
            // reproduces the aggregate, purely from records.
            let mut done = SweepJournal::open(&cut_path).unwrap();
            let (replayed, replay_stats) = sweep
                .run_aggregate_batched_checkpointed(build, 4, &mut done)
                .unwrap();
            assert_eq!(replayed, reference, "{name}");
            assert_eq!(replay_stats.runs(), 0, "{name}");
            std::fs::remove_file(&cut_path).unwrap();
        }
        std::fs::remove_file(&full_path).unwrap();
    }

    /// Quarantined cells are durable too: a resume replays the failure
    /// provenance from the journal instead of re-running the cell.
    #[test]
    fn checkpointed_resume_replays_quarantined_cells() {
        let family = RampFamily::new();
        let slopes = vec![4.0, 0.2, 1.0, 0.4];
        let poisoned = |slope: &f64, _seed: u64| {
            if *slope == 1.0 {
                family.panicking_substrate(*slope, 15.0)
            } else {
                family.substrate(*slope)
            }
        };
        let sweep = Sweep::new(slopes.clone()).with_base_seed(5);
        let path = temp_journal("quarantined");
        let mut journal =
            SweepJournal::create(&path, 5, slopes.len(), ExperimentConfig::default()).unwrap();
        // Checkpointed runs quarantine by default — no explicit policy.
        let (agg, _) = sweep
            .run_aggregate_batched_checkpointed(poisoned, 2, &mut journal)
            .unwrap();
        assert_eq!(agg.quarantined.len(), 1);
        assert_eq!(agg.quarantined[0].cell, 2);
        assert_eq!(agg.runs, 3);
        drop(journal);

        let mut reopened = SweepJournal::open(&path).unwrap();
        let (replayed, stats) = sweep
            .run_aggregate_batched_checkpointed(poisoned, 2, &mut reopened)
            .unwrap();
        assert_eq!(replayed, agg, "provenance must survive the journal");
        assert_eq!(stats.runs(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_rejects_a_journal_for_a_different_sweep() {
        let family = RampFamily::new();
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let sweep = Sweep::new(vec![1.0, 2.0]).with_base_seed(3);
        let path = temp_journal("mismatch");
        // Wrong seed and wrong cell count.
        let mut journal = SweepJournal::create(&path, 99, 7, ExperimentConfig::default()).unwrap();
        let err = sweep
            .run_aggregate_batched_checkpointed(build, 4, &mut journal)
            .unwrap_err();
        assert!(
            format!("{err}").contains("different sweep"),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
