//! Striped batched sweeps: whole groups of cells simulating *and*
//! monitoring together through lane-major slabs.
//!
//! The scalar sweep runs one cell at a time: each run steps its own
//! simulator and walks the fused monitor DAG once per tick for *its
//! own* frame. The batched sweep instead groups cells that share a
//! compile-once [`SuiteTemplate`](esafe_monitor::SuiteTemplate) (and
//! schedule) into **stripes** of up to `width` cells, advances the
//! whole stripe through one [`SimulatorBatch`] — every subsystem
//! stepping all lanes of a lane-major
//! [`FrameBatch`](esafe_logic::FrameBatch) state slab before the next
//! subsystem runs — and feeds the slab directly to one
//! [`MonitorSuiteBatch`] pass per tick. Monitoring, series sampling,
//! and terminal-event checks all read the slab **in place**: the
//! per-lane `Frame` copy across the sim→observe boundary is gone, and
//! both engines evaluate each node/subsystem across every run in the
//! stripe before moving on, amortizing decode and turning the inner
//! loops into straight-line sweeps over contiguous lanes.
//!
//! Batching is observationally invisible — reports and aggregates are
//! **bit-identical** to the scalar paths ([`Sweep::run`] /
//! [`Sweep::run_aggregate`]), which the workspace's golden sweeps and
//! property tests pin. The shapes that don't fit a stripe degrade
//! gracefully to the scalar fused path, never to different results:
//!
//! * cells without a suite template (self-compiling substrates) run
//!   scalar;
//! * ragged tails — the last `< 2` cells of a group — run scalar;
//! * a run hitting its terminal event mid-stripe is *retired*: its lane
//!   freezes (temporal history, violation trackers, step counter) while
//!   the surviving lanes keep ticking, exactly as if each had run alone;
//! * a monitoring error inside a stripe reruns the whole stripe on the
//!   scalar path, so per-cell errors surface identically to
//!   [`Sweep::run`] (earliest-cell-first).

use crate::context::{RunContext, RunTiming, SuiteProvenance};
use crate::experiment::{Experiment, ExperimentConfig, ExperimentError, RunReport};
use crate::lanes::LaneAllocator;
use crate::substrate::Substrate;
use crate::sweep::{cell_seed, Partial, Sweep, SweepAggregate, SweepReport, SweepStats};
use esafe_logic::SignalId;
use esafe_monitor::MonitorSuiteBatch;
use esafe_sim::{sample_point, SeriesLog, Simulator, SimulatorBatch};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Default stripe width for batched sweeps: wide enough to amortize the
/// per-node decode across many lanes, narrow enough that a grid still
/// splits into more stripes than cores. (The mega-grid reproduction
/// calibrates its width empirically; see `esafe-bench`.)
pub const DEFAULT_BATCH_WIDTH: usize = 8;

/// One schedulable piece of a batched sweep: a lock-step stripe of
/// same-template cell indices, or a single cell on the scalar path.
#[derive(Debug)]
enum Unit {
    Stripe(Vec<usize>),
    Scalar(usize),
}

/// Partitions cells into stripes of up to `width` same-group cells plus
/// scalar singles. Cells group when they share the same suite template,
/// signal table, and scheduled duration (`Arc` identity — the family
/// pattern); template-less cells and one-cell tails run scalar.
fn plan_units<S: Substrate>(subs: &[S], width: usize) -> Vec<Unit> {
    let width = width.max(1);
    let mut units = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut by_key: HashMap<(usize, usize, u64), usize> = HashMap::new();
    for (i, sub) in subs.iter().enumerate() {
        match sub.suite_template() {
            None => units.push(Unit::Scalar(i)),
            Some(template) => {
                let key = (
                    Arc::as_ptr(sub.signal_table()) as usize,
                    Arc::as_ptr(template) as usize,
                    sub.duration_ms(),
                );
                let g = *by_key.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[g].push(i);
            }
        }
    }
    for group in groups {
        for chunk in group.chunks(width) {
            if chunk.len() == 1 {
                units.push(Unit::Scalar(chunk[0]));
            } else {
                units.push(Unit::Stripe(chunk.to_vec()));
            }
        }
    }
    units
}

/// The per-lane run state a stripe carries for one cell: everything the
/// scalar experiment loop keeps per run, minus the monitor suite (which
/// lives lane-indexed in the shared [`MonitorSuiteBatch`]) and the
/// simulator (which lives lane-indexed in the stripe's
/// [`SimulatorBatch`]).
struct Lane<'s> {
    /// The substrate's tracked signal ids, resolved once at stripe
    /// setup rather than re-fetched per tick.
    tracked: &'s [SignalId],
    /// Per-tracked-signal point buffers (the indexed fast path), used
    /// when no signal is tracked twice.
    buffers: Vec<Vec<(f64, f64)>>,
    buffered: bool,
    series: SeriesLog,
    terminal_tick: Option<u64>,
    terminal_event: Option<String>,
    terminated_early: bool,
}

type CellOutcome = (usize, Result<RunReport, ExperimentError>, RunTiming);

/// Runs one cell on the scalar experiment loop — the fallback for
/// template-less cells, one-cell tails, and stripes that hit a
/// monitoring error.
fn run_scalar_cell<S: Substrate>(
    config: ExperimentConfig,
    substrate: &S,
    index: usize,
) -> CellOutcome {
    match Experiment::new(substrate)
        .with_config(config)
        .run_in(&mut RunContext::new())
    {
        Ok((report, timing)) => (index, Ok(report), timing),
        Err(e) => (index, Err(e), RunTiming::default()),
    }
}

/// Runs one stripe: one [`SimulatorBatch`] advancing every lane through
/// lane-major state slabs, with monitors, series sampling, and terminal
/// checks all reading the slab **in place** — no per-lane `Frame` copy
/// anywhere in the tick loop (substrates without in-place observe
/// overrides bridge through two stripe-owned scratch frames). Per lane,
/// the loop reproduces the scalar experiment semantics exactly — same
/// tick schedule, same series sampling, same terminal-event grace
/// window, same correlation — so each cell's report is bit-identical to
/// a scalar run of the same substrate.
fn run_stripe<S: Substrate>(
    config: ExperimentConfig,
    subs: &[S],
    lanes_idx: &[usize],
) -> Vec<CellOutcome> {
    let width = lanes_idx.len();
    let setup_started = Instant::now();
    let template = subs[lanes_idx[0]]
        .suite_template()
        .expect("planned stripes carry a template");
    let group: Vec<&S> = lanes_idx.iter().map(|&i| &subs[i]).collect();
    let mut lanes: Vec<Lane<'_>> = group
        .iter()
        .map(|substrate| {
            // Tracked ids are resolved once here, not per tick.
            let tracked = substrate.tracked_signals();
            let buffered = {
                let mut ids: Vec<_> = tracked.to_vec();
                ids.sort_unstable();
                ids.dedup();
                ids.len() == tracked.len()
            };
            Lane {
                tracked,
                buffers: if buffered {
                    tracked.iter().map(|_| Vec::new()).collect()
                } else {
                    Vec::new()
                },
                buffered,
                series: SeriesLog::new(),
                terminal_tick: None,
                terminal_event: None,
                terminated_early: false,
            }
        })
        .collect();
    // A stripe is the static case of the shared lane-occupancy
    // abstraction (see [`LaneAllocator`]): every lane is claimed up
    // front and released as its run retires.
    let mut occupancy = LaneAllocator::new(width);
    for _ in 0..width {
        occupancy.claim();
    }

    let mut sim = match S::build_simulator_batch(&group) {
        Some(sim) => sim,
        None => {
            // No native batched builder: wrap scalar simulators. Their
            // per-lane chains step bit-identically inside the batch.
            let sims: Vec<Simulator> = group.iter().map(|s| s.build_simulator()).collect();
            let dt = sims[0].dt_millis();
            if sims.iter().any(|s| s.dt_millis() != dt) {
                // Mixed tick periods cannot tick in lock-step. Grouping
                // keys on the shared table/template/duration, which in
                // practice fixes dt too — this is a correctness
                // backstop, not a hot path.
                return lanes_idx
                    .iter()
                    .map(|&i| run_scalar_cell(config, &subs[i], i))
                    .collect();
            }
            SimulatorBatch::from_scalar(sims)
        }
    };
    let dt = sim.dt_millis();

    let mut batch: MonitorSuiteBatch = template.instantiate_batch(width);
    let table = Arc::clone(subs[lanes_idx[0]].signal_table());
    // Stripe-owned scratch frames for substrates whose observe /
    // terminal check still runs per lane over a copied frame.
    let mut raw = table.frame();
    let mut observed = table.frame();
    let scheduled_ticks = subs[lanes_idx[0]].duration_ms().div_ceil(dt);
    let post_terminal_ticks = config.post_terminal_ms.div_ceil(dt);
    let setup = setup_started.elapsed();

    let tick_started = Instant::now();
    for tick in 1..=scheduled_ticks {
        sim.step();
        for (l, sub) in group.iter().enumerate().take(width) {
            if occupancy.is_claimed(l) {
                sub.observe_lane(sim.state_mut(), l, &mut raw, &mut observed);
            }
        }
        if batch.observe_slab(sim.state()).is_err() {
            // A monitoring error mid-stripe: rerun every lane on the
            // scalar path so per-cell results (successes *and* the
            // failing cell's error) match `Sweep::run` exactly.
            return lanes_idx
                .iter()
                .map(|&i| run_scalar_cell(config, &subs[i], i))
                .collect();
        }
        for (l, lane) in lanes.iter_mut().enumerate() {
            if !occupancy.is_claimed(l) {
                continue;
            }
            let t = sim.lane_seconds(l);
            if lane.buffered {
                for (buffer, &id) in lane.buffers.iter_mut().zip(lane.tracked) {
                    if let Some(x) = sample_point(sim.state().get(id, l)) {
                        buffer.push((t, x));
                    }
                }
            } else {
                for &id in lane.tracked {
                    // Same rule as `SeriesLog::sample`, reading the slab.
                    if let Some(x) = sample_point(sim.state().get(id, l)) {
                        lane.series.push(table.name(id), t, x);
                    }
                }
            }
            if lane.terminal_tick.is_none() {
                if let Some(event) = group[l].terminal_event_lane(sim.state(), l, &mut raw) {
                    lane.terminal_tick = Some(tick);
                    lane.terminal_event = Some(event.to_owned());
                }
            }
            if let Some(at) = lane.terminal_tick {
                if tick >= at + post_terminal_ticks {
                    lane.terminated_early = tick < scheduled_ticks;
                    occupancy.release(l);
                    batch.retire_lane(l);
                    sim.retire_lane(l);
                }
            }
        }
        if occupancy.in_use() == 0 {
            break;
        }
    }
    batch.finish();
    let ticking = tick_started.elapsed();

    // Per-lane timing: the stripe's wall-clock split evenly across its
    // lanes, so `SweepStats` totals stay comparable to the scalar paths.
    let lane_timing = RunTiming {
        setup: setup / width as u32,
        ticking: ticking / width as u32,
        suite: SuiteProvenance::Instantiated,
    };
    let window_ticks = config.correlation_window_ms.div_ceil(dt);
    lanes
        .into_iter()
        .enumerate()
        .map(|(l, lane)| {
            let index = lanes_idx[l];
            let substrate = &subs[index];
            let correlation = batch.correlate_lane(l, window_ticks);
            let violations = batch.take_violations_lane(l);
            let mut series = lane.series;
            for (buffer, &id) in lane.buffers.into_iter().zip(lane.tracked) {
                series.append_points(substrate.signal_table().name(id), buffer);
            }
            let report = RunReport {
                substrate: substrate.name().to_owned(),
                label: substrate.label(),
                config,
                dt_millis: dt,
                scheduled_ticks,
                ticks: sim.lane_tick(l),
                end_time_s: sim.lane_seconds(l),
                terminated_early: lane.terminated_early,
                terminal_event: lane.terminal_event,
                violations,
                correlation,
                series,
                trace: None,
            };
            (index, Ok(report), lane_timing)
        })
        .collect()
}

impl<C: Sync> Sweep<C> {
    /// [`Sweep::run`] on the **batched** engine: cells sharing a suite
    /// template are grouped into lock-step stripes of up to `width`
    /// runs, each tick feeding every lane's observed frame to one
    /// [`MonitorSuiteBatch`] pass (see the [module docs](self)).
    /// Reports are bit-identical to the scalar paths, in cell order.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_batched<S, F>(&self, build: F, width: usize) -> Result<SweepReport, ExperimentError>
    where
        S: Substrate + Sync,
        F: Fn(&C, u64) -> S + Sync,
    {
        self.run_batched_timed(build, width)
            .map(|(report, _)| report)
    }

    /// [`Sweep::run_batched`] plus the aggregated [`SweepStats`]
    /// (stripe wall-clock split evenly across its lanes).
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_batched_timed<S, F>(
        &self,
        build: F,
        width: usize,
    ) -> Result<(SweepReport, SweepStats), ExperimentError>
    where
        S: Substrate + Sync,
        F: Fn(&C, u64) -> S + Sync,
    {
        let subs = self.build_all(&build);
        let units = plan_units(&subs, width);
        let per_unit: Vec<Vec<CellOutcome>> = units
            .into_par_iter()
            .map(|unit| run_unit(self.config, &subs, &unit))
            .collect();
        let mut slots: Vec<Option<(Result<RunReport, ExperimentError>, RunTiming)>> =
            (0..subs.len()).map(|_| None).collect();
        for (i, result, timing) in per_unit.into_iter().flatten() {
            slots[i] = Some((result, timing));
        }
        let results: Vec<_> = slots
            .into_iter()
            .map(|slot| slot.expect("every cell is planned into exactly one unit"))
            .collect();
        Self::collect_reports(results)
    }

    /// [`Sweep::run_aggregate`] on the **batched** engine: stripes run
    /// in parallel, and every lane's report folds into a per-worker
    /// partial aggregate the moment its stripe completes — no report
    /// outlives its stripe, so memory is O(workers × width) regardless
    /// of grid size. The aggregate is identical to every other sweep
    /// path (pinned by the workspace's regression tests); this is the
    /// engine behind `repro --grid` and `repro --mega-grid`.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_aggregate_batched<S, F>(
        &self,
        build: F,
        width: usize,
    ) -> Result<(SweepAggregate, SweepStats), ExperimentError>
    where
        S: Substrate + Sync,
        F: Fn(&C, u64) -> S + Sync,
    {
        let subs = self.build_all(&build);
        let units = plan_units(&subs, width);
        let partial = units
            .into_par_iter()
            // `map_init` only for its `fold` hook — stripes carry no
            // per-worker pooled state (scalar fallbacks build their own
            // `RunContext`).
            .map_init(|| (), |(), unit| run_unit(self.config, &subs, &unit))
            .fold(Partial::default, |acc: Partial, outcomes| {
                outcomes.into_iter().fold(acc, |acc, (i, result, timing)| {
                    acc.absorbed(i, (result, timing))
                })
            })
            .reduce(Partial::default, Partial::merged);
        partial.finish()
    }

    /// Builds every cell's substrate up front (cells must be inspected
    /// — table, template, duration — before they can be grouped into
    /// stripes). Substrate construction is the cheap, amortized part of
    /// a run; simulators and suites are still built per stripe.
    fn build_all<S, F>(&self, build: &F) -> Vec<S>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, cell)| build(cell, cell_seed(self.base_seed, i)))
            .collect()
    }
}

/// Executes one planned unit.
fn run_unit<S: Substrate>(config: ExperimentConfig, subs: &[S], unit: &Unit) -> Vec<CellOutcome> {
    match unit {
        Unit::Scalar(i) => vec![run_scalar_cell(config, &subs[*i], *i)],
        Unit::Stripe(lanes) => run_stripe(config, subs, lanes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::{parse, EvalError, Frame, SignalId, SignalTable};
    use esafe_monitor::{Location, MonitorSuite, SuiteTemplate};
    use esafe_sim::{SimTime, Subsystem};

    /// A ramp that climbs by `slope` per tick.
    struct Ramp {
        x: SignalId,
        slope: f64,
    }

    impl Subsystem for Ramp {
        fn name(&self) -> &str {
            "ramp"
        }
        fn step(&mut self, _t: &SimTime, prev: &Frame, next: &mut Frame) {
            next.set(self.x, prev.real_or(self.x, 0.0) + self.slope);
        }
    }

    /// A family of ramp substrates sharing one table + suite template:
    /// per-cell `slope` controls when (or whether) the terminal limit is
    /// hit, so a stripe mixes clean, early-terminating, and
    /// limit-at-the-boundary lanes.
    struct RampFamily {
        table: Arc<SignalTable>,
        x: SignalId,
        template: Arc<SuiteTemplate>,
    }

    impl RampFamily {
        fn new() -> Self {
            let mut b = SignalTable::builder();
            let x = b.real("x");
            let table = b.finish();
            let mut suite = MonitorSuite::new(table.clone());
            suite
                .add_goal("G", Location::new("Ramp"), parse("x < 40.0").unwrap())
                .unwrap();
            suite
                .add_subgoal(
                    "G.A",
                    "G",
                    Location::new("Sub"),
                    parse("held_for(x < 35.0, 2ticks)").unwrap(),
                )
                .unwrap();
            let template = Arc::new(suite.template());
            RampFamily { table, x, template }
        }

        fn substrate(&self, slope: f64) -> RampCell {
            RampCell {
                table: self.table.clone(),
                x: self.x,
                slope,
                template: Some(Arc::clone(&self.template)),
                tracked: vec![self.x],
            }
        }
    }

    struct RampCell {
        table: Arc<SignalTable>,
        x: SignalId,
        slope: f64,
        template: Option<Arc<SuiteTemplate>>,
        tracked: Vec<SignalId>,
    }

    impl Substrate for RampCell {
        fn name(&self) -> &str {
            "ramp"
        }
        fn label(&self) -> String {
            format!("slope-{}", self.slope)
        }
        fn duration_ms(&self) -> u64 {
            600
        }
        fn signal_table(&self) -> &Arc<SignalTable> {
            &self.table
        }
        fn build_simulator(&self) -> Simulator {
            let mut sim = Simulator::new(10, &self.table);
            sim.add(Ramp {
                x: self.x,
                slope: self.slope,
            });
            sim.init_with(|f| f.set(self.x, 0.0));
            sim
        }
        fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
            let mut suite = MonitorSuite::new(self.table.clone());
            suite.add_goal("G", Location::new("Ramp"), parse("x < 40.0").unwrap())?;
            suite.add_subgoal(
                "G.A",
                "G",
                Location::new("Sub"),
                parse("held_for(x < 35.0, 2ticks)").unwrap(),
            )?;
            Ok(suite)
        }
        fn suite_template(&self) -> Option<&Arc<SuiteTemplate>> {
            self.template.as_ref()
        }
        fn terminal_event(&self, observed: &Frame) -> Option<&'static str> {
            (observed.real_or(self.x, 0.0) >= 50.0).then_some("limit")
        }
        fn tracked_signals(&self) -> &[SignalId] {
            &self.tracked
        }
    }

    /// Slopes chosen so lanes terminate at different ticks: slope 2.0
    /// hits the terminal limit at tick 25 (mid-stripe), slope 1.0 at
    /// tick 50, slope 0.25 never.
    fn mixed_slopes() -> Vec<f64> {
        vec![2.0, 0.25, 1.0, 0.5, 3.0, 0.75, 1.5, 0.1, 2.5, 0.3, 4.0]
    }

    #[test]
    fn batched_sweep_matches_scalar_sweep_bit_for_bit() {
        let family = RampFamily::new();
        let sweep = Sweep::new(mixed_slopes()).with_base_seed(11);
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let scalar = sweep.run_serial(build).unwrap();
        for width in [2, 3, 8, 64] {
            let batched = sweep.run_batched(build, width).unwrap();
            assert_eq!(batched, scalar, "width {width} diverged from scalar");
        }
    }

    /// The early-termination-inside-a-stripe regression: a lane that
    /// hits its terminal event mid-stripe (slope 4.0 terminates at tick
    /// ~13 of 60) must leave every surviving lane's verdicts, series,
    /// and violation intervals bit-identical to scalar execution.
    #[test]
    fn early_termination_mid_stripe_leaves_survivors_bit_identical() {
        let family = RampFamily::new();
        // One stripe: the fast lane dies first, the slow lanes run the
        // full schedule.
        let sweep = Sweep::new(vec![4.0, 0.2, 1.0, 0.4]).with_base_seed(3);
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let scalar = sweep.run_serial(build).unwrap();
        let batched = sweep.run_batched(build, 4).unwrap();
        assert!(
            batched.runs[0].terminated_early,
            "the fast lane must terminate early"
        );
        assert!(
            !batched.runs[1].terminated_early,
            "the slow lane must run its schedule"
        );
        assert_ne!(
            batched.runs[0].ticks, batched.runs[2].ticks,
            "lanes must terminate at different ticks"
        );
        assert_eq!(batched, scalar);
    }

    #[test]
    fn batched_aggregate_matches_scalar_aggregate() {
        let family = RampFamily::new();
        let sweep = Sweep::new(mixed_slopes()).with_base_seed(7);
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let (scalar, scalar_stats) = sweep.run_aggregate(build).unwrap();
        let (batched, stats) = sweep.run_aggregate_batched(build, 4).unwrap();
        assert_eq!(batched, scalar);
        assert_eq!(stats.runs(), scalar_stats.runs());
        assert_eq!(stats.suites_compiled, 0, "stripes never recompile");
    }

    #[test]
    fn template_less_cells_fall_back_to_the_scalar_path() {
        // RampCell with template stripped: still correct, just scalar.
        let family = RampFamily::new();
        let sweep = Sweep::new(vec![2.0, 1.0, 0.5]).with_base_seed(5);
        let strip = |slope: &f64, _seed: u64| {
            let mut cell = family.substrate(*slope);
            cell.template = None;
            cell
        };
        let batched = sweep.run_batched(strip, 4).unwrap();
        let scalar = sweep.run_serial(strip).unwrap();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn width_one_and_empty_sweeps_are_fine() {
        let family = RampFamily::new();
        let build = |slope: &f64, _seed: u64| family.substrate(*slope);
        let sweep = Sweep::new(vec![1.0, 2.0]).with_base_seed(9);
        assert_eq!(
            sweep.run_batched(build, 1).unwrap(),
            sweep.run_serial(build).unwrap()
        );
        let empty = Sweep::new(Vec::<f64>::new());
        assert_eq!(empty.run_batched(build, 8).unwrap().runs.len(), 0);
        let (agg, stats) = empty.run_aggregate_batched(build, 8).unwrap();
        assert_eq!(agg, SweepAggregate::default());
        assert_eq!(stats.runs(), 0);
    }

    /// A family whose goal references a signal the simulator never sets
    /// — the batch pass errors on the first tick and the stripe must
    /// rerun scalar, reporting the earliest cell's error exactly like
    /// the scalar sweep does.
    #[test]
    fn stripe_monitoring_errors_match_the_scalar_path() {
        let mut b = SignalTable::builder();
        let x = b.real("x");
        b.real("ghost");
        let table = b.finish();
        let mut suite = MonitorSuite::new(table.clone());
        suite
            .add_goal("G", Location::new("Ramp"), parse("ghost < 1.0").unwrap())
            .unwrap();
        let broken = RampFamily {
            table,
            x,
            template: Arc::new(suite.template()),
        };
        let sweep = Sweep::new(vec![1.0, 2.0, 3.0]).with_base_seed(1);
        let build = |slope: &f64, _seed: u64| broken.substrate(*slope);
        let batched = sweep.run_batched(build, 4);
        let scalar = sweep.run_serial(build);
        match (batched, scalar) {
            (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}")),
            (a, b) => panic!("both paths must fail: {a:?} vs {b:?}"),
        }
    }
}
