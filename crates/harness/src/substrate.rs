//! The [`Substrate`] trait: what a composite system provides to be run
//! under the generic experiment loop.

use esafe_logic::{EvalError, State};
use esafe_monitor::MonitorSuite;
use esafe_sim::Simulator;
use std::borrow::Cow;

/// A monitored composite system: one concrete configuration of one of
/// the thesis's evaluation substrates (or any other system built on
/// [`esafe_sim`]).
///
/// A `Substrate` value fully describes a *single deterministic run* —
/// substrate family, parameters, injected defects, scenario/seed — so
/// that [`Experiment`](crate::Experiment) can execute it and
/// [`Sweep`](crate::Sweep) can fan grids of them across cores.
pub trait Substrate {
    /// The substrate family name (e.g. `"vehicle"`, `"elevator"`).
    fn name(&self) -> &str;

    /// A label identifying this configuration (e.g. `"scenario-1"`,
    /// `"seed-42"`), used in reports and sweep aggregation.
    fn label(&self) -> String;

    /// Scheduled run length in milliseconds. The experiment loop converts
    /// this to ticks using the simulator's own tick period.
    fn duration_ms(&self) -> u64;

    /// Assembles a fresh simulator for this configuration.
    fn build_simulator(&self) -> Simulator;

    /// Builds the goal/subgoal monitor suite for this configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a goal formula fails to compile — a
    /// programming error surfaced by tests.
    fn build_monitors(&self) -> Result<MonitorSuite, EvalError>;

    /// Derives the observed state the monitors and series sampling see
    /// from the raw simulator state. The default is the identity (the
    /// elevator's monitors read plant signals directly); the vehicle
    /// substrate overrides this with its probe derivation.
    fn observe<'a>(&self, raw: &'a State) -> Cow<'a, State> {
        Cow::Borrowed(raw)
    }

    /// Checks the observed state for a terminal event (e.g. a collision).
    /// Returning `Some` starts the post-terminal grace window after which
    /// the run aborts early, mirroring the thesis's CarSim environment.
    fn terminal_event(&self, observed: &State) -> Option<&'static str> {
        let _ = observed;
        None
    }

    /// Signals to record into the report's [`SeriesLog`] each tick.
    ///
    /// [`SeriesLog`]: esafe_sim::SeriesLog
    fn tracked_signals(&self) -> &[String] {
        &[]
    }
}
