//! The [`Substrate`] trait: what a composite system provides to be run
//! under the generic experiment loop.

use esafe_logic::{EvalError, Frame, FrameBatch, SignalId, SignalTable};
use esafe_monitor::{MonitorSuite, SuiteTemplate};
use esafe_sim::{Simulator, SimulatorBatch};
use std::sync::Arc;

/// A monitored composite system: one concrete configuration of one of
/// the thesis's evaluation substrates (or any other system built on
/// [`esafe_sim`]).
///
/// A `Substrate` value fully describes a *single deterministic run* —
/// substrate family, parameters, injected defects, scenario/seed — so
/// that [`Experiment`](crate::Experiment) can execute it and
/// [`Sweep`](crate::Sweep) can fan grids of them across cores.
///
/// The substrate owns its [`SignalTable`]: the namespace is built **once**
/// (at substrate construction) and shared by every simulator, monitor
/// suite, sweep cell, and series sample derived from it. All per-tick
/// interfaces below — [`Substrate::observe`],
/// [`Substrate::terminal_event`], [`Substrate::tracked_signals`] — speak
/// [`SignalId`]-indexed [`Frame`]s, keeping the experiment loop free of
/// string lookups and allocation.
pub trait Substrate {
    /// The substrate family name (e.g. `"vehicle"`, `"elevator"`).
    fn name(&self) -> &str;

    /// A label identifying this configuration (e.g. `"scenario-1"`,
    /// `"seed-42"`), used in reports and sweep aggregation.
    fn label(&self) -> String;

    /// Scheduled run length in milliseconds. The experiment loop converts
    /// this to ticks using the simulator's own tick period.
    fn duration_ms(&self) -> u64;

    /// The shared signal namespace this substrate's simulator, monitors,
    /// and observed frames are indexed by.
    fn signal_table(&self) -> &Arc<SignalTable>;

    /// Assembles a fresh simulator for this configuration, over
    /// [`Substrate::signal_table`].
    fn build_simulator(&self) -> Simulator;

    /// Builds the goal/subgoal monitor suite for this configuration,
    /// compiled against [`Substrate::signal_table`].
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a goal formula fails to compile — a
    /// programming error surfaced by tests.
    fn build_monitors(&self) -> Result<MonitorSuite, EvalError>;

    /// A prebuilt, compile-once [`SuiteTemplate`] for this substrate's
    /// goal formulas, if the caller compiled one for the whole sweep
    /// (see the family types, e.g. `VehicleFamily`). When `Some`, the
    /// experiment loop instantiates (or reuses a pooled copy of) the
    /// template instead of calling [`Substrate::build_monitors`] per
    /// run. The template **must** describe the same suite
    /// `build_monitors` would compile — same formulas against the same
    /// table — which the workspace's golden sweep tests pin.
    fn suite_template(&self) -> Option<&Arc<SuiteTemplate>> {
        None
    }

    /// Assembles one batched simulator for a whole stripe of
    /// configurations (`group[lane]` builds lane `lane`), or `None` if
    /// this substrate has no native batched builder — the striped sweep
    /// then builds scalar simulators and wraps them via
    /// [`SimulatorBatch::from_scalar`], which is bit-identical but pays
    /// per-lane frame copies each tick. Implementations must produce
    /// lanes bit-identical to [`Substrate::build_simulator`] on the same
    /// configuration (pinned by the workspace's batched-sweep tests) and
    /// may assume every `group` member shares this substrate's signal
    /// table and tick period.
    fn build_simulator_batch(group: &[&Self]) -> Option<SimulatorBatch>
    where
        Self: Sized,
    {
        let _ = group;
        None
    }

    /// Derives the observed frame the monitors and series sampling see
    /// from the raw simulator frame, writing into the loop-owned
    /// `observed` scratch frame. The default copies the raw frame (the
    /// elevator's monitors read plant signals directly); the vehicle
    /// substrate overrides this to add its probe derivation on top.
    fn observe(&self, raw: &Frame, observed: &mut Frame) {
        observed.copy_from(raw);
    }

    /// [`Substrate::observe`] for one lane of a batched simulator's
    /// state slab, **in place**: derived signals are written directly
    /// into the lane, which monitors and series sampling then read
    /// without any per-lane `Frame` copy. The default bridges through
    /// the loop-owned `raw`/`observed` scratch frames and the scalar
    /// [`Substrate::observe`], so it is correct for every substrate.
    ///
    /// Overrides that write the slab directly must only write signals no
    /// subsystem reads (observation-derived probes): the slab is also
    /// the simulator's live state, and anything else would leak
    /// observation back into the dynamics.
    fn observe_lane(
        &self,
        slab: &mut FrameBatch,
        lane: usize,
        raw: &mut Frame,
        observed: &mut Frame,
    ) {
        slab.read_lane_into(lane, raw);
        self.observe(raw, observed);
        slab.write_lane_from(lane, observed);
    }

    /// Checks the observed frame for a terminal event (e.g. a collision).
    /// Returning `Some` starts the post-terminal grace window after which
    /// the run aborts early, mirroring the thesis's CarSim environment.
    fn terminal_event(&self, observed: &Frame) -> Option<&'static str> {
        let _ = observed;
        None
    }

    /// [`Substrate::terminal_event`] for one lane of an observed state
    /// slab. The default copies the lane into `scratch` and delegates to
    /// the scalar check; substrates whose check reads a couple of
    /// signals should override it with direct slab reads.
    fn terminal_event_lane(
        &self,
        slab: &FrameBatch,
        lane: usize,
        scratch: &mut Frame,
    ) -> Option<&'static str> {
        slab.read_lane_into(lane, scratch);
        self.terminal_event(scratch)
    }

    /// Signals to record into the report's [`SeriesLog`] each tick,
    /// resolved to ids at substrate construction.
    ///
    /// [`SeriesLog`]: esafe_sim::SeriesLog
    fn tracked_signals(&self) -> &[SignalId] {
        &[]
    }
}
