//! Pooled per-worker run state and run timing.
//!
//! A sweep used to rebuild everything per cell: recompile the ~dozens of
//! goal formulas into a fresh [`MonitorSuite`], allocate a fresh
//! observed-scratch [`Frame`], fresh interval trackers. All of that is
//! invariant across the cells of one substrate family, so each sweep
//! worker now owns one [`RunContext`] reused from cell to cell:
//!
//! * the **observed scratch frame** is kept and [`Frame::clear`]ed
//!   between runs (a `memset` instead of an allocation);
//! * a suite instantiated from a [`SuiteTemplate`] is kept and
//!   [`MonitorSuite::reset`] between runs with the same template
//!   (a `memcpy` of temporal cells instead of re-instantiation).
//!
//! Reuse never changes results: a cleared frame and a reset suite are
//! observationally identical to fresh ones, so `Sweep::run` (per-worker
//! contexts, arbitrary cell interleaving) stays bit-identical to
//! `Sweep::run_serial` (one context, cell order) — pinned by the
//! workspace's determinism and golden tests.
//!
//! [`RunTiming`] is the per-run instrumentation the pooled path exposes:
//! where the run's wall-clock went (setup vs ticking) and how its suite
//! was obtained, aggregated by `Sweep` into `SweepStats` for the
//! benchmark trajectory (`repro --grid --json`).

use crate::substrate::Substrate;
use esafe_logic::{EvalError, Frame};
use esafe_monitor::{MonitorSuite, SuiteTemplate};
use std::sync::Arc;
use std::time::Duration;

/// How a run obtained its monitor suite — the amortization ladder, from
/// most expensive to cheapest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuiteProvenance {
    /// Compiled from scratch via [`Substrate::build_monitors`] (no
    /// template available).
    #[default]
    Compiled,
    /// Instantiated from the substrate's [`SuiteTemplate`] (first run of
    /// a template on this worker).
    Instantiated,
    /// A pooled suite from a previous run of the same template, reset in
    /// place.
    Reused,
}

/// Wall-clock breakdown of one monitored run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTiming {
    /// Building the run: suite (compile/instantiate/reset), simulator,
    /// scratch frames.
    pub setup: Duration,
    /// The tick loop: simulate, observe, monitor, sample.
    pub ticking: Duration,
    /// How the monitor suite was obtained.
    pub suite: SuiteProvenance,
}

/// Per-worker state reused across the runs executed on one thread. See
/// the [module docs](self).
#[derive(Debug, Default)]
pub struct RunContext {
    observed: Option<Frame>,
    pooled: Option<(Arc<SuiteTemplate>, MonitorSuite)>,
}

impl RunContext {
    /// Creates an empty context (nothing pooled yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// An all-unset observed-scratch frame over the substrate's table:
    /// the pooled frame cleared in place when the table matches, a fresh
    /// frame otherwise.
    pub(crate) fn take_observed<S: Substrate>(&mut self, substrate: &S) -> Frame {
        let table = substrate.signal_table();
        match self.observed.take() {
            Some(mut frame) if Arc::ptr_eq(frame.table(), table) => {
                frame.clear();
                frame
            }
            _ => table.frame(),
        }
    }

    /// A pre-run monitor suite for the substrate: the pooled suite reset
    /// in place when the substrate's template matches, a fresh
    /// instantiation when a template exists, a full compile otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if (template-less) suite compilation fails.
    pub(crate) fn take_suite<S: Substrate>(
        &mut self,
        substrate: &S,
    ) -> Result<(MonitorSuite, SuiteProvenance), EvalError> {
        let Some(template) = substrate.suite_template() else {
            return Ok((substrate.build_monitors()?, SuiteProvenance::Compiled));
        };
        if let Some((pooled_template, mut suite)) = self.pooled.take() {
            if Arc::ptr_eq(&pooled_template, template) {
                suite.reset();
                return Ok((suite, SuiteProvenance::Reused));
            }
        }
        Ok((template.instantiate(), SuiteProvenance::Instantiated))
    }

    /// Returns a run's scratch state to the pool. The suite is kept only
    /// for template-instantiated runs (`template` is the substrate's
    /// template, if any) — a per-run-compiled suite has no identity to
    /// match the next cell against.
    pub(crate) fn put_back(
        &mut self,
        observed: Frame,
        suite: MonitorSuite,
        template: Option<&Arc<SuiteTemplate>>,
    ) {
        self.observed = Some(observed);
        if let Some(template) = template {
            self.pooled = Some((Arc::clone(template), suite));
        }
    }
}
