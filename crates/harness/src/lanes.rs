//! Lane occupancy tracking for slab-of-lanes engines.
//!
//! Every batched engine in the workspace — [`SimulatorBatch`] state
//! slabs, [`MonitorSuiteBatch`] verdict rows, the serve layer's shard
//! slabs — indexes its per-run storage by a dense *lane* number. Who
//! owns which lane is a separate question, and this module answers it
//! once for both usage shapes:
//!
//! * **static stripes** ([`Sweep::run_batched`](crate::Sweep::run_batched)):
//!   every lane is claimed at stripe setup and released as its run
//!   retires; the stripe's tick loop keys "is this lane still running?"
//!   off the allocator instead of per-lane flags;
//! * **dynamic churn** (`esafe-serve`): streams connect and disconnect
//!   continuously, claiming the lowest free lane and releasing it on
//!   retirement so the slot can be reclaimed by the next connection.
//!
//! [`SimulatorBatch`]: esafe_sim::SimulatorBatch
//! [`MonitorSuiteBatch`]: esafe_monitor::MonitorSuiteBatch

/// A fixed-capacity free-list allocator over lane indices `0..lanes`.
///
/// Claims pop the lowest-numbered free lane (LIFO over an initially
/// ascending free list), so a batch whose occupancy never exceeds `k`
/// touches only lanes `0..k` — keeping hot slab rows dense even under
/// heavy connect/disconnect churn.
///
/// # Example
///
/// ```
/// use esafe_harness::LaneAllocator;
///
/// let mut lanes = LaneAllocator::new(2);
/// let a = lanes.claim().unwrap();
/// let b = lanes.claim().unwrap();
/// assert_eq!((a, b), (0, 1));
/// assert_eq!(lanes.claim(), None, "slab is full");
/// lanes.release(a);
/// assert_eq!(lanes.claim(), Some(0), "freed lanes are reclaimed");
/// ```
#[derive(Debug, Clone)]
pub struct LaneAllocator {
    /// Free lane indices; the next claim pops the back.
    free: Vec<usize>,
    /// `claimed[lane]` — occupancy bitmap for O(1) queries.
    claimed: Vec<bool>,
}

impl LaneAllocator {
    /// Creates an allocator over `lanes` initially-free lanes.
    pub fn new(lanes: usize) -> Self {
        LaneAllocator {
            free: (0..lanes).rev().collect(),
            claimed: vec![false; lanes],
        }
    }

    /// Total number of lanes, claimed or free.
    pub fn lanes(&self) -> usize {
        self.claimed.len()
    }

    /// Number of lanes currently claimed.
    pub fn in_use(&self) -> usize {
        self.claimed.len() - self.free.len()
    }

    /// Number of lanes currently free.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Claims the lowest-numbered free lane, or `None` when every lane
    /// is in use.
    pub fn claim(&mut self) -> Option<usize> {
        let lane = self.free.pop()?;
        self.claimed[lane] = true;
        Some(lane)
    }

    /// Whether `lane` is currently claimed.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn is_claimed(&self, lane: usize) -> bool {
        self.claimed[lane]
    }

    /// Releases a claimed lane back to the free list.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or not currently claimed —
    /// double-releases corrupt a free list silently, so they are
    /// rejected loudly instead.
    pub fn release(&mut self, lane: usize) {
        assert!(
            std::mem::replace(&mut self.claimed[lane], false),
            "lane {lane} is not claimed"
        );
        self.free.push(lane);
    }

    /// Iterates the currently claimed lanes in ascending order.
    pub fn iter_claimed(&self) -> impl Iterator<Item = usize> + '_ {
        self.claimed
            .iter()
            .enumerate()
            .filter_map(|(l, &c)| c.then_some(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_ascend_and_fill_the_slab() {
        let mut a = LaneAllocator::new(3);
        assert_eq!(a.lanes(), 3);
        assert_eq!(a.claim(), Some(0));
        assert_eq!(a.claim(), Some(1));
        assert_eq!(a.claim(), Some(2));
        assert_eq!(a.claim(), None);
        assert_eq!((a.in_use(), a.available()), (3, 0));
    }

    #[test]
    fn release_recycles_and_keeps_occupancy_dense() {
        let mut a = LaneAllocator::new(4);
        for _ in 0..3 {
            a.claim();
        }
        a.release(1);
        a.release(0);
        // The most recently freed lane is reclaimed first; lane 3 stays
        // cold until the warm slots run out.
        assert_eq!(a.claim(), Some(0));
        assert_eq!(a.claim(), Some(1));
        assert_eq!(a.claim(), Some(3));
        assert!(a.is_claimed(2));
        assert_eq!(a.iter_claimed().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "not claimed")]
    fn double_release_panics() {
        let mut a = LaneAllocator::new(1);
        a.claim();
        a.release(0);
        a.release(0);
    }

    #[test]
    fn zero_lane_allocator_is_inert() {
        let mut a = LaneAllocator::new(0);
        assert_eq!(a.claim(), None);
        assert_eq!((a.lanes(), a.in_use(), a.available()), (0, 0, 0));
    }
}
