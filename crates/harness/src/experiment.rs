//! The generic simulate → observe → correlate experiment loop.

use crate::context::{RunContext, RunTiming};
use crate::substrate::Substrate;
use esafe_logic::{EvalError, Frame, FrameTrace};
use esafe_monitor::{CorrelationReport, MonitorError, ViolationInterval};
use esafe_sim::SeriesLog;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Timing policy of an experiment, expressed in **milliseconds** so the
/// same configuration applies to substrates with different tick periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// How long after a terminal event the environment keeps producing
    /// states before aborting ("early termination", thesis §5.4.1:
    /// violations were observed up to ~100 ms before the termination
    /// point).
    pub post_terminal_ms: u64,
    /// Correlation window for hit/false-positive/false-negative
    /// classification. Covers the actuation lag between a command-level
    /// subgoal violation and its plant-level consequence.
    pub correlation_window_ms: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            post_terminal_ms: 100,
            correlation_window_ms: 250,
        }
    }
}

/// An error raised while preparing or running an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// A goal formula failed to compile into a monitor.
    Compile(EvalError),
    /// A monitor referenced a signal missing from the observed state.
    Monitor(MonitorError),
    /// The run's watchdog tick budget ([`Experiment::with_tick_budget`])
    /// elapsed with the run still live — the sweep-level quarantine
    /// treats this as a runaway cell.
    TickBudget {
        /// The budget that was exceeded, in ticks.
        budget: u64,
    },
    /// A sweep checkpoint journal failed — an I/O error, a corrupt
    /// header, or a journal that does not describe this sweep. Carried
    /// as a rendered message so [`ExperimentError`] stays `Clone` +
    /// `PartialEq` for the error-ordering contracts.
    Journal(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "goal compilation failed: {e}"),
            ExperimentError::Monitor(e) => write!(f, "monitoring failed: {e}"),
            ExperimentError::TickBudget { budget } => {
                write!(f, "run exceeded its watchdog tick budget of {budget} ticks")
            }
            ExperimentError::Journal(msg) => write!(f, "sweep journal failed: {msg}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Compile(e) => Some(e),
            ExperimentError::Monitor(e) => Some(e),
            ExperimentError::TickBudget { .. } | ExperimentError::Journal(_) => None,
        }
    }
}

impl From<EvalError> for ExperimentError {
    fn from(e: EvalError) -> Self {
        ExperimentError::Compile(e)
    }
}

impl From<MonitorError> for ExperimentError {
    fn from(e: MonitorError) -> Self {
        ExperimentError::Monitor(e)
    }
}

/// The substrate-independent outcome of one monitored run.
///
/// The recorded [`SeriesLog`] is skipped during serialization (figure
/// series run to hundreds of kilobytes); a deserialized report carries an
/// empty log, and everything else round-trips.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The substrate family (e.g. `"vehicle"`).
    pub substrate: String,
    /// The configuration label (e.g. `"scenario-1"`).
    pub label: String,
    /// The timing policy the run was classified under.
    pub config: ExperimentConfig,
    /// Simulator tick period, ms.
    pub dt_millis: u64,
    /// Ticks the run was scheduled for.
    pub scheduled_ticks: u64,
    /// Ticks actually executed.
    pub ticks: u64,
    /// Wall-clock end of the run, s.
    pub end_time_s: f64,
    /// Whether the run aborted before its schedule.
    pub terminated_early: bool,
    /// The terminal event that aborted the run, if any.
    pub terminal_event: Option<String>,
    /// Violations per monitor id (monitors with none omitted).
    pub violations: Vec<(String, Vec<ViolationInterval>)>,
    /// Hit / false-positive / false-negative classification.
    pub correlation: CorrelationReport,
    /// Recorded figure series (not serialized).
    #[serde(skip)]
    pub series: SeriesLog,
    /// The full observed-frame recording, when the experiment ran with
    /// [`Experiment::with_frame_recording`] (not serialized — a 20 s
    /// vehicle run is ~20 000 frames × ~60 signals). Replay it through
    /// a different goal suite (`MonitorSuite::replay`) to re-monitor
    /// the run offline without re-simulating.
    #[serde(skip)]
    pub trace: Option<FrameTrace>,
}

impl RunReport {
    /// Violation intervals for a monitor id.
    pub fn violations_for(&self, id: &str) -> &[ViolationInterval] {
        self.violations
            .iter()
            .find(|(mid, _)| mid == id)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Whether any monitor recorded a violation.
    pub fn any_violations(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// One configured experiment over a substrate.
///
/// Owns the tick loop the substrates used to hand-roll: advance the
/// simulator (whose subsystems already observe the *previous* tick's
/// snapshot — the thesis's one-tick observation delay), derive the
/// observed state, feed every monitor, sample tracked series, and apply
/// early termination after a terminal event.
#[derive(Debug)]
pub struct Experiment<'a, S: Substrate> {
    substrate: &'a S,
    config: ExperimentConfig,
    record_frames: bool,
    tick_budget: Option<u64>,
}

impl<'a, S: Substrate> Experiment<'a, S> {
    /// Creates an experiment with the default timing policy.
    pub fn new(substrate: &'a S) -> Self {
        Experiment {
            substrate,
            config: ExperimentConfig::default(),
            record_frames: false,
            tick_budget: None,
        }
    }

    /// Replaces the timing policy.
    pub fn with_config(mut self, config: ExperimentConfig) -> Self {
        self.config = config;
        self
    }

    /// Arms a watchdog: a run still live after `budget` ticks fails with
    /// [`ExperimentError::TickBudget`] instead of running to its
    /// schedule. The budget is deliberately *not* part of
    /// [`ExperimentConfig`] — it is an execution-policy knob (set by the
    /// sweep quarantine), not a classification policy, and it never
    /// appears in a [`RunReport`]. A run whose schedule fits the budget
    /// is bit-identical to an unbudgeted run.
    pub fn with_tick_budget(mut self, budget: Option<u64>) -> Self {
        self.tick_budget = budget;
        self
    }

    /// Records the full observed-frame stream into the report's
    /// [`RunReport::trace`] (one [`FrameTrace`] column per signal, at
    /// the simulator's tick period). Off by default: recording a 1 kHz
    /// run costs ~one `Frame` memcpy per tick and holds every sample in
    /// memory. Switch it on to re-monitor the run offline with new goal
    /// suites — no re-simulation — via `MonitorSuite::replay` or
    /// [`FrameTrace::replay_expr`].
    pub fn with_frame_recording(mut self, record: bool) -> Self {
        self.record_frames = record;
        self
    }

    /// Runs the experiment to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] if a goal formula fails to compile or
    /// references a missing signal.
    pub fn run(&self) -> Result<RunReport, ExperimentError> {
        self.run_with(|_, _, _| {})
    }

    /// Runs the experiment, handing every `(tick, raw, observed)` frame
    /// pair to `inspect` as it is produced — for callers that need
    /// per-tick measurements beyond the monitors (physical-safety oracles
    /// in tests, live dashboards).
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] if a goal formula fails to compile or
    /// references a missing signal.
    pub fn run_with(
        &self,
        inspect: impl FnMut(u64, &Frame, &Frame),
    ) -> Result<RunReport, ExperimentError> {
        self.run_in_with(&mut RunContext::new(), inspect)
            .map(|(report, _)| report)
    }

    /// Runs the experiment against a pooled [`RunContext`], reusing the
    /// context's scratch frame and (for template-backed substrates) its
    /// monitor suite, and reporting where the run's wall-clock went.
    /// Reuse is observationally invisible: the report is bit-identical
    /// to [`Experiment::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] if a goal formula fails to compile or
    /// references a missing signal.
    pub fn run_in(&self, ctx: &mut RunContext) -> Result<(RunReport, RunTiming), ExperimentError> {
        self.run_in_with(ctx, |_, _, _| {})
    }

    /// [`Experiment::run_in`] with a per-tick `inspect` hook — the one
    /// loop every run entry point funnels into.
    ///
    /// The loop owns one scratch `observed` frame (taken from the
    /// context, or allocated once before the first tick); each tick the
    /// substrate's [`observe`](Substrate::observe) derivation writes
    /// into it in place, and tracked signals buffer into plain `Vec`s,
    /// so the steady-state loop performs zero allocations beyond series
    /// growth.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] if a goal formula fails to compile or
    /// references a missing signal.
    pub fn run_in_with(
        &self,
        ctx: &mut RunContext,
        mut inspect: impl FnMut(u64, &Frame, &Frame),
    ) -> Result<(RunReport, RunTiming), ExperimentError> {
        let substrate = self.substrate;
        let setup_started = Instant::now();
        let (mut suite, provenance) = ctx.take_suite(substrate)?;
        let mut sim = substrate.build_simulator();
        let mut observed = ctx.take_observed(substrate);

        let dt = sim.dt_millis();
        let scheduled_ticks = substrate.duration_ms().div_ceil(dt);
        let post_terminal_ticks = self.config.post_terminal_ms.div_ceil(dt);

        // Tracked signals buffer into one Vec per slot (indexed push, no
        // per-tick map lookup) unless a signal is tracked twice, where
        // only tick-interleaved sampling reproduces the historical
        // series layout.
        let tracked = substrate.tracked_signals();
        let buffered = {
            let mut ids: Vec<_> = tracked.to_vec();
            ids.sort_unstable();
            ids.dedup();
            ids.len() == tracked.len()
        };
        let mut series = SeriesLog::new();
        let mut buffers: Vec<Vec<(f64, f64)>> = if buffered {
            tracked.iter().map(|_| Vec::new()).collect()
        } else {
            Vec::new()
        };

        let mut trace = self.record_frames.then(|| {
            FrameTrace::with_capacity(
                substrate.signal_table(),
                dt,
                usize::try_from(scheduled_ticks).unwrap_or(0),
            )
        });

        let mut terminal_tick: Option<u64> = None;
        let mut terminal_event: Option<String> = None;
        let mut terminated_early = false;
        let setup = setup_started.elapsed();

        let tick_started = Instant::now();
        for tick in 1..=scheduled_ticks {
            if let Some(budget) = self.tick_budget {
                if tick > budget {
                    // The context's pooled suite was taken out and is now
                    // mid-run; dropping it here (instead of putting it
                    // back) keeps the pool free of half-stepped state.
                    return Err(ExperimentError::TickBudget { budget });
                }
            }
            sim.step();
            substrate.observe(sim.state(), &mut observed);
            if let Some(trace) = &mut trace {
                trace.push(&observed);
            }
            suite.observe(&observed)?;
            let t = sim.seconds();
            if buffered {
                for (buffer, &id) in buffers.iter_mut().zip(tracked) {
                    if let Some(x) = esafe_sim::sample_point(observed.get(id)) {
                        buffer.push((t, x));
                    }
                }
            } else {
                for &id in tracked {
                    series.sample(&observed, id, t);
                }
            }
            inspect(tick, sim.state(), &observed);

            if terminal_tick.is_none() {
                if let Some(event) = substrate.terminal_event(&observed) {
                    terminal_tick = Some(tick);
                    terminal_event = Some(event.to_owned());
                }
            }
            if let Some(at) = terminal_tick {
                if tick >= at + post_terminal_ticks {
                    terminated_early = tick < scheduled_ticks;
                    break;
                }
            }
        }
        suite.finish();
        let ticking = tick_started.elapsed();

        for (buffer, &id) in buffers.into_iter().zip(tracked) {
            series.append_points(substrate.signal_table().name(id), buffer);
        }

        let window_ticks = self.config.correlation_window_ms.div_ceil(dt);
        let correlation = suite.correlate(window_ticks);
        let violations = suite.take_violations();
        let report = RunReport {
            substrate: substrate.name().to_owned(),
            label: substrate.label(),
            config: self.config,
            dt_millis: dt,
            scheduled_ticks,
            ticks: sim.tick(),
            end_time_s: sim.seconds(),
            terminated_early,
            terminal_event,
            violations,
            correlation,
            series,
            trace,
        };
        ctx.put_back(observed, suite, substrate.suite_template());
        let timing = RunTiming {
            setup,
            ticking,
            suite: provenance,
        };
        Ok((report, timing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::{parse, SignalId, SignalTable};
    use esafe_monitor::{Location, MonitorSuite};
    use esafe_sim::{SimTime, Simulator, Subsystem};
    use std::sync::Arc;
    use std::time::Duration;

    /// A ramp that climbs by one per tick.
    struct Ramp {
        x: SignalId,
    }

    impl Subsystem for Ramp {
        fn name(&self) -> &str {
            "ramp"
        }
        fn step(&mut self, _t: &SimTime, prev: &Frame, next: &mut Frame) {
            next.set(self.x, prev.real_or(self.x, 0.0) + 1.0);
        }
    }

    /// A ramp substrate with a coarse 10 ms tick: hits `x == limit` and
    /// terminates after the grace window.
    struct RampSubstrate {
        limit: f64,
        duration_ms: u64,
        table: Arc<SignalTable>,
        x: SignalId,
        tracked: Vec<SignalId>,
    }

    impl RampSubstrate {
        fn new(limit: f64, duration_ms: u64) -> Self {
            let mut b = SignalTable::builder();
            let x = b.real("x");
            RampSubstrate {
                limit,
                duration_ms,
                table: b.finish(),
                x,
                tracked: vec![x],
            }
        }
    }

    impl Substrate for RampSubstrate {
        fn name(&self) -> &str {
            "ramp"
        }
        fn label(&self) -> String {
            format!("limit-{}", self.limit)
        }
        fn duration_ms(&self) -> u64 {
            self.duration_ms
        }
        fn signal_table(&self) -> &Arc<SignalTable> {
            &self.table
        }
        fn build_simulator(&self) -> Simulator {
            let mut sim = Simulator::new(10, &self.table);
            sim.add(Ramp { x: self.x });
            sim.init_with(|f| f.set(self.x, 0.0));
            sim
        }
        fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
            let mut suite = MonitorSuite::new(self.table.clone());
            suite.add_goal(
                "bound",
                Location::new("Ramp"),
                parse(&format!("x < {}", self.limit)).expect("valid formula"),
            )?;
            Ok(suite)
        }
        fn terminal_event(&self, observed: &Frame) -> Option<&'static str> {
            (observed.real_or(self.x, 0.0) >= self.limit).then_some("limit")
        }
        fn tracked_signals(&self) -> &[SignalId] {
            &self.tracked
        }
    }

    #[test]
    fn total_ticks_follow_the_substrate_tick_period() {
        // 1 s at a 10 ms tick is 100 ticks, not the 1000 a hardwired
        // 1 kHz loop would schedule.
        let substrate = RampSubstrate::new(1e9, 1000);
        let report = Experiment::new(&substrate).run().unwrap();
        assert_eq!(report.dt_millis, 10);
        assert_eq!(report.scheduled_ticks, 100);
        assert_eq!(report.ticks, 100);
        assert!(!report.terminated_early);
        assert!((report.end_time_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn terminal_event_aborts_after_the_grace_window() {
        let substrate = RampSubstrate::new(5.0, 10_000);
        let config = ExperimentConfig {
            post_terminal_ms: 100,
            ..ExperimentConfig::default()
        };
        let report = Experiment::new(&substrate)
            .with_config(config)
            .run()
            .unwrap();
        // Limit reached at tick 5; 100 ms grace is 10 ticks at dt=10 ms.
        assert_eq!(report.terminal_event.as_deref(), Some("limit"));
        assert_eq!(report.ticks, 15);
        assert!(report.terminated_early);
        assert_eq!(report.violations_for("bound").len(), 1);
    }

    #[test]
    fn series_are_sampled_from_observed_states() {
        let substrate = RampSubstrate::new(1e9, 50);
        let report = Experiment::new(&substrate).run().unwrap();
        let xs = report.series.series("x").unwrap();
        assert_eq!(xs.len(), 5);
        assert_eq!(xs[0], (0.01, 1.0));
        assert_eq!(xs[4], (0.05, 5.0));
    }

    #[test]
    fn inspect_sees_every_tick() {
        let substrate = RampSubstrate::new(1e9, 100);
        let mut seen = 0;
        Experiment::new(&substrate)
            .run_with(|tick, raw, observed| {
                seen += 1;
                assert_eq!(tick, seen);
                assert_eq!(raw.get(substrate.x), observed.get(substrate.x));
            })
            .unwrap();
        assert_eq!(seen, 10);
    }

    /// A ramp substrate carrying a prebuilt suite template, as a family
    /// type would.
    struct TemplatedRamp {
        inner: RampSubstrate,
        template: Arc<esafe_monitor::SuiteTemplate>,
    }

    impl TemplatedRamp {
        fn new(limit: f64, duration_ms: u64) -> Self {
            let inner = RampSubstrate::new(limit, duration_ms);
            let template = Arc::new(inner.build_monitors().unwrap().template());
            TemplatedRamp { inner, template }
        }
    }

    impl Substrate for TemplatedRamp {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn label(&self) -> String {
            self.inner.label()
        }
        fn duration_ms(&self) -> u64 {
            self.inner.duration_ms()
        }
        fn signal_table(&self) -> &Arc<SignalTable> {
            self.inner.signal_table()
        }
        fn build_simulator(&self) -> Simulator {
            self.inner.build_simulator()
        }
        fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
            self.inner.build_monitors()
        }
        fn suite_template(&self) -> Option<&Arc<esafe_monitor::SuiteTemplate>> {
            Some(&self.template)
        }
        fn terminal_event(&self, observed: &Frame) -> Option<&'static str> {
            self.inner.terminal_event(observed)
        }
        fn tracked_signals(&self) -> &[SignalId] {
            self.inner.tracked_signals()
        }
    }

    #[test]
    fn pooled_template_runs_match_fresh_compiled_runs() {
        use crate::context::SuiteProvenance;
        let compiled = RampSubstrate::new(5.0, 10_000);
        let reference = Experiment::new(&compiled).run().unwrap();

        let templated = TemplatedRamp::new(5.0, 10_000);
        let mut ctx = RunContext::new();
        let (first, t1) = Experiment::new(&templated).run_in(&mut ctx).unwrap();
        let (second, t2) = Experiment::new(&templated).run_in(&mut ctx).unwrap();
        assert_eq!(t1.suite, SuiteProvenance::Instantiated);
        assert_eq!(
            t2.suite,
            SuiteProvenance::Reused,
            "worker pool must kick in"
        );
        assert_eq!(first, reference, "template path must match compile path");
        assert_eq!(second, reference, "pooled reuse must be invisible");
    }

    #[test]
    fn run_in_reports_compiled_provenance_without_a_template() {
        use crate::context::SuiteProvenance;
        let substrate = RampSubstrate::new(5.0, 10_000);
        let mut ctx = RunContext::new();
        let (a, ta) = Experiment::new(&substrate).run_in(&mut ctx).unwrap();
        let (b, tb) = Experiment::new(&substrate).run_in(&mut ctx).unwrap();
        assert_eq!(ta.suite, SuiteProvenance::Compiled);
        assert_eq!(tb.suite, SuiteProvenance::Compiled);
        assert_eq!(a, b, "frame pooling alone must be invisible too");
        assert!(ta.setup + ta.ticking > Duration::ZERO);
    }

    #[test]
    fn frame_recording_is_opt_in_and_captures_every_observed_tick() {
        let substrate = RampSubstrate::new(5.0, 10_000);
        let unrecorded = Experiment::new(&substrate).run().unwrap();
        assert!(unrecorded.trace.is_none(), "recording must be opt-in");

        let recorded = Experiment::new(&substrate)
            .with_frame_recording(true)
            .run()
            .unwrap();
        let trace = recorded.trace.as_ref().expect("trace recorded");
        // One sample per executed tick (early termination included),
        // at the simulator's own period.
        assert_eq!(trace.len() as u64, recorded.ticks);
        assert_eq!(trace.tick_millis(), recorded.dt_millis);
        // The recording carries the observed frames: the ramp value at
        // sample i is i+1.
        let x = substrate.table.id("x").unwrap();
        assert_eq!(trace.get(0, x), Some(esafe_logic::Value::Real(1.0)));
        assert_eq!(trace.get(4, x), Some(esafe_logic::Value::Real(5.0)));
        // Everything but the trace matches the unrecorded run.
        let stripped = RunReport {
            trace: None,
            ..recorded.clone()
        };
        assert_eq!(stripped, unrecorded, "recording must not change the run");
    }

    #[test]
    fn recorded_traces_re_monitor_offline_with_new_goals() {
        use esafe_logic::parse;
        // Record a run monitored with the substrate's own suite…
        let substrate = RampSubstrate::new(5.0, 10_000);
        let recorded = Experiment::new(&substrate)
            .with_frame_recording(true)
            .run()
            .unwrap();
        let trace = recorded.trace.expect("trace recorded");
        // …then evaluate a goal the live run never compiled, offline.
        let verdicts = trace.replay_expr(&parse("x < 3.0").unwrap()).unwrap();
        let violated_at: Vec<usize> = verdicts
            .iter()
            .enumerate()
            .filter_map(|(i, ok)| (!ok).then_some(i))
            .collect();
        // x ramps 1,2,3,…: x < 3 fails from sample index 2 onwards.
        assert_eq!(violated_at.first(), Some(&2));
        assert_eq!(violated_at.len(), trace.len() - 2);
        // And an offline suite replay matches the live suite verdicts.
        let mut offline = substrate.build_monitors().unwrap();
        offline.replay(&trace).unwrap();
        assert_eq!(
            offline.take_violations(),
            recorded.violations,
            "offline re-monitoring must reproduce the live verdicts"
        );
    }

    #[test]
    fn tick_budget_watchdog_aborts_runaway_runs() {
        // 10 s at dt=10 ms schedules 1000 ticks; a 40-tick budget trips.
        let substrate = RampSubstrate::new(1e9, 10_000);
        let err = Experiment::new(&substrate)
            .with_tick_budget(Some(40))
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::TickBudget { budget: 40 });
        assert!(err.to_string().contains("watchdog tick budget of 40"));
    }

    #[test]
    fn tick_budget_covering_the_schedule_is_invisible() {
        let substrate = RampSubstrate::new(5.0, 10_000);
        let unbudgeted = Experiment::new(&substrate).run().unwrap();
        let budgeted = Experiment::new(&substrate)
            .with_tick_budget(Some(10_000))
            .run()
            .unwrap();
        assert_eq!(budgeted, unbudgeted);
    }

    #[test]
    fn reports_round_trip_through_serde_json_without_the_series() {
        let substrate = RampSubstrate::new(5.0, 10_000);
        let report = Experiment::new(&substrate).run().unwrap();
        assert!(report.series.series("x").is_some());
        // Through actual JSON text — the same path repro.rs uses.
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.series, SeriesLog::default(), "series is skipped");
        let stripped = RunReport {
            series: SeriesLog::default(),
            ..report
        };
        assert_eq!(back, stripped);
    }
}
