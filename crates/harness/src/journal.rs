//! Durable checkpoint/resume for sweeps: the [`SweepJournal`].
//!
//! A fleet-scale sweep (`repro --mega-grid` is 10 752 cells; the
//! roadmap aims at 10⁵–10⁶) that dies at 99 % used to lose everything.
//! The journal makes completed work durable: as cells finish, the sweep
//! appends one small record per cell — the cell's *contribution to the
//! aggregate* ([`CellDelta`]), not its full report — so a resumed sweep
//! skips completed cells and reproduces the exact aggregate
//! bit-identically (deterministic [`cell_seed`]s make re-running the
//! remainder equivalent to having never stopped).
//!
//! # On-disk format
//!
//! The journal is a single append-only file:
//!
//! ```text
//! header (48 bytes, written atomically: temp + fsync + rename)
//!   [0..8)    magic  b"ESAFEJNL"
//!   [8..12)   format version      u32 LE
//!   [12..20)  sweep base seed     u64 LE
//!   [20..28)  sweep cell count    u64 LE
//!   [28..36)  post_terminal_ms    u64 LE
//!   [36..44)  correlation_window  u64 LE
//!   [44..48)  CRC-32 of [0..44)   u32 LE
//! records, each:
//!   [0..4)    payload length      u32 LE   (≤ MAX_RECORD_BYTES)
//!   [4..8)    CRC-32 of payload   u32 LE
//!   [8..)     payload — tag byte then fields (see [`JournalRecord`])
//! ```
//!
//! Appends are plain buffered writes (no per-record fsync): a
//! `SIGKILL`ed process loses at most the page cache the OS hadn't
//! flushed, and anything it *had* written — including a torn final
//! record — is handled by recovery. [`SweepJournal::open`] validates
//! the header, scans records front to back, and **truncates** the file
//! at the first short, corrupt, or undecodable record: a torn tail
//! costs re-running the cells it described, never a wrong aggregate.
//!
//! Every multi-byte integer is little-endian; every length field is
//! validated against an explicit budget *before* any allocation it
//! sizes (mirroring the TCP codec's hostile-input discipline in
//! `esafe-serve`).
//!
//! [`cell_seed`]: crate::sweep::cell_seed

use crate::experiment::{ExperimentConfig, ExperimentError, RunReport};
use crate::sweep::{AggregateBuilder, CellFailure, FailureReason};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"ESAFEJNL";

/// On-disk format version this build writes and reads.
pub const JOURNAL_VERSION: u32 = 1;

/// Header length in bytes (see the [module docs](self)).
pub const HEADER_BYTES: usize = 48;

/// The largest record payload the decoder will buffer, checked against
/// the length prefix *before* the payload allocation. Generous: a
/// record is one cell's counters plus monitor-id strings or one panic
/// message.
pub const MAX_RECORD_BYTES: usize = 1 << 24;

const TAG_COMPLETED: u8 = 1;
const TAG_QUARANTINED: u8 = 2;

const REASON_PANIC: u8 = 1;
const REASON_ERROR: u8 = 2;
const REASON_TICK_BUDGET: u8 = 3;

/// CRC-32 (IEEE 802.3, the zlib polynomial), bitwise — the journal
/// checksums a few hundred bytes per cell, far off any hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// One completed cell's contribution to the sweep aggregate — exactly
/// the quantities [`AggregateBuilder::absorb`] extracts from a
/// [`RunReport`], so replaying deltas reproduces the aggregate
/// bit-identically without persisting reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDelta {
    /// The cell's index in the sweep's grid.
    pub cell: usize,
    /// Retry attempts the cell consumed before succeeding.
    pub retries: u32,
    /// Whether the run aborted before its schedule.
    pub terminated_early: bool,
    /// Whether the run hit a terminal event.
    pub terminal_event: bool,
    /// Correlation hits summed over the run's goals.
    pub hits: u64,
    /// False negatives summed over the run's goals.
    pub false_negatives: u64,
    /// False positives summed over the run's goals.
    pub false_positives: u64,
    /// Violation-interval counts per monitor id.
    pub violations: Vec<(String, u64)>,
}

impl CellDelta {
    /// Extracts a completed cell's delta from its report.
    pub fn from_report(cell: usize, retries: u32, report: &RunReport) -> Self {
        let mut hits = 0u64;
        let mut false_negatives = 0u64;
        let mut false_positives = 0u64;
        for row in &report.correlation.rows {
            hits += row.hits as u64;
            false_negatives += row.false_negatives as u64;
            false_positives += row.false_positives as u64;
        }
        CellDelta {
            cell,
            retries,
            terminated_early: report.terminated_early,
            terminal_event: report.terminal_event.is_some(),
            hits,
            false_negatives,
            false_positives,
            violations: report
                .violations
                .iter()
                .map(|(id, intervals)| (id.clone(), intervals.len() as u64))
                .collect(),
        }
    }
}

/// One durable journal entry: a cell that finished, healthy or
/// quarantined. Either way the cell is *done* — resume never re-runs
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// The cell completed; its aggregate contribution.
    Completed(CellDelta),
    /// The cell was quarantined; its failure provenance.
    Quarantined(CellFailure),
}

impl JournalRecord {
    /// The cell this record retires.
    pub fn cell(&self) -> usize {
        match self {
            JournalRecord::Completed(delta) => delta.cell,
            JournalRecord::Quarantined(failure) => failure.cell,
        }
    }
}

/// Outcome of decoding the record at the front of a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// A full record decoded, consuming this many bytes.
    Record(JournalRecord, usize),
    /// The buffer ends mid-record — a torn tail, not corruption.
    Incomplete,
    /// The bytes at the front are not a valid record (bad length, CRC
    /// mismatch, unknown tag, malformed payload).
    Corrupt(String),
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked front-to-back reader over a record payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn encode_payload(record: &JournalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        JournalRecord::Completed(delta) => {
            out.push(TAG_COMPLETED);
            put_u64(&mut out, delta.cell as u64);
            put_u32(&mut out, delta.retries);
            out.push(u8::from(delta.terminated_early));
            out.push(u8::from(delta.terminal_event));
            put_u64(&mut out, delta.hits);
            put_u64(&mut out, delta.false_negatives);
            put_u64(&mut out, delta.false_positives);
            put_u32(&mut out, delta.violations.len() as u32);
            for (id, count) in &delta.violations {
                put_str(&mut out, id);
                put_u64(&mut out, *count);
            }
        }
        JournalRecord::Quarantined(failure) => {
            out.push(TAG_QUARANTINED);
            put_u64(&mut out, failure.cell as u64);
            put_u64(&mut out, failure.seed);
            put_u32(&mut out, failure.retries);
            match &failure.reason {
                FailureReason::Panic { message } => {
                    out.push(REASON_PANIC);
                    put_str(&mut out, message);
                }
                FailureReason::Error { message } => {
                    out.push(REASON_ERROR);
                    put_str(&mut out, message);
                }
                FailureReason::TickBudgetExceeded { budget } => {
                    out.push(REASON_TICK_BUDGET);
                    put_u64(&mut out, *budget);
                }
            }
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> Option<JournalRecord> {
    let mut c = Cursor::new(payload);
    let record = match c.u8()? {
        TAG_COMPLETED => {
            let cell = usize::try_from(c.u64()?).ok()?;
            let retries = c.u32()?;
            let terminated_early = c.bool()?;
            let terminal_event = c.bool()?;
            let hits = c.u64()?;
            let false_negatives = c.u64()?;
            let false_positives = c.u64()?;
            let count = c.u32()? as usize;
            // The count sizes nothing directly (items are read one by
            // one and each read is bounds-checked), but reject counts
            // the remaining bytes cannot possibly hold so a hostile
            // count cannot reserve absurd capacity.
            if count > payload.len() {
                return None;
            }
            let mut violations = Vec::with_capacity(count);
            for _ in 0..count {
                let id = c.string()?;
                let n = c.u64()?;
                violations.push((id, n));
            }
            JournalRecord::Completed(CellDelta {
                cell,
                retries,
                terminated_early,
                terminal_event,
                hits,
                false_negatives,
                false_positives,
                violations,
            })
        }
        TAG_QUARANTINED => {
            let cell = usize::try_from(c.u64()?).ok()?;
            let seed = c.u64()?;
            let retries = c.u32()?;
            let reason = match c.u8()? {
                REASON_PANIC => FailureReason::Panic {
                    message: c.string()?,
                },
                REASON_ERROR => FailureReason::Error {
                    message: c.string()?,
                },
                REASON_TICK_BUDGET => FailureReason::TickBudgetExceeded { budget: c.u64()? },
                _ => return None,
            };
            JournalRecord::Quarantined(CellFailure {
                cell,
                seed,
                retries,
                reason,
            })
        }
        _ => return None,
    };
    c.done().then_some(record)
}

/// Encodes one record in its on-disk framing:
/// `[len u32][crc32 u32][payload]`.
pub fn encode_record(record: &JournalRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes the record at the front of `bytes`. Never panics on
/// arbitrary input: truncation is [`DecodeOutcome::Incomplete`],
/// everything else invalid is [`DecodeOutcome::Corrupt`].
pub fn decode_record(bytes: &[u8]) -> DecodeOutcome {
    if bytes.len() < 8 {
        return DecodeOutcome::Incomplete;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    if len > MAX_RECORD_BYTES {
        return DecodeOutcome::Corrupt(format!(
            "record length {len} exceeds the {MAX_RECORD_BYTES}-byte budget"
        ));
    }
    let expected_crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let Some(payload) = bytes.get(8..8 + len) else {
        return DecodeOutcome::Incomplete;
    };
    let actual = crc32(payload);
    if actual != expected_crc {
        return DecodeOutcome::Corrupt(format!(
            "record CRC mismatch: stored {expected_crc:08x}, computed {actual:08x}"
        ));
    }
    match decode_payload(payload) {
        Some(record) => DecodeOutcome::Record(record, 8 + len),
        None => DecodeOutcome::Corrupt("malformed record payload".to_owned()),
    }
}

fn encode_header(base_seed: u64, cells: u64, config: ExperimentConfig) -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[0..8].copy_from_slice(&JOURNAL_MAGIC);
    out[8..12].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out[12..20].copy_from_slice(&base_seed.to_le_bytes());
    out[20..28].copy_from_slice(&cells.to_le_bytes());
    out[28..36].copy_from_slice(&config.post_terminal_ms.to_le_bytes());
    out[36..44].copy_from_slice(&config.correlation_window_ms.to_le_bytes());
    let crc = crc32(&out[0..44]);
    out[44..48].copy_from_slice(&crc.to_le_bytes());
    out
}

fn journal_err(context: &str, detail: impl std::fmt::Display) -> ExperimentError {
    ExperimentError::Journal(format!("{context}: {detail}"))
}

/// An append-only, checksummed, crash-recoverable checkpoint of one
/// sweep's progress. See the [module docs](self) for the format and the
/// recovery contract.
#[derive(Debug)]
pub struct SweepJournal {
    file: File,
    path: PathBuf,
    base_seed: u64,
    cells: usize,
    config: ExperimentConfig,
    completed: Vec<bool>,
    completed_count: usize,
    records: usize,
    recovered_records: usize,
    partial: AggregateBuilder,
}

impl SweepJournal {
    /// Creates a fresh journal for a sweep of `cells` cells under
    /// `base_seed` and `config`. The header is written atomically
    /// (temp file + fsync + rename), so a journal either exists with a
    /// valid header or not at all.
    ///
    /// # Errors
    ///
    /// Fails if `path` already exists (resuming an existing journal is
    /// [`SweepJournal::open`]'s job — refusing to overwrite is what
    /// makes `--checkpoint` restart-safe) or on I/O failure.
    pub fn create(
        path: impl AsRef<Path>,
        base_seed: u64,
        cells: usize,
        config: ExperimentConfig,
    ) -> Result<Self, ExperimentError> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            return Err(journal_err(
                "create",
                format!(
                    "{} already exists (use resume to continue it)",
                    path.display()
                ),
            ));
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| journal_err("create temp", e))?;
            f.write_all(&encode_header(base_seed, cells as u64, config))
                .map_err(|e| journal_err("write header", e))?;
            f.sync_all().map_err(|e| journal_err("sync header", e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| journal_err("commit header", e))?;
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| journal_err("open journal", e))?;
        Ok(SweepJournal {
            file,
            path,
            base_seed,
            cells,
            config,
            completed: vec![false; cells],
            completed_count: 0,
            records: 0,
            recovered_records: 0,
            partial: AggregateBuilder::new(),
        })
    }

    /// Opens an existing journal, validates the header, replays every
    /// intact record into the in-memory partial aggregate, and
    /// truncates the file at the first torn or corrupt record.
    ///
    /// # Errors
    ///
    /// Fails if the file is missing, the header is invalid, or I/O
    /// fails. A damaged record *tail* is not an error — it is truncated
    /// and its cells will re-run.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ExperimentError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| journal_err("open journal", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| journal_err("read journal", e))?;
        if bytes.len() < HEADER_BYTES {
            return Err(journal_err(
                "header",
                "file shorter than the journal header",
            ));
        }
        if bytes[0..8] != JOURNAL_MAGIC {
            return Err(journal_err("header", "bad magic (not a sweep journal)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != JOURNAL_VERSION {
            return Err(journal_err(
                "header",
                format!(
                    "unsupported journal version {version} (this build reads {JOURNAL_VERSION})"
                ),
            ));
        }
        let stored_crc = u32::from_le_bytes(bytes[44..48].try_into().unwrap());
        let actual_crc = crc32(&bytes[0..44]);
        if stored_crc != actual_crc {
            return Err(journal_err(
                "header",
                format!("CRC mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"),
            ));
        }
        let base_seed = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let cells = usize::try_from(u64::from_le_bytes(bytes[20..28].try_into().unwrap()))
            .map_err(|_| journal_err("header", "cell count overflows this platform"))?;
        let config = ExperimentConfig {
            post_terminal_ms: u64::from_le_bytes(bytes[28..36].try_into().unwrap()),
            correlation_window_ms: u64::from_le_bytes(bytes[36..44].try_into().unwrap()),
        };

        let mut journal = SweepJournal {
            file: File::open(&path).map_err(|e| journal_err("open journal", e))?,
            path: path.clone(),
            base_seed,
            cells,
            config,
            completed: vec![false; cells],
            completed_count: 0,
            records: 0,
            recovered_records: 0,
            partial: AggregateBuilder::new(),
        };

        // Replay records front to back; stop (and truncate) at the
        // first torn or corrupt one.
        // `Incomplete` with no bytes left is the clean end of the
        // journal; a short or corrupt decode is a tail to cut.
        let mut at = HEADER_BYTES;
        while let DecodeOutcome::Record(record, consumed) = decode_record(&bytes[at..]) {
            if record.cell() >= cells {
                break;
            }
            journal.apply(record);
            at += consumed;
        }
        if at < bytes.len() {
            file.set_len(at as u64)
                .map_err(|e| journal_err("truncate torn tail", e))?;
            file.sync_all()
                .map_err(|e| journal_err("sync truncation", e))?;
        }
        drop(file);
        journal.recovered_records = journal.records;
        journal.file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| journal_err("reopen journal", e))?;
        Ok(journal)
    }

    /// Folds one replayed or freshly appended record into the in-memory
    /// state (bitmap + partial aggregate). Duplicate records for an
    /// already-completed cell are ignored — first write wins, so a
    /// replay can never double-count.
    fn apply(&mut self, record: JournalRecord) {
        let cell = record.cell();
        if self.completed[cell] {
            return;
        }
        self.completed[cell] = true;
        self.completed_count += 1;
        self.records += 1;
        match record {
            JournalRecord::Completed(delta) => self.partial.absorb_delta(&delta),
            JournalRecord::Quarantined(failure) => {
                self.partial.add_retries(failure.retries as usize);
                self.partial.absorb_failure(failure);
            }
        }
    }

    /// Appends one record durably (buffered write; see the [module
    /// docs](self) for the crash-safety contract) and folds it into the
    /// in-memory state.
    ///
    /// # Errors
    ///
    /// Fails on I/O failure or if the record names a cell outside the
    /// sweep.
    pub fn append(&mut self, record: JournalRecord) -> Result<(), ExperimentError> {
        if record.cell() >= self.cells {
            return Err(journal_err(
                "append",
                format!(
                    "record cell {} outside the sweep's {} cells",
                    record.cell(),
                    self.cells
                ),
            ));
        }
        self.file
            .write_all(&encode_record(&record))
            .map_err(|e| journal_err("append record", e))?;
        self.apply(record);
        Ok(())
    }

    /// Flushes appended records to stable storage (fsync). Called at
    /// sweep completion; not needed per record for kill-resume safety
    /// (the page cache survives a killed *process*; fsync guards
    /// against a killed *machine*).
    ///
    /// # Errors
    ///
    /// Fails on I/O failure.
    pub fn sync(&mut self) -> Result<(), ExperimentError> {
        self.file
            .sync_all()
            .map_err(|e| journal_err("sync journal", e))
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sweep base seed recorded in the header.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The sweep cell count recorded in the header.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// The experiment timing policy recorded in the header.
    pub fn config(&self) -> ExperimentConfig {
        self.config
    }

    /// Total intact records (replayed + appended this session).
    pub fn records(&self) -> usize {
        self.records
    }

    /// Records recovered from disk when this journal was opened (0 for
    /// a freshly created journal).
    pub fn recovered_records(&self) -> usize {
        self.recovered_records
    }

    /// How many cells are already done (completed or quarantined).
    pub fn completed_cells(&self) -> usize {
        self.completed_count
    }

    /// Whether a cell is already done (completed or quarantined).
    pub fn is_completed(&self, cell: usize) -> bool {
        self.completed.get(cell).copied().unwrap_or(false)
    }

    /// A clone of the partial aggregate accumulated from this journal's
    /// records — the resume path merges it with the freshly-run
    /// remainder.
    pub(crate) fn partial(&self) -> AggregateBuilder {
        self.partial.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(cell: usize) -> CellDelta {
        CellDelta {
            cell,
            retries: 0,
            terminated_early: cell.is_multiple_of(2),
            terminal_event: cell.is_multiple_of(3),
            hits: cell as u64,
            false_negatives: 1,
            false_positives: 2,
            violations: vec![("G".to_owned(), 1 + cell as u64), ("G.A".to_owned(), 2)],
        }
    }

    fn failure(cell: usize) -> CellFailure {
        CellFailure {
            cell,
            seed: 0xdead_beef,
            retries: 2,
            reason: FailureReason::Panic {
                message: "lane blew up".to_owned(),
            },
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("esafe-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn records_round_trip_bit_identically() {
        for record in [
            JournalRecord::Completed(delta(7)),
            JournalRecord::Quarantined(failure(3)),
            JournalRecord::Quarantined(CellFailure {
                cell: 0,
                seed: 0,
                retries: 0,
                reason: FailureReason::TickBudgetExceeded { budget: 99 },
            }),
            JournalRecord::Quarantined(CellFailure {
                cell: usize::MAX >> 1,
                seed: u64::MAX,
                retries: u32::MAX,
                reason: FailureReason::Error {
                    message: String::new(),
                },
            }),
        ] {
            let bytes = encode_record(&record);
            match decode_record(&bytes) {
                DecodeOutcome::Record(back, consumed) => {
                    assert_eq!(back, record);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("round trip failed: {other:?}"),
            }
            // Re-encoding the decode is byte-identical.
            let DecodeOutcome::Record(back, _) = decode_record(&bytes) else {
                unreachable!()
            };
            assert_eq!(encode_record(&back), bytes);
        }
    }

    #[test]
    fn create_open_append_resume_cycle() {
        let path = temp_path("cycle");
        let config = ExperimentConfig::default();
        let mut journal = SweepJournal::create(&path, 42, 10, config).unwrap();
        assert!(
            SweepJournal::create(&path, 42, 10, config).is_err(),
            "no overwrite"
        );
        journal.append(JournalRecord::Completed(delta(0))).unwrap();
        journal
            .append(JournalRecord::Quarantined(failure(4)))
            .unwrap();
        journal.append(JournalRecord::Completed(delta(9))).unwrap();
        journal.sync().unwrap();
        drop(journal);

        let reopened = SweepJournal::open(&path).unwrap();
        assert_eq!(reopened.base_seed(), 42);
        assert_eq!(reopened.cells(), 10);
        assert_eq!(reopened.records(), 3);
        assert_eq!(reopened.recovered_records(), 3);
        assert_eq!(reopened.completed_cells(), 3);
        for cell in 0..10 {
            assert_eq!(
                reopened.is_completed(cell),
                matches!(cell, 0 | 4 | 9),
                "cell {cell}"
            );
        }
        let agg = reopened.partial().finish();
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.quarantined, vec![failure(4)]);
        assert_eq!(agg.retries, 2, "the quarantined cell burned two retries");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_intact_records_survive() {
        let path = temp_path("torn");
        let config = ExperimentConfig::default();
        let mut journal = SweepJournal::create(&path, 7, 8, config).unwrap();
        journal.append(JournalRecord::Completed(delta(1))).unwrap();
        journal.append(JournalRecord::Completed(delta(2))).unwrap();
        drop(journal);

        // Tear the file mid-final-record.
        let full = std::fs::read(&path).unwrap();
        let torn_len = full.len() - 5;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(torn_len as u64).unwrap();
        drop(f);

        let recovered = SweepJournal::open(&path).unwrap();
        assert_eq!(recovered.records(), 1, "only the intact record survives");
        assert!(recovered.is_completed(1));
        assert!(!recovered.is_completed(2), "the torn cell must re-run");
        // Recovery truncated the torn bytes off the file itself.
        let after = std::fs::read(&path).unwrap();
        assert!(after.len() < torn_len);
        // And the journal still appends cleanly after recovery.
        let mut recovered = recovered;
        recovered
            .append(JournalRecord::Completed(delta(2)))
            .unwrap();
        drop(recovered);
        let reread = SweepJournal::open(&path).unwrap();
        assert_eq!(reread.records(), 2);
        assert!(reread.is_completed(2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_tails_and_headers_never_panic() {
        let path = temp_path("garbage");
        let config = ExperimentConfig::default();
        let mut journal = SweepJournal::create(&path, 1, 4, config).unwrap();
        journal.append(JournalRecord::Completed(delta(0))).unwrap();
        drop(journal);
        // Smash garbage onto the tail: recovery keeps the good prefix.
        let mut bytes = std::fs::read(&path).unwrap();
        let good_len = bytes.len();
        bytes.extend_from_slice(&[0xff; 64]);
        std::fs::write(&path, &bytes).unwrap();
        let recovered = SweepJournal::open(&path).unwrap();
        assert_eq!(recovered.records(), 1);
        drop(recovered);
        assert_eq!(std::fs::read(&path).unwrap().len(), good_len);

        // A corrupt header is a hard error, not a panic.
        let mut header = std::fs::read(&path).unwrap();
        header[3] ^= 0xff;
        std::fs::write(&path, &header).unwrap();
        assert!(SweepJournal::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn decode_record_survives_truncation_at_every_boundary() {
        let record = JournalRecord::Completed(delta(5));
        let bytes = encode_record(&record);
        for cut in 0..bytes.len() {
            match decode_record(&bytes[..cut]) {
                DecodeOutcome::Incomplete | DecodeOutcome::Corrupt(_) => {}
                DecodeOutcome::Record(..) => {
                    panic!(
                        "a {cut}-byte prefix of a {}-byte record decoded",
                        bytes.len()
                    )
                }
            }
        }
    }
}
