//! The on-disk trace corpus: durable archives of monitored runs, and
//! the batched offline re-monitoring backend that re-evaluates *new*
//! goal suites over them with zero simulation cost.
//!
//! The paper's emergent-safety argument is about re-checking goal
//! suites against recorded constituent behaviour; operationally that
//! means a changed safety requirement should cost a cheap pass over an
//! archived evidence base, not a re-simulation campaign. A corpus is a
//! directory holding:
//!
//! ```text
//! corpus.bin      header (32 bytes, written atomically: temp + fsync + rename)
//!                   [0..8)   magic  b"ESAFECRP"
//!                   [8..12)  format version       u32 LE
//!                   [12..20) post_terminal_ms     u64 LE
//!                   [20..28) correlation_window   u64 LE
//!                   [28..32) CRC-32 of [0..28)    u32 LE
//!                 records, each (same framing as the sweep journal):
//!                   [0..4)   payload length       u32 LE  (≤ MAX_CORPUS_RECORD_BYTES)
//!                   [4..8)   CRC-32 of payload    u32 LE
//!                   [8..)    payload — tag byte then a codec body:
//!                            1 = signal table   (esafe_logic::corpus::encode_table)
//!                            2 = symbol block   (encode_sym_block; flushed *before*
//!                                                the run that introduced the symbols)
//!                            3 = archived run   (encode_run: metadata + one
//!                                                contiguous encoded column per signal)
//! MANIFEST.bin    commit marker, written atomically at finish(): the
//!                 committed data length, run/tick/dictionary/table
//!                 totals, the per-run record index, and a trailing
//!                 CRC-32 over all of it.
//! ```
//!
//! Durability follows the [`SweepJournal`](crate::journal) idiom
//! exactly: appends are buffered writes, `finish` fsyncs the data file
//! and then publishes the manifest via temp + fsync + rename. Opening
//! a corpus *with* a valid manifest is strict — any defect inside the
//! committed region is a typed error, never a silent truncation.
//! Opening one *without* a manifest (a recording killed mid-sweep)
//! scans front to back and keeps every complete record, dropping the
//! torn tail: recovery costs the interrupted run, never a wrong
//! replay.
//!
//! Replay ([`replay_corpus`]) groups archived runs by signal table,
//! compiles the requested goal suite once per group, and streams
//! stripes of runs through [`MonitorSuiteBatch::observe_slab`]: each
//! run's [`RunDecoder`] writes its next tick straight into one lane of
//! a shared lane-major [`FrameBatch`] slab, so re-monitoring an
//! archived corpus runs at batched-observe speed — no simulator, no
//! materialized traces, O(width) memory.
//!
//! [`MonitorSuiteBatch::observe_slab`]: esafe_monitor::MonitorSuiteBatch::observe_slab

use crate::context::RunContext;
use crate::experiment::{Experiment, ExperimentConfig, ExperimentError, RunReport};
use crate::journal::crc32;
use crate::substrate::Substrate;
use crate::sweep::{AggregateBuilder, Sweep, SweepAggregate, SweepStats};
use esafe_logic::corpus::{
    decode_run_meta, decode_run_trace, decode_sym_block, decode_table, encode_run,
    encode_sym_block, encode_table, RunDecoder, RunMeta, SymDict,
};
use esafe_logic::{FrameBatch, FrameTrace, SignalTable};
use rayon::prelude::*;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every corpus data file.
pub const CORPUS_MAGIC: [u8; 8] = *b"ESAFECRP";

/// Magic bytes opening every corpus manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"ESAFECMF";

/// On-disk format version this build writes and reads.
pub const CORPUS_VERSION: u32 = 1;

/// Corpus data-file header length in bytes (see the [module
/// docs](self)).
pub const CORPUS_HEADER_BYTES: usize = 32;

/// The largest record payload the decoder will buffer, checked against
/// the length prefix *before* the payload allocation. An archived run
/// is the big case: a 20 s vehicle run encodes to a few megabytes at
/// worst.
pub const MAX_CORPUS_RECORD_BYTES: usize = 1 << 26;

/// The data file inside a corpus directory.
pub const CORPUS_DATA_FILE: &str = "corpus.bin";

/// The commit-marker manifest inside a corpus directory.
pub const CORPUS_MANIFEST_FILE: &str = "MANIFEST.bin";

/// Record payload tag: an encoded signal table.
pub const TAG_TABLE: u8 = 1;
/// Record payload tag: a symbol-dictionary block.
pub const TAG_SYMS: u8 = 2;
/// Record payload tag: one archived run.
pub const TAG_RUN: u8 = 3;

/// An error raised while writing, opening, or replaying a corpus.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// A filesystem operation failed.
    Io {
        /// What the corpus was doing (e.g. `"create corpus.bin"`).
        context: String,
        /// The underlying error's message.
        message: String,
    },
    /// The data-file header is missing, malformed, or mismatched.
    Header(String),
    /// The manifest is malformed or contradicts the data file.
    Manifest(String),
    /// A committed record region failed validation.
    Corrupt(String),
    /// A run offered for recording carried no frame trace.
    MissingTrace {
        /// The traceless run's label.
        label: String,
    },
    /// A live run failed while recording a sweep into a corpus.
    Run(ExperimentError),
    /// Replay failed (suite construction or batched observation).
    Replay(String),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io { context, message } => write!(f, "corpus I/O ({context}): {message}"),
            CorpusError::Header(msg) => write!(f, "corpus header: {msg}"),
            CorpusError::Manifest(msg) => write!(f, "corpus manifest: {msg}"),
            CorpusError::Corrupt(msg) => write!(f, "corpus corrupt: {msg}"),
            CorpusError::MissingTrace { label } => {
                write!(f, "run `{label}` has no frame trace to record")
            }
            CorpusError::Run(e) => write!(f, "recorded run failed: {e}"),
            CorpusError::Replay(msg) => write!(f, "corpus replay: {msg}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<ExperimentError> for CorpusError {
    fn from(e: ExperimentError) -> Self {
        CorpusError::Run(e)
    }
}

fn io_err(context: &str, e: std::io::Error) -> CorpusError {
    CorpusError::Io {
        context: context.to_owned(),
        message: e.to_string(),
    }
}

// --- record framing ----------------------------------------------------

/// Frames a record: `[len][crc][tag + body]`, same shape as the sweep
/// journal's records.
pub fn encode_corpus_record(tag: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(body.len() + 9);
    payload.push(tag);
    payload.extend_from_slice(body);
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The outcome of decoding one record frame from a byte prefix.
#[derive(Debug)]
pub enum CorpusDecodeOutcome<'a> {
    /// A complete, checksum-valid record: its tag, its body (the
    /// payload after the tag byte), and the total bytes consumed.
    Record {
        /// The payload's tag byte.
        tag: u8,
        /// The payload after the tag byte, borrowed from the input.
        body: &'a [u8],
        /// Total frame length consumed from the input.
        consumed: usize,
    },
    /// The prefix ends before the record does (a torn tail).
    Incomplete,
    /// The frame is invalid: oversized length, checksum mismatch, or an
    /// empty payload.
    Corrupt(String),
}

/// Decodes one record frame from the front of `bytes` without
/// allocating — the body borrows the input.
pub fn decode_corpus_record(bytes: &[u8]) -> CorpusDecodeOutcome<'_> {
    if bytes.len() < 8 {
        return CorpusDecodeOutcome::Incomplete;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_CORPUS_RECORD_BYTES {
        return CorpusDecodeOutcome::Corrupt(format!(
            "record length {len} exceeds the {MAX_CORPUS_RECORD_BYTES}-byte budget"
        ));
    }
    if len == 0 {
        return CorpusDecodeOutcome::Corrupt("empty record payload".to_owned());
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let Some(payload) = bytes.get(8..8 + len) else {
        return CorpusDecodeOutcome::Incomplete;
    };
    if crc32(payload) != crc {
        return CorpusDecodeOutcome::Corrupt("record checksum mismatch".to_owned());
    }
    CorpusDecodeOutcome::Record {
        tag: payload[0],
        body: &payload[1..],
        consumed: 8 + len,
    }
}

// --- stats -------------------------------------------------------------

/// Whole-corpus totals, as written (writer side) or as recovered
/// (reader side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    /// Archived runs.
    pub runs: usize,
    /// Total archived ticks across all runs.
    pub ticks: u64,
    /// Bytes of valid data in `corpus.bin` (header + records).
    pub data_bytes: u64,
    /// Symbol-dictionary entries.
    pub dict_len: usize,
    /// Archived signal tables.
    pub tables: usize,
}

// --- writer ------------------------------------------------------------

/// An append-only corpus writer: archives each recorded run as it
/// finishes and publishes an atomic commit manifest at
/// [`finish`](TraceCorpusWriter::finish).
#[derive(Debug)]
pub struct TraceCorpusWriter {
    dir: PathBuf,
    file: BufWriter<File>,
    config: ExperimentConfig,
    dict: SymDict,
    tables: Vec<Arc<SignalTable>>,
    data_bytes: u64,
    index: Vec<(u64, u64)>,
    total_ticks: u64,
}

fn encode_corpus_header(config: ExperimentConfig) -> [u8; CORPUS_HEADER_BYTES] {
    let mut h = [0u8; CORPUS_HEADER_BYTES];
    h[0..8].copy_from_slice(&CORPUS_MAGIC);
    h[8..12].copy_from_slice(&CORPUS_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&config.post_terminal_ms.to_le_bytes());
    h[20..28].copy_from_slice(&config.correlation_window_ms.to_le_bytes());
    let crc = crc32(&h[0..28]);
    h[28..32].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Writes `bytes` at `path` atomically: temp file in the same
/// directory, fsync, rename.
fn write_atomically(path: &Path, bytes: &[u8], context: &str) -> Result<(), CorpusError> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut f = File::create(&tmp).map_err(|e| io_err(context, e))?;
    f.write_all(bytes).map_err(|e| io_err(context, e))?;
    f.sync_all().map_err(|e| io_err(context, e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| io_err(context, e))
}

impl TraceCorpusWriter {
    /// Creates a fresh corpus at `dir` (the directory is created if
    /// missing), pinning the timing policy recorded runs were
    /// classified under — replay re-correlates with the same policy.
    ///
    /// # Errors
    ///
    /// Fails if the directory already holds a corpus data file or
    /// manifest, or on I/O failure.
    pub fn create(dir: impl AsRef<Path>, config: ExperimentConfig) -> Result<Self, CorpusError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create corpus directory", e))?;
        let data = dir.join(CORPUS_DATA_FILE);
        let manifest = dir.join(CORPUS_MANIFEST_FILE);
        if data.exists() || manifest.exists() {
            return Err(CorpusError::Header(format!(
                "refusing to overwrite an existing corpus at {}",
                dir.display()
            )));
        }
        write_atomically(&data, &encode_corpus_header(config), "create corpus.bin")?;
        let file = OpenOptions::new()
            .append(true)
            .open(&data)
            .map_err(|e| io_err("open corpus.bin for append", e))?;
        Ok(TraceCorpusWriter {
            dir,
            file: BufWriter::new(file),
            config,
            dict: SymDict::new(),
            tables: Vec::new(),
            data_bytes: CORPUS_HEADER_BYTES as u64,
            index: Vec::new(),
            total_ticks: 0,
        })
    }

    /// The timing policy this corpus records under.
    pub fn config(&self) -> ExperimentConfig {
        self.config
    }

    /// Archived runs so far.
    pub fn runs(&self) -> usize {
        self.index.len()
    }

    /// Archived ticks so far.
    pub fn ticks(&self) -> u64 {
        self.total_ticks
    }

    /// Bytes appended so far (header included).
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    fn append_record(&mut self, tag: u8, body: &[u8]) -> Result<(), CorpusError> {
        if body.len() + 1 > MAX_CORPUS_RECORD_BYTES {
            return Err(CorpusError::Corrupt(format!(
                "record of {} bytes exceeds the {MAX_CORPUS_RECORD_BYTES}-byte budget",
                body.len() + 1
            )));
        }
        let frame = encode_corpus_record(tag, body);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append corpus record", e))?;
        self.data_bytes += frame.len() as u64;
        Ok(())
    }

    fn table_ref(&mut self, table: &Arc<SignalTable>) -> Result<u32, CorpusError> {
        if let Some(i) = self.tables.iter().position(|t| Arc::ptr_eq(t, table)) {
            return Ok(i as u32);
        }
        self.append_record(TAG_TABLE, &encode_table(table))?;
        self.tables.push(Arc::clone(table));
        Ok((self.tables.len() - 1) as u32)
    }

    /// Archives one recorded trace with its run metadata. New symbols
    /// are flushed as a dictionary block *before* the run record, so a
    /// front-to-back reader always holds every id a run references.
    ///
    /// # Errors
    ///
    /// Fails on I/O failure or an oversized record.
    pub fn append_trace(
        &mut self,
        trace: &FrameTrace,
        substrate: &str,
        label: &str,
        terminated_early: bool,
        terminal_event: Option<&str>,
    ) -> Result<(), CorpusError> {
        let table_ref = self.table_ref(trace.table())?;
        let meta = RunMeta {
            table_ref,
            substrate: substrate.to_owned(),
            label: label.to_owned(),
            dt_millis: trace.tick_millis(),
            ticks: trace.len() as u64,
            terminated_early,
            terminal_event: terminal_event.map(str::to_owned),
        };
        let watermark = self.dict.len();
        let body = encode_run(trace, &meta, &mut self.dict);
        if self.dict.len() > watermark {
            let block = encode_sym_block(self.dict.texts_from(watermark));
            self.append_record(TAG_SYMS, &block)?;
        }
        let offset = self.data_bytes;
        self.append_record(TAG_RUN, &body)?;
        self.index.push((offset, meta.ticks));
        self.total_ticks += meta.ticks;
        Ok(())
    }

    /// Archives one finished run's recording — the convenience form of
    /// [`append_trace`](TraceCorpusWriter::append_trace) over a
    /// [`RunReport`] produced with frame recording on.
    ///
    /// # Errors
    ///
    /// Fails with [`CorpusError::MissingTrace`] if the report carries
    /// no trace, otherwise as `append_trace`.
    pub fn append_run(&mut self, report: &RunReport) -> Result<(), CorpusError> {
        let trace = report
            .trace
            .as_ref()
            .ok_or_else(|| CorpusError::MissingTrace {
                label: report.label.clone(),
            })?;
        self.append_trace(
            trace,
            &report.substrate,
            &report.label,
            report.terminated_early,
            report.terminal_event.as_deref(),
        )
    }

    fn encode_manifest(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(52 + self.index.len() * 16 + 4);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&CORPUS_VERSION.to_le_bytes());
        out.extend_from_slice(&self.data_bytes.to_le_bytes());
        out.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.total_ticks.to_le_bytes());
        out.extend_from_slice(&(self.dict.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.tables.len() as u64).to_le_bytes());
        for &(offset, ticks) in &self.index {
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&ticks.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Commits the corpus: flushes and fsyncs the data file, then
    /// publishes the manifest atomically. Until this succeeds the
    /// corpus opens in recovery mode (complete runs only).
    ///
    /// # Errors
    ///
    /// Fails on I/O failure; the data file keeps whatever made it to
    /// disk and remains recoverable.
    pub fn finish(mut self) -> Result<CorpusStats, CorpusError> {
        self.file
            .flush()
            .map_err(|e| io_err("flush corpus.bin", e))?;
        self.file
            .get_ref()
            .sync_all()
            .map_err(|e| io_err("fsync corpus.bin", e))?;
        let manifest = self.encode_manifest();
        write_atomically(
            &self.dir.join(CORPUS_MANIFEST_FILE),
            &manifest,
            "publish MANIFEST.bin",
        )?;
        Ok(CorpusStats {
            runs: self.index.len(),
            ticks: self.total_ticks,
            data_bytes: self.data_bytes,
            dict_len: self.dict.len(),
            tables: self.tables.len(),
        })
    }
}

// --- recording sink on Sweep -------------------------------------------

impl<C: Sync> Sweep<C> {
    /// Runs every cell serially with frame recording on, archiving each
    /// run into `writer` as it finishes and streaming the same
    /// aggregate a plain sweep would produce. The corpus ends up in
    /// cell order; the aggregate is order-independent either way.
    ///
    /// # Errors
    ///
    /// Fails if the writer's pinned timing policy differs from the
    /// sweep's, on the first failing cell, or on corpus I/O failure.
    /// Cells already archived stay in the corpus (it remains
    /// recoverable).
    pub fn run_aggregate_recorded<S, F>(
        &self,
        build: F,
        writer: &mut TraceCorpusWriter,
    ) -> Result<(SweepAggregate, SweepStats), CorpusError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        if writer.config() != self.config {
            return Err(CorpusError::Header(format!(
                "sweep timing policy {:?} differs from the corpus header's {:?}",
                self.config,
                writer.config()
            )));
        }
        let mut ctx = RunContext::new();
        let mut agg = AggregateBuilder::new();
        let mut stats = SweepStats::default();
        for (index, cell) in self.cells.iter().enumerate() {
            let substrate = build(cell, crate::sweep::cell_seed(self.base_seed, index));
            let (report, timing) = Experiment::new(&substrate)
                .with_config(self.config)
                .with_frame_recording(true)
                .run_in(&mut ctx)?;
            stats.absorb(timing);
            writer.append_run(&report)?;
            agg.absorb(&report);
        }
        Ok((agg.finish(), stats))
    }

    /// The **live reference** for corpus replay: runs every cell with
    /// frame recording on and re-scores each recording with the suite
    /// `suite_for` builds (compiled against the live table), replacing
    /// the run's violations and correlation before aggregation. The
    /// simulations themselves always run under the substrate's own
    /// configuration — only the *monitoring* changes — so replaying an
    /// archived corpus with the same suite must match this aggregate
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Fails on the first failing cell, a run recorded without a trace,
    /// or a suite/replay failure.
    pub fn run_aggregate_rescored<S, F, G>(
        &self,
        build: F,
        mut suite_for: G,
    ) -> Result<(SweepAggregate, SweepStats), CorpusError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
        G: FnMut(&str, &Arc<SignalTable>) -> Result<esafe_monitor::MonitorSuite, CorpusError>,
    {
        let mut ctx = RunContext::new();
        let mut agg = AggregateBuilder::new();
        let mut stats = SweepStats::default();
        // One compiled suite per (substrate, table identity) — cells of
        // a family share one table, so this compiles once per family.
        let mut suites: Vec<((String, *const SignalTable), esafe_monitor::MonitorSuite)> =
            Vec::new();
        for (index, cell) in self.cells.iter().enumerate() {
            let substrate = build(cell, crate::sweep::cell_seed(self.base_seed, index));
            let (mut report, timing) = Experiment::new(&substrate)
                .with_config(self.config)
                .with_frame_recording(true)
                .run_in(&mut ctx)?;
            stats.absorb(timing);
            let trace = report
                .trace
                .take()
                .ok_or_else(|| CorpusError::MissingTrace {
                    label: report.label.clone(),
                })?;
            let key = (report.substrate.clone(), Arc::as_ptr(trace.table()));
            let at = match suites.iter().position(|(k, _)| *k == key) {
                Some(at) => at,
                None => {
                    let suite = suite_for(&report.substrate, trace.table())?;
                    suites.push((key, suite));
                    suites.len() - 1
                }
            };
            let suite = &mut suites[at].1;
            suite
                .replay(&trace)
                .map_err(|e| CorpusError::Replay(format!("live re-score failed: {e}")))?;
            let window = self.config.correlation_window_ms.div_ceil(report.dt_millis);
            report.correlation = suite.correlate(window);
            report.violations = suite.take_violations();
            agg.absorb(&report);
        }
        Ok((agg.finish(), stats))
    }
}

// --- reader ------------------------------------------------------------

/// One archived run's location and metadata inside an open corpus.
#[derive(Debug, Clone)]
struct ArchivedRun {
    meta: RunMeta,
    body: Range<usize>,
}

/// A read-only view of a corpus: the whole data file in one buffer,
/// scanned and validated once at open; run decoding borrows the buffer
/// zero-copy.
#[derive(Debug)]
pub struct TraceCorpusReader {
    bytes: Vec<u8>,
    config: ExperimentConfig,
    dict: SymDict,
    tables: Vec<Arc<SignalTable>>,
    runs: Vec<ArchivedRun>,
    total_ticks: u64,
    recovered: bool,
    data_bytes: u64,
}

struct Manifest {
    data_bytes: u64,
    runs: u64,
    ticks: u64,
    dict_len: u64,
    tables: u64,
    index: Vec<(u64, u64)>,
}

fn parse_manifest(bytes: &[u8]) -> Result<Manifest, String> {
    if bytes.len() < 56 {
        return Err(format!("manifest too short ({} bytes)", bytes.len()));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err("manifest checksum mismatch".to_owned());
    }
    if body[0..8] != MANIFEST_MAGIC {
        return Err("bad manifest magic".to_owned());
    }
    let version = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
    if version != CORPUS_VERSION {
        return Err(format!(
            "manifest version {version} (this build reads {CORPUS_VERSION})"
        ));
    }
    let u64_at = |at: usize| u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
    let data_bytes = u64_at(12);
    let runs = u64_at(20);
    let ticks = u64_at(28);
    let dict_len = u64_at(36);
    let tables = u64_at(44);
    let index_bytes = body.len() - 52;
    if runs.checked_mul(16) != Some(index_bytes as u64) {
        return Err(format!(
            "manifest index holds {index_bytes} bytes for {runs} runs"
        ));
    }
    let mut index = Vec::with_capacity(runs as usize);
    for i in 0..runs as usize {
        index.push((u64_at(52 + i * 16), u64_at(52 + i * 16 + 8)));
    }
    Ok(Manifest {
        data_bytes,
        runs,
        ticks,
        dict_len,
        tables,
        index,
    })
}

impl TraceCorpusReader {
    /// Opens the corpus at `dir`. With a valid manifest the committed
    /// region is validated strictly (any defect is a typed error);
    /// without one — a recording killed before
    /// [`TraceCorpusWriter::finish`] — the scan keeps every complete
    /// record and drops the torn tail, and
    /// [`recovered`](TraceCorpusReader::recovered) reports `true`.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] if the data file is unreadable,
    /// [`CorpusError::Header`] on a damaged header,
    /// [`CorpusError::Manifest`] on a garbage or contradicted manifest,
    /// [`CorpusError::Corrupt`] on damage inside a committed region.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, CorpusError> {
        let dir = dir.as_ref();
        let bytes =
            std::fs::read(dir.join(CORPUS_DATA_FILE)).map_err(|e| io_err("read corpus.bin", e))?;
        if bytes.len() < CORPUS_HEADER_BYTES {
            return Err(CorpusError::Header(format!(
                "truncated header ({} bytes)",
                bytes.len()
            )));
        }
        if bytes[0..8] != CORPUS_MAGIC {
            return Err(CorpusError::Header("bad magic".to_owned()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != CORPUS_VERSION {
            return Err(CorpusError::Header(format!(
                "format version {version} (this build reads {CORPUS_VERSION})"
            )));
        }
        let crc = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
        if crc32(&bytes[0..28]) != crc {
            return Err(CorpusError::Header("header checksum mismatch".to_owned()));
        }
        let config = ExperimentConfig {
            post_terminal_ms: u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")),
            correlation_window_ms: u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")),
        };

        let manifest_path = dir.join(CORPUS_MANIFEST_FILE);
        let manifest = if manifest_path.exists() {
            let mbytes =
                std::fs::read(&manifest_path).map_err(|e| io_err("read MANIFEST.bin", e))?;
            Some(parse_manifest(&mbytes).map_err(CorpusError::Manifest)?)
        } else {
            None
        };

        let limit = match &manifest {
            Some(m) => {
                let committed = usize::try_from(m.data_bytes)
                    .map_err(|_| CorpusError::Manifest("absurd committed length".to_owned()))?;
                if committed < CORPUS_HEADER_BYTES {
                    return Err(CorpusError::Manifest(format!(
                        "committed length {committed} is shorter than the header"
                    )));
                }
                if bytes.len() < committed {
                    return Err(CorpusError::Manifest(format!(
                        "data file holds {} bytes but the manifest committed {committed}",
                        bytes.len()
                    )));
                }
                committed
            }
            None => bytes.len(),
        };
        let strict = manifest.is_some();

        let mut dict = SymDict::new();
        let mut tables: Vec<Arc<SignalTable>> = Vec::new();
        let mut runs: Vec<ArchivedRun> = Vec::new();
        let mut total_ticks = 0u64;
        let mut at = CORPUS_HEADER_BYTES;
        let mut scanned = at as u64;
        'scan: while at < limit {
            match decode_corpus_record(&bytes[at..limit]) {
                CorpusDecodeOutcome::Record {
                    tag,
                    body,
                    consumed,
                } => {
                    let body_start = at + 9;
                    let fail = |what: String| -> Result<(), CorpusError> {
                        if strict {
                            Err(CorpusError::Corrupt(format!("record at byte {at}: {what}")))
                        } else {
                            Ok(())
                        }
                    };
                    match tag {
                        TAG_TABLE => match decode_table(body) {
                            Some(table) => tables.push(table),
                            None => {
                                fail("malformed signal table".to_owned())?;
                                break 'scan;
                            }
                        },
                        TAG_SYMS => match decode_sym_block(body) {
                            Some(texts) => {
                                for t in texts {
                                    dict.push(t);
                                }
                            }
                            None => {
                                fail("malformed symbol block".to_owned())?;
                                break 'scan;
                            }
                        },
                        TAG_RUN => match decode_run_meta(body) {
                            Some(meta) if (meta.table_ref as usize) < tables.len() => {
                                total_ticks += meta.ticks;
                                runs.push(ArchivedRun {
                                    meta,
                                    body: body_start..body_start + body.len(),
                                });
                            }
                            Some(meta) => {
                                fail(format!("run references unknown table {}", meta.table_ref))?;
                                break 'scan;
                            }
                            None => {
                                fail("malformed run metadata".to_owned())?;
                                break 'scan;
                            }
                        },
                        other => {
                            fail(format!("unknown record tag {other}"))?;
                            break 'scan;
                        }
                    }
                    at += consumed;
                    scanned = at as u64;
                }
                CorpusDecodeOutcome::Incomplete => {
                    if strict {
                        return Err(CorpusError::Corrupt(format!(
                            "committed region ends with a torn record at byte {at}"
                        )));
                    }
                    break;
                }
                CorpusDecodeOutcome::Corrupt(msg) => {
                    if strict {
                        return Err(CorpusError::Corrupt(format!("record at byte {at}: {msg}")));
                    }
                    break;
                }
            }
        }

        if let Some(m) = &manifest {
            if runs.len() as u64 != m.runs
                || total_ticks != m.ticks
                || dict.len() as u64 != m.dict_len
                || tables.len() as u64 != m.tables
            {
                return Err(CorpusError::Manifest(format!(
                    "totals diverge from the data file: manifest says {} runs / {} ticks / {} symbols / {} tables, scan found {} / {} / {} / {}",
                    m.runs,
                    m.ticks,
                    m.dict_len,
                    m.tables,
                    runs.len(),
                    total_ticks,
                    dict.len(),
                    tables.len()
                )));
            }
            for (i, (&(offset, ticks), run)) in m.index.iter().zip(&runs).enumerate() {
                if ticks != run.meta.ticks || offset != run.body.start as u64 - 9 {
                    return Err(CorpusError::Manifest(format!(
                        "index entry {i} does not match the data file"
                    )));
                }
            }
        }

        Ok(TraceCorpusReader {
            bytes,
            config,
            dict,
            tables,
            runs,
            total_ticks,
            recovered: manifest.is_none(),
            data_bytes: scanned,
        })
    }

    /// The timing policy the corpus was recorded under.
    pub fn config(&self) -> ExperimentConfig {
        self.config
    }

    /// Whether the corpus was opened without a manifest (recovery
    /// mode): a torn tail may have been dropped.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// Number of archived runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the corpus holds no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Whole-corpus totals.
    pub fn stats(&self) -> CorpusStats {
        CorpusStats {
            runs: self.runs.len(),
            ticks: self.total_ticks,
            data_bytes: self.data_bytes,
            dict_len: self.dict.len(),
            tables: self.tables.len(),
        }
    }

    /// Run `i`'s metadata.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn meta(&self, i: usize) -> &RunMeta {
        &self.runs[i].meta
    }

    /// The reader-side signal table for an archived table reference.
    pub fn table(&self, table_ref: u32) -> Option<&Arc<SignalTable>> {
        self.tables.get(table_ref as usize)
    }

    /// The corpus-global symbol dictionary.
    pub fn dict(&self) -> &SymDict {
        &self.dict
    }

    /// Strictly decodes run `i` back into a full [`FrameTrace`] — the
    /// scalar-replay and test path.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Corrupt`] if the run's columns fail to decode.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn decode_trace(&self, i: usize) -> Result<FrameTrace, CorpusError> {
        let run = &self.runs[i];
        let table = self.table(run.meta.table_ref).expect("validated at open");
        decode_run_trace(&self.bytes[run.body.clone()], table, &self.dict)
            .map(|(_, trace)| trace)
            .ok_or_else(|| {
                CorpusError::Corrupt(format!("run {i} (`{}`) failed to decode", run.meta.label))
            })
    }

    /// A streaming decoder over run `i`, borrowing the corpus buffer —
    /// the batched-replay path.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Corrupt`] if the run's header fails to re-parse.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn decoder(&self, i: usize) -> Result<RunDecoder<'_>, CorpusError> {
        let run = &self.runs[i];
        let table = self.table(run.meta.table_ref).expect("validated at open");
        RunDecoder::new(&self.bytes[run.body.clone()], table, &self.dict)
            .map(|(_, dec)| dec)
            .ok_or_else(|| {
                CorpusError::Corrupt(format!("run {i} (`{}`) failed to open", run.meta.label))
            })
    }
}

// --- batched replay ----------------------------------------------------

/// Default stripe width for corpus replay. Offline re-monitoring has
/// no per-lane simulator state competing for cache, so wide stripes
/// are strictly better: every fused DAG node decode amortizes over
/// more lanes. Matches the mega-grid sweep's production width.
pub const DEFAULT_REPLAY_WIDTH: usize = 128;

/// The outcome of re-monitoring a corpus with a goal suite.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusReplay {
    /// The aggregate the suite produces over the archived runs —
    /// bit-identical to running the same suite live over the same
    /// cells.
    pub aggregate: SweepAggregate,
    /// Runs re-monitored.
    pub runs: usize,
    /// Ticks re-observed (the denominator of replay ns/tick/run).
    pub ticks: u64,
}

/// Re-monitors every archived run with the goal suite `suite_for`
/// builds, streaming stripes of up to `width` runs through the batched
/// observer. `suite_for` is called once per (signal table, substrate
/// name) group with the *reader-side* table — compile the suite
/// against exactly that table.
///
/// Lanes retire individually as their runs end, so a stripe may mix
/// run lengths freely (ragged lanes); per-lane verdicts are identical
/// to scalar replay of each run alone.
///
/// # Errors
///
/// Fails on suite construction failure, undecodable runs, or a batched
/// observation error.
pub fn replay_corpus<F>(
    reader: &TraceCorpusReader,
    width: usize,
    suite_for: F,
) -> Result<CorpusReplay, CorpusError>
where
    F: FnMut(&str, &Arc<SignalTable>) -> Result<esafe_monitor::MonitorSuite, CorpusError>,
{
    replay_inner(reader, width, suite_for, |_, _| {})
}

/// [`replay_corpus`], additionally yielding each run's reconstructed
/// per-run report (violations, correlation, flags) in corpus order —
/// the per-run equivalence-testing hook.
///
/// # Errors
///
/// As [`replay_corpus`].
pub fn replay_corpus_reports<F>(
    reader: &TraceCorpusReader,
    width: usize,
    suite_for: F,
) -> Result<(CorpusReplay, Vec<RunReport>), CorpusError>
where
    F: FnMut(&str, &Arc<SignalTable>) -> Result<esafe_monitor::MonitorSuite, CorpusError>,
{
    let mut reports: Vec<(usize, RunReport)> = Vec::with_capacity(reader.len());
    let replay = replay_inner(reader, width, suite_for, |i, report| {
        reports.push((i, report));
    })?;
    reports.sort_by_key(|(i, _)| *i);
    Ok((replay, reports.into_iter().map(|(_, r)| r).collect()))
}

fn replay_inner<F, G>(
    reader: &TraceCorpusReader,
    width: usize,
    mut suite_for: F,
    mut sink: G,
) -> Result<CorpusReplay, CorpusError>
where
    F: FnMut(&str, &Arc<SignalTable>) -> Result<esafe_monitor::MonitorSuite, CorpusError>,
    G: FnMut(usize, RunReport),
{
    if width == 0 {
        return Err(CorpusError::Replay("stripe width must be ≥ 1".to_owned()));
    }
    // Group runs by (table, substrate) preserving corpus order: one
    // compiled suite per group, shared by every stripe in it.
    let mut groups: Vec<((u32, &str), Vec<usize>)> = Vec::new();
    for i in 0..reader.len() {
        let meta = reader.meta(i);
        let key = (meta.table_ref, meta.substrate.as_str());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(i),
            None => groups.push((key, vec![i])),
        }
    }

    // One compiled template per group (serial — `suite_for` is FnMut),
    // then every stripe re-monitors independently across cores. Per-lane
    // verdicts are stripe-local, so parallelism cannot change them; the
    // collected reports are re-sorted into corpus order before
    // aggregation, making the whole replay bit-deterministic.
    let mut templates = Vec::with_capacity(groups.len());
    let mut stripes: Vec<(usize, Vec<usize>)> = Vec::new();
    for ((table_ref, substrate), members) in groups {
        let table = reader.table(table_ref).expect("validated at open");
        templates.push((table, suite_for(substrate, table)?.template()));
        for chunk in members.chunks(width) {
            stripes.push((templates.len() - 1, chunk.to_vec()));
        }
    }
    let outcomes: Vec<Result<Vec<(usize, RunReport)>, CorpusError>> = stripes
        .into_par_iter()
        .map(|(group, chunk)| {
            let (table, template) = &templates[group];
            replay_stripe(reader, table, template, &chunk)
        })
        .collect();
    let mut reports: Vec<(usize, RunReport)> = Vec::with_capacity(reader.len());
    for outcome in outcomes {
        reports.extend(outcome?);
    }
    reports.sort_by_key(|&(i, _)| i);

    let mut agg = AggregateBuilder::new();
    let mut runs = 0usize;
    let mut ticks = 0u64;
    for (i, report) in reports {
        agg.absorb(&report);
        ticks += report.ticks;
        runs += 1;
        sink(i, report);
    }
    Ok(CorpusReplay {
        aggregate: agg.finish(),
        runs,
        ticks,
    })
}

/// Re-monitors one stripe of archived runs: decode each tick straight
/// into the lane slab, observe the slab, retire lanes as their runs
/// end, then extract one report per lane.
fn replay_stripe(
    reader: &TraceCorpusReader,
    table: &Arc<SignalTable>,
    template: &esafe_monitor::SuiteTemplate,
    chunk: &[usize],
) -> Result<Vec<(usize, RunReport)>, CorpusError> {
    let w = chunk.len();
    let mut batch = template.instantiate_batch(w);
    let mut slab = FrameBatch::new(table, w);
    let mut decoders = Vec::with_capacity(w);
    for &i in chunk {
        decoders.push(reader.decoder(i)?);
    }
    let lens: Vec<usize> = decoders.iter().map(RunDecoder::len).collect();
    for (lane, &len) in lens.iter().enumerate() {
        if len == 0 {
            batch.retire_lane(lane);
        }
    }
    let longest = lens.iter().copied().max().unwrap_or(0);
    for t in 0..longest {
        for (lane, dec) in decoders.iter_mut().enumerate() {
            if t < lens[lane] {
                dec.write_tick(&mut slab, lane, reader.dict())
                    .ok_or_else(|| {
                        CorpusError::Corrupt(format!(
                            "run {} (`{}`) failed to decode at tick {t}",
                            chunk[lane],
                            reader.meta(chunk[lane]).label
                        ))
                    })?;
            }
        }
        batch
            .observe_slab(&slab)
            .map_err(|e| CorpusError::Replay(format!("batched observe failed: {e}")))?;
        for (lane, &len) in lens.iter().enumerate() {
            if t + 1 == len {
                batch.retire_lane(lane);
            }
        }
    }
    batch.finish();
    let mut reports = Vec::with_capacity(w);
    for (lane, &i) in chunk.iter().enumerate() {
        let meta = reader.meta(i);
        let window = reader.config.correlation_window_ms.div_ceil(meta.dt_millis);
        let correlation = batch.correlate_lane(lane, window);
        let violations = batch.take_violations_lane(lane);
        let report = RunReport {
            substrate: meta.substrate.clone(),
            label: meta.label.clone(),
            config: reader.config,
            dt_millis: meta.dt_millis,
            scheduled_ticks: meta.ticks,
            ticks: meta.ticks,
            end_time_s: (meta.ticks.saturating_sub(1) * meta.dt_millis) as f64 / 1000.0,
            terminated_early: meta.terminated_early,
            terminal_event: meta.terminal_event.clone(),
            violations,
            correlation,
            ..RunReport::default()
        };
        reports.push((i, report));
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::Value;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("esafe-corpus-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn table() -> Arc<SignalTable> {
        let mut b = SignalTable::builder();
        b.bool("p");
        b.real("x");
        b.sym("cmd");
        b.finish()
    }

    fn trace_over(table: &Arc<SignalTable>, n: usize, phase: i64) -> FrameTrace {
        let p = table.id("p").unwrap();
        let x = table.id("x").unwrap();
        let cmd = table.id("cmd").unwrap();
        let mut trace = FrameTrace::new(table, 1);
        let mut frame = table.frame();
        for i in 0..n as i64 {
            frame.set(p, (i + phase) % 3 != 0);
            frame.set(x, (i + phase) as f64 * 0.5);
            frame.set(
                cmd,
                Value::sym(if (i + phase) % 2 == 0 { "GO" } else { "STOP" }),
            );
            trace.push(&frame);
        }
        trace
    }

    fn write_corpus(dir: &PathBuf, lens: &[usize]) -> CorpusStats {
        let table = table();
        let mut w = TraceCorpusWriter::create(dir, ExperimentConfig::default()).unwrap();
        for (i, &n) in lens.iter().enumerate() {
            let trace = trace_over(&table, n, i as i64);
            w.append_trace(&trace, "toy", &format!("run-{i}"), false, None)
                .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn corpus_round_trips_runs_and_stats() {
        let dir = temp_dir("round-trip");
        let stats = write_corpus(&dir, &[5, 9, 0, 3]);
        assert_eq!(stats.runs, 4);
        assert_eq!(stats.ticks, 17);
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.dict_len, 2);

        let r = TraceCorpusReader::open(&dir).unwrap();
        assert!(!r.recovered());
        assert_eq!(r.stats(), stats);
        assert_eq!(r.meta(1).label, "run-1");
        let reference = trace_over(r.table(0).unwrap(), 9, 1);
        assert_eq!(r.decode_trace(1).unwrap(), reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_an_existing_corpus() {
        let dir = temp_dir("refuse");
        write_corpus(&dir, &[2]);
        assert!(matches!(
            TraceCorpusWriter::create(&dir, ExperimentConfig::default()),
            Err(CorpusError::Header(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_without_manifest_recovers_complete_runs() {
        let dir = temp_dir("torn");
        write_corpus(&dir, &[4, 4, 4]);
        // Simulate a SIGKILL before finish(): drop the manifest and
        // tear the last record.
        std::fs::remove_file(dir.join(CORPUS_MANIFEST_FILE)).unwrap();
        let data = dir.join(CORPUS_DATA_FILE);
        let bytes = std::fs::read(&data).unwrap();
        std::fs::write(&data, &bytes[..bytes.len() - 7]).unwrap();

        let r = TraceCorpusReader::open(&dir).unwrap();
        assert!(r.recovered());
        assert_eq!(r.len(), 2, "the torn third run must be dropped");
        assert_eq!(r.decode_trace(0).unwrap().len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_corruption_is_a_hard_typed_error() {
        let dir = temp_dir("commit-flip");
        write_corpus(&dir, &[4, 4]);
        let data = dir.join(CORPUS_DATA_FILE);
        let mut bytes = std::fs::read(&data).unwrap();
        let mid = CORPUS_HEADER_BYTES + (bytes.len() - CORPUS_HEADER_BYTES) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&data, &bytes).unwrap();
        match TraceCorpusReader::open(&dir) {
            Err(CorpusError::Corrupt(_)) | Err(CorpusError::Manifest(_)) => {}
            other => panic!("expected a typed corruption error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_manifest_is_a_typed_error() {
        let dir = temp_dir("garbage-manifest");
        write_corpus(&dir, &[3]);
        std::fs::write(dir.join(CORPUS_MANIFEST_FILE), b"not a manifest at all").unwrap();
        assert!(matches!(
            TraceCorpusReader::open(&dir),
            Err(CorpusError::Manifest(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_matches_scalar_replay_per_run() {
        use esafe_monitor::{Location, MonitorSuite};

        let dir = temp_dir("replay-equiv");
        write_corpus(&dir, &[7, 13, 2, 0, 9]);
        let r = TraceCorpusReader::open(&dir).unwrap();

        let build = |table: &Arc<SignalTable>| -> esafe_monitor::MonitorSuite {
            let mut suite = MonitorSuite::new(Arc::clone(table));
            suite
                .add_goal(
                    "G1",
                    Location::new("toy"),
                    esafe_logic::parse("always(x < 5.0 || p)").unwrap(),
                )
                .unwrap();
            suite
                .add_subgoal(
                    "G1A",
                    "G1",
                    Location::new("toy"),
                    esafe_logic::parse("always(cmd == 'GO' || cmd == 'STOP')").unwrap(),
                )
                .unwrap();
            suite
        };

        for width in [1, 2, 4, 64] {
            let (replay, reports) =
                replay_corpus_reports(&r, width, |_, table| Ok(build(table))).unwrap();
            assert_eq!(replay.runs, 5);
            assert_eq!(replay.ticks, 31);

            let mut agg = AggregateBuilder::new();
            for (i, report) in reports.iter().enumerate() {
                // Scalar reference: replay the decoded trace through a
                // fresh scalar suite.
                let trace = r.decode_trace(i).unwrap();
                let mut scalar = build(r.table(0).unwrap());
                scalar.replay(&trace).unwrap();
                let window = r
                    .config()
                    .correlation_window_ms
                    .div_ceil(r.meta(i).dt_millis);
                scalar.correlate(window);
                let violations = scalar.take_violations();
                assert_eq!(report.violations, violations, "width {width}, run {i}");
                agg.absorb(report);
            }
            assert_eq!(agg.finish(), replay.aggregate);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
