//! Batch-parallel experiment sweeps over a grid of configurations.
//!
//! Two execution shapes share one cell runner:
//!
//! * **collect-all** ([`Sweep::run`] / [`Sweep::run_serial`] and their
//!   `_timed` variants) — every [`RunReport`] is kept, in cell order.
//!   This is the explicit API for tests, goldens, and callers that need
//!   per-run detail (violation tables, figure series); memory is O(cells).
//! * **streaming** ([`Sweep::run_aggregate`] /
//!   [`Sweep::run_aggregate_serial`]) — each worker folds the reports it
//!   produces into a per-worker partial [`SweepAggregate`]
//!   ([`AggregateBuilder`]), merged once at join. No report outlives its
//!   cell, so memory is O(workers) and grid size is bounded by time, not
//!   RAM — the path behind `repro --grid` and 10⁵+-cell sweeps.
//!
//! Both shapes produce the identical aggregate (every total is a
//! commutative sum), which the workspace's regression tests pin.

use crate::context::{RunContext, RunTiming, SuiteProvenance};
use crate::experiment::{Experiment, ExperimentConfig, ExperimentError, RunReport};
use crate::substrate::Substrate;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Deterministic per-cell seed: a splitmix64 mix of the sweep's base
/// seed and the cell index, so cell N gets the same seed no matter how
/// many threads run the sweep or in what order cells complete.
pub fn cell_seed(base: u64, index: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((index as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic seed for retry attempt `attempt` of a cell. Attempt 0
/// is exactly [`cell_seed`], so a sweep with retries disabled (or whose
/// cells never fail) is bit-identical to one that never heard of
/// retries; reseeded attempts mix the attempt number into the base so
/// every retry is itself reproducible.
pub fn retry_seed(base: u64, index: usize, attempt: u32) -> u64 {
    if attempt == 0 {
        cell_seed(base, index)
    } else {
        cell_seed(
            base ^ u64::from(attempt).wrapping_mul(0xa076_1d64_78bd_642f),
            index,
        )
    }
}

/// Why a quarantined cell failed — the `reason` leg of a
/// [`CellFailure`]'s provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureReason {
    /// Building or running the cell panicked. The payload is rendered to
    /// text (`&str`/`String` payloads verbatim) so provenance survives
    /// serialization.
    Panic {
        /// The panic payload's message.
        message: String,
    },
    /// The run returned an [`ExperimentError`] (compile failure, missing
    /// signal, …), rendered via `Display`.
    Error {
        /// The error's rendering.
        message: String,
    },
    /// The quarantine's tick-budget watchdog fired: the run was still
    /// live after `budget` ticks. Deliberately *not* retried — the
    /// harness is deterministic, so a runaway run stays runaway.
    TickBudgetExceeded {
        /// The budget that was exceeded, in ticks.
        budget: u64,
    },
}

/// Full provenance of one quarantined cell: which cell, under which
/// seed, after how many retries, and why. Carried in
/// [`SweepAggregate::quarantined`] / [`SweepReport::quarantined`] so a
/// fleet-scale sweep reports its casualties instead of aborting on them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellFailure {
    /// The cell's index in the sweep's grid.
    pub cell: usize,
    /// The seed of the final (failing) attempt.
    pub seed: u64,
    /// Retry attempts consumed before quarantining (0 = failed on the
    /// first try).
    pub retries: u32,
    /// What went wrong on the final attempt.
    pub reason: FailureReason,
}

/// Bounded retry policy for quarantined cells. The default retries
/// nothing: a failure is quarantined on first sight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (0 disables retries).
    pub attempts: u32,
    /// Whether each retry derives a fresh deterministic seed
    /// ([`retry_seed`]) instead of re-running the identical attempt.
    pub reseed: bool,
}

/// Fault-isolation policy for a sweep ([`Sweep::with_quarantine`]).
///
/// With a quarantine installed, a panicking or erroring cell no longer
/// aborts the sweep: the failure is caught (`catch_unwind` around the
/// cell), optionally retried per [`RetryPolicy`], and finally recorded
/// as a typed [`CellFailure`] in the aggregate while every other cell's
/// report stays bit-identical to an all-healthy run. The default policy
/// isolates faults but sets no tick budget and no retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Quarantine {
    /// Per-cell watchdog: a run still live after this many ticks is
    /// quarantined as [`FailureReason::TickBudgetExceeded`]. `None`
    /// disarms the watchdog.
    pub tick_budget: Option<u64>,
    /// Retry policy for panics and errors (tick-budget trips are
    /// deterministic and never retried).
    pub retry: RetryPolicy,
}

/// Renders a caught panic payload for [`FailureReason::Panic`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One guarded cell outcome: the successful report and its timing, or
/// the final attempt's failure — plus the retries consumed either way.
pub(crate) type GuardedOutcome = (Result<(RunReport, RunTiming), CellFailure>, u32);

/// A grid of experiment cells to fan across cores.
///
/// A cell is any description of one run — a `(Scenario, DefectSet)`
/// pair, a fault configuration, a seed index. The sweep builds a
/// [`Substrate`] per cell via the caller's factory, runs each under the
/// shared [`ExperimentConfig`], and returns reports in cell order, so
/// [`Sweep::run`] (rayon-parallel) and [`Sweep::run_serial`] produce
/// identical results.
#[derive(Debug, Clone)]
pub struct Sweep<C> {
    pub(crate) cells: Vec<C>,
    pub(crate) config: ExperimentConfig,
    pub(crate) base_seed: u64,
    pub(crate) quarantine: Option<Quarantine>,
}

impl<C: Sync> Sweep<C> {
    /// Creates a sweep over the given cells.
    pub fn new(cells: Vec<C>) -> Self {
        Sweep {
            cells,
            config: ExperimentConfig::default(),
            base_seed: 0,
            quarantine: None,
        }
    }

    /// Replaces the per-run timing policy.
    pub fn with_config(mut self, config: ExperimentConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the base seed mixed into every cell's deterministic seed.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Installs a fault-isolation policy: failing cells are quarantined
    /// as [`CellFailure`]s in the result instead of aborting the sweep.
    /// Off by default — without a quarantine every run path keeps the
    /// documented earliest-cell-error semantics unchanged.
    pub fn with_quarantine(mut self, quarantine: Quarantine) -> Self {
        self.quarantine = Some(quarantine);
        self
    }

    /// The sweep's cells, in run order.
    pub fn cells(&self) -> &[C] {
        &self.cells
    }

    /// Runs every cell in parallel across the available cores.
    ///
    /// `build` receives each cell and its deterministic seed
    /// ([`cell_seed`]) and returns the substrate to run. Each worker
    /// thread owns one pooled [`RunContext`] reused across the cells it
    /// executes (scratch frame, template-instantiated suite); pooling is
    /// observationally invisible, so reports come back in cell order,
    /// bit-identical to [`Sweep::run_serial`]. On error, the failure of
    /// the earliest cell is returned regardless of scheduling.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run<S, F>(&self, build: F) -> Result<SweepReport, ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S + Sync,
    {
        self.run_timed(build).map(|(report, _)| report)
    }

    /// [`Sweep::run`] plus the sweep's aggregated [`SweepStats`] —
    /// where the wall-clock went (setup vs ticking, summed over all
    /// workers) and how many suites were compiled, template-instantiated,
    /// or reused from a worker's pool.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_timed<S, F>(&self, build: F) -> Result<(SweepReport, SweepStats), ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S + Sync,
    {
        let indices: Vec<usize> = (0..self.cells.len()).collect();
        if let Some(q) = self.quarantine {
            let results: Vec<GuardedOutcome> = indices
                .into_par_iter()
                .map_init(RunContext::new, |ctx, i| {
                    self.run_cell_quarantined(q, ctx, i, &build)
                })
                .collect();
            return Ok(Self::collect_guarded(results));
        }
        let results: Vec<(Result<RunReport, ExperimentError>, RunTiming)> = indices
            .into_par_iter()
            .map_init(RunContext::new, |ctx, i| self.run_cell(ctx, i, &build))
            .collect();
        Self::collect_reports(results)
    }

    /// Runs every cell sequentially on the calling thread — the reference
    /// path the parallel runner must match bit for bit. One pooled
    /// [`RunContext`] serves every cell, in cell order.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_serial<S, F>(&self, build: F) -> Result<SweepReport, ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        self.run_serial_timed(build).map(|(report, _)| report)
    }

    /// [`Sweep::run_serial`] plus the aggregated [`SweepStats`].
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_serial_timed<S, F>(
        &self,
        build: F,
    ) -> Result<(SweepReport, SweepStats), ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        let mut ctx = RunContext::new();
        if let Some(q) = self.quarantine {
            let results: Vec<GuardedOutcome> = (0..self.cells.len())
                .map(|i| self.run_cell_quarantined(q, &mut ctx, i, &build))
                .collect();
            return Ok(Self::collect_guarded(results));
        }
        let results: Vec<(Result<RunReport, ExperimentError>, RunTiming)> = (0..self.cells.len())
            .map(|i| self.run_cell(&mut ctx, i, &build))
            .collect();
        Self::collect_reports(results)
    }

    /// Runs every cell in parallel, folding each report into a
    /// per-worker partial aggregate the moment it is produced — no
    /// report is retained, so memory is O(workers) regardless of grid
    /// size. The partials merge at join into the same
    /// [`SweepAggregate`] the collect-all paths compute (every total is
    /// a commutative sum), with the same pooled-context amortization.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order —
    /// identical to [`Sweep::run`] regardless of scheduling.
    pub fn run_aggregate<S, F>(
        &self,
        build: F,
    ) -> Result<(SweepAggregate, SweepStats), ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S + Sync,
    {
        let indices: Vec<usize> = (0..self.cells.len()).collect();
        if let Some(q) = self.quarantine {
            let partial = indices
                .into_par_iter()
                .map_init(RunContext::new, |ctx, i| {
                    self.run_cell_quarantined(q, ctx, i, &build)
                })
                .fold(Partial::default, |acc: Partial, outcome| {
                    acc.absorbed_guarded(outcome)
                })
                .reduce(Partial::default, Partial::merged);
            return partial.finish();
        }
        let partial = indices
            .into_par_iter()
            .map_init(RunContext::new, |ctx, i| (i, self.run_cell(ctx, i, &build)))
            .fold(Partial::default, |acc: Partial, (i, outcome)| {
                acc.absorbed(i, outcome)
            })
            .reduce(Partial::default, Partial::merged);
        partial.finish()
    }

    /// [`Sweep::run_aggregate`] on the calling thread: one pooled
    /// context, one accumulator, cells in order — the reference the
    /// parallel reducer must match exactly.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_aggregate_serial<S, F>(
        &self,
        build: F,
    ) -> Result<(SweepAggregate, SweepStats), ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        let mut ctx = RunContext::new();
        let mut partial = Partial::default();
        if let Some(q) = self.quarantine {
            for i in 0..self.cells.len() {
                partial =
                    partial.absorbed_guarded(self.run_cell_quarantined(q, &mut ctx, i, &build));
            }
            return partial.finish();
        }
        for i in 0..self.cells.len() {
            partial = partial.absorbed(i, self.run_cell(&mut ctx, i, &build));
        }
        partial.finish()
    }

    pub(crate) fn run_cell<S, F>(
        &self,
        ctx: &mut RunContext,
        index: usize,
        build: &F,
    ) -> (Result<RunReport, ExperimentError>, RunTiming)
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        let substrate = build(&self.cells[index], cell_seed(self.base_seed, index));
        match Experiment::new(&substrate)
            .with_config(self.config)
            .run_in(ctx)
        {
            Ok((report, timing)) => (Ok(report), timing),
            Err(e) => (Err(e), RunTiming::default()),
        }
    }

    /// One fault-isolated cell: `catch_unwind` around build + run,
    /// tick-budget trips translated to
    /// [`FailureReason::TickBudgetExceeded`], panics and errors retried
    /// per the quarantine's [`RetryPolicy`]. A healthy cell's report is
    /// bit-identical to the unguarded [`Sweep::run_cell`]'s — the guard
    /// only changes what happens to failures.
    pub(crate) fn run_cell_quarantined<S, F>(
        &self,
        q: Quarantine,
        ctx: &mut RunContext,
        index: usize,
        build: &F,
    ) -> GuardedOutcome
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        let mut attempt = 0u32;
        loop {
            let seed = if q.retry.reseed {
                retry_seed(self.base_seed, index, attempt)
            } else {
                cell_seed(self.base_seed, index)
            };
            match self.attempt_cell(q, ctx, index, seed, build) {
                Ok(ok) => return (Ok(ok), attempt),
                Err(reason) => {
                    let deterministic = matches!(reason, FailureReason::TickBudgetExceeded { .. });
                    if !deterministic && attempt < q.retry.attempts {
                        attempt += 1;
                        continue;
                    }
                    return (
                        Err(CellFailure {
                            cell: index,
                            seed,
                            retries: attempt,
                            reason,
                        }),
                        attempt,
                    );
                }
            }
        }
    }

    fn attempt_cell<S, F>(
        &self,
        q: Quarantine,
        ctx: &mut RunContext,
        index: usize,
        seed: u64,
        build: &F,
    ) -> Result<(RunReport, RunTiming), FailureReason>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        // `AssertUnwindSafe`: on a caught panic the context (the only
        // mutable state crossing the boundary) is discarded and rebuilt,
        // so no torn pooled state can leak into a later run.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let substrate = build(&self.cells[index], seed);
            Experiment::new(&substrate)
                .with_config(self.config)
                .with_tick_budget(q.tick_budget)
                .run_in(ctx)
        }));
        match caught {
            Ok(Ok(ok)) => Ok(ok),
            Ok(Err(ExperimentError::TickBudget { budget })) => {
                Err(FailureReason::TickBudgetExceeded { budget })
            }
            Ok(Err(e)) => Err(FailureReason::Error {
                message: e.to_string(),
            }),
            Err(payload) => {
                *ctx = RunContext::new();
                Err(FailureReason::Panic {
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    pub(crate) fn collect_reports(
        results: Vec<(Result<RunReport, ExperimentError>, RunTiming)>,
    ) -> Result<(SweepReport, SweepStats), ExperimentError> {
        let mut runs = Vec::with_capacity(results.len());
        let mut stats = SweepStats::default();
        for (result, timing) in results {
            runs.push(result?);
            stats.absorb(timing);
        }
        Ok((
            SweepReport {
                runs,
                ..SweepReport::default()
            },
            stats,
        ))
    }

    /// Assembles a guarded sweep's results: healthy reports in cell
    /// order, quarantined cells sorted by index, retries summed.
    /// [`SweepStats`] covers healthy runs only — a quarantined cell
    /// produced no meaningful timing.
    pub(crate) fn collect_guarded(results: Vec<GuardedOutcome>) -> (SweepReport, SweepStats) {
        let mut report = SweepReport::default();
        let mut stats = SweepStats::default();
        for (result, retries) in results {
            report.retries += retries as usize;
            match result {
                Ok((run, timing)) => {
                    report.runs.push(run);
                    stats.absorb(timing);
                }
                Err(failure) => report.quarantined.push(failure),
            }
        }
        report.quarantined.sort_by_key(|f| f.cell);
        (report, stats)
    }
}

/// One worker's streaming fold state: the partial aggregate, the timing
/// totals, and the earliest failing cell seen so far. Merging partials
/// is commutative, so the reduction order across workers cannot change
/// the result.
#[derive(Debug, Default)]
pub(crate) struct Partial {
    aggregate: AggregateBuilder,
    stats: SweepStats,
    error: Option<(usize, ExperimentError)>,
}

impl Partial {
    /// Folds one cell's outcome in, keeping the earliest error by cell
    /// index.
    pub(crate) fn absorbed(
        mut self,
        index: usize,
        (result, timing): (Result<RunReport, ExperimentError>, RunTiming),
    ) -> Partial {
        self.stats.absorb(timing);
        match result {
            Ok(report) => self.aggregate.absorb(&report),
            Err(e) => {
                if self.error.as_ref().is_none_or(|(j, _)| index < *j) {
                    self.error = Some((index, e));
                }
            }
        }
        self
    }

    /// Folds one guarded cell's outcome in: healthy reports and
    /// quarantined failures both land in the aggregate (a guarded sweep
    /// never carries an error), failed attempts contribute no timing.
    pub(crate) fn absorbed_guarded(mut self, (result, retries): GuardedOutcome) -> Partial {
        self.aggregate.add_retries(retries as usize);
        match result {
            Ok((report, timing)) => {
                self.stats.absorb(timing);
                self.aggregate.absorb(&report);
            }
            Err(failure) => self.aggregate.absorb_failure(failure),
        }
        self
    }

    /// Merges two workers' partials.
    pub(crate) fn merged(mut self, other: Partial) -> Partial {
        self.aggregate.merge(other.aggregate);
        self.stats.merge(other.stats);
        self.error = match (self.error, other.error) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
            (a, b) => a.or(b),
        };
        self
    }

    pub(crate) fn finish(self) -> Result<(SweepAggregate, SweepStats), ExperimentError> {
        match self.error {
            Some((_, e)) => Err(e),
            None => Ok((self.aggregate.finish(), self.stats)),
        }
    }
}

/// Streaming accumulator for [`SweepAggregate`]: absorb reports one at a
/// time, merge accumulators across workers, then
/// [`finish`](AggregateBuilder::finish). Every operation is a
/// commutative sum, so any absorb/merge order yields the same aggregate
/// — the property that makes the streaming sweep bit-identical to
/// collect-then-aggregate.
#[derive(Debug, Clone, Default)]
pub struct AggregateBuilder {
    runs: usize,
    terminated_early: usize,
    terminal_events: usize,
    hits: usize,
    false_negatives: usize,
    false_positives: usize,
    violations_by_monitor: BTreeMap<String, usize>,
    quarantined: Vec<CellFailure>,
    retries: usize,
}

impl AggregateBuilder {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's totals in. The report is only read — callers
    /// drop it immediately after, which is the point: nothing of the
    /// run outlives this call.
    pub fn absorb(&mut self, run: &RunReport) {
        self.runs += 1;
        self.terminated_early += usize::from(run.terminated_early);
        self.terminal_events += usize::from(run.terminal_event.is_some());
        for (id, intervals) in &run.violations {
            *self.violations_by_monitor.entry(id.clone()).or_default() += intervals.len();
        }
        for row in &run.correlation.rows {
            self.hits += row.hits;
            self.false_negatives += row.false_negatives;
            self.false_positives += row.false_positives;
        }
    }

    /// Folds one journaled cell delta in — the checkpoint-resume
    /// mirror of [`AggregateBuilder::absorb`]: replaying a
    /// [`CellDelta`](crate::journal::CellDelta) extracted from a report
    /// adds exactly what absorbing the report itself would have.
    pub fn absorb_delta(&mut self, delta: &crate::journal::CellDelta) {
        self.runs += 1;
        self.terminated_early += usize::from(delta.terminated_early);
        self.terminal_events += usize::from(delta.terminal_event);
        self.hits += delta.hits as usize;
        self.false_negatives += delta.false_negatives as usize;
        self.false_positives += delta.false_positives as usize;
        for (id, count) in &delta.violations {
            *self.violations_by_monitor.entry(id.clone()).or_default() += *count as usize;
        }
        self.retries += delta.retries as usize;
    }

    /// Records one quarantined cell's provenance.
    pub fn absorb_failure(&mut self, failure: CellFailure) {
        self.quarantined.push(failure);
    }

    /// Adds retry attempts consumed by cells (successful or not).
    pub fn add_retries(&mut self, retries: usize) {
        self.retries += retries;
    }

    /// Merges another accumulator in (the sweep's join step).
    pub fn merge(&mut self, other: AggregateBuilder) {
        self.runs += other.runs;
        self.terminated_early += other.terminated_early;
        self.terminal_events += other.terminal_events;
        self.hits += other.hits;
        self.false_negatives += other.false_negatives;
        self.false_positives += other.false_positives;
        for (id, count) in other.violations_by_monitor {
            *self.violations_by_monitor.entry(id).or_default() += count;
        }
        self.quarantined.extend(other.quarantined);
        self.retries += other.retries;
    }

    /// The order-independent totals (per-monitor counts sorted by id,
    /// quarantined cells sorted by index).
    pub fn finish(self) -> SweepAggregate {
        let mut quarantined = self.quarantined;
        quarantined.sort_by_key(|f| f.cell);
        SweepAggregate {
            runs: self.runs,
            terminated_early: self.terminated_early,
            terminal_events: self.terminal_events,
            hits: self.hits,
            false_negatives: self.false_negatives,
            false_positives: self.false_positives,
            violations_by_monitor: self.violations_by_monitor.into_iter().collect(),
            quarantined,
            retries: self.retries,
        }
    }
}

/// Aggregated timing/amortization counters of one sweep. Durations are
/// summed across workers (CPU-time-like, not wall-clock: on N busy
/// cores the sum exceeds elapsed time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Total per-run setup (suite acquisition, simulator build, scratch
    /// frames).
    pub setup: Duration,
    /// Total tick-loop time (simulate, observe, monitor, sample).
    pub ticking: Duration,
    /// Runs whose suite was compiled from scratch (no template).
    pub suites_compiled: usize,
    /// Runs whose suite was instantiated from a [`SuiteTemplate`]
    /// (first use of a template on a worker).
    ///
    /// [`SuiteTemplate`]: esafe_monitor::SuiteTemplate
    pub suites_instantiated: usize,
    /// Runs that reset and reused a worker's pooled suite.
    pub suites_reused: usize,
}

impl SweepStats {
    /// Folds one run's timing into the totals.
    pub(crate) fn absorb(&mut self, timing: RunTiming) {
        self.setup += timing.setup;
        self.ticking += timing.ticking;
        match timing.suite {
            SuiteProvenance::Compiled => self.suites_compiled += 1,
            SuiteProvenance::Instantiated => self.suites_instantiated += 1,
            SuiteProvenance::Reused => self.suites_reused += 1,
        }
    }

    /// Merges another sweep's (or worker's) totals in.
    pub fn merge(&mut self, other: SweepStats) {
        self.setup += other.setup;
        self.ticking += other.ticking;
        self.suites_compiled += other.suites_compiled;
        self.suites_instantiated += other.suites_instantiated;
        self.suites_reused += other.suites_reused;
    }

    /// Number of runs folded in.
    pub fn runs(&self) -> usize {
        self.suites_compiled + self.suites_instantiated + self.suites_reused
    }
}

/// All reports of a sweep, in cell order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// One report per healthy cell; quarantined cells are absent.
    pub runs: Vec<RunReport>,
    /// Cells quarantined by fault isolation, sorted by cell index.
    /// Empty unless the sweep ran [`Sweep::with_quarantine`].
    pub quarantined: Vec<CellFailure>,
    /// Retry attempts consumed across all cells.
    pub retries: usize,
}

impl SweepReport {
    /// The report for a cell label, if present.
    pub fn for_label(&self, label: &str) -> Option<&RunReport> {
        self.runs.iter().find(|r| r.label == label)
    }

    /// Aggregates the sweep into order-independent totals: every count is
    /// a commutative sum and per-monitor totals are keyed (sorted) by
    /// monitor id, so any execution order yields the same aggregate.
    /// (Same accumulator as the streaming [`Sweep::run_aggregate`] path,
    /// so collect-then-aggregate and streaming agree by construction.)
    pub fn aggregate(&self) -> SweepAggregate {
        let mut builder = AggregateBuilder::new();
        for run in &self.runs {
            builder.absorb(run);
        }
        for failure in &self.quarantined {
            builder.absorb_failure(failure.clone());
        }
        builder.add_retries(self.retries);
        builder.finish()
    }
}

/// Order-independent totals of a sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepAggregate {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Runs that aborted before their schedule.
    pub terminated_early: usize,
    /// Runs that hit a terminal event.
    pub terminal_events: usize,
    /// Total hits across all runs and goals.
    pub hits: usize,
    /// Total false negatives (residual emergence).
    pub false_negatives: usize,
    /// Total false positives (restriction or redundancy).
    pub false_positives: usize,
    /// Violation-interval counts per monitor id, sorted by id.
    pub violations_by_monitor: Vec<(String, usize)>,
    /// Cells quarantined by fault isolation, sorted by cell index, with
    /// full provenance. Empty unless the sweep ran
    /// [`Sweep::with_quarantine`].
    pub quarantined: Vec<CellFailure>,
    /// Retry attempts consumed across all cells.
    pub retries: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::{parse, EvalError, Frame, SignalId, SignalTable};
    use esafe_monitor::{Location, MonitorSuite};
    use esafe_sim::{SimTime, Simulator, Subsystem};
    use std::sync::Arc;

    /// Emits `seed % cap` every tick; the monitor requires `y < 3`.
    struct Emit {
        y: SignalId,
        value: f64,
    }

    impl Subsystem for Emit {
        fn name(&self) -> &str {
            "emit"
        }
        fn step(&mut self, _t: &SimTime, _prev: &Frame, next: &mut Frame) {
            next.set(self.y, self.value);
        }
    }

    struct EmitSubstrate {
        value: f64,
        label: String,
        table: Arc<SignalTable>,
        y: SignalId,
    }

    impl Substrate for EmitSubstrate {
        fn name(&self) -> &str {
            "emit"
        }
        fn label(&self) -> String {
            self.label.clone()
        }
        fn duration_ms(&self) -> u64 {
            20
        }
        fn signal_table(&self) -> &Arc<SignalTable> {
            &self.table
        }
        fn build_simulator(&self) -> Simulator {
            let mut sim = Simulator::new(1, &self.table);
            sim.add(Emit {
                y: self.y,
                value: self.value,
            });
            sim.init_with(|f| f.set(self.y, 0.0));
            sim
        }
        fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
            let mut suite = MonitorSuite::new(self.table.clone());
            suite.add_goal(
                "y-bound",
                Location::new("Emit"),
                parse("y < 3.0").expect("valid formula"),
            )?;
            Ok(suite)
        }
    }

    fn build(cell: &u64, seed: u64) -> EmitSubstrate {
        let mut b = SignalTable::builder();
        let y = b.real("y");
        EmitSubstrate {
            value: (cell % 5) as f64,
            label: format!("cell-{cell}-seed-{seed:016x}"),
            table: b.finish(),
            y,
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let sweep = Sweep::new((0..16).collect::<Vec<u64>>()).with_base_seed(99);
        let parallel = sweep.run(build).unwrap();
        let serial = sweep.run_serial(build).unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(parallel.aggregate(), serial.aggregate());
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..32).map(|i| cell_seed(7, i)).collect();
        let b: Vec<u64> = (0..32).map(|i| cell_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "per-cell seeds must not collide");
        assert_ne!(cell_seed(7, 0), cell_seed(8, 0), "base seed must matter");
    }

    #[test]
    fn aggregate_counts_are_order_independent() {
        let sweep = Sweep::new(vec![1u64, 4, 2, 3]);
        let report = sweep.run_serial(build).unwrap();
        let mut reversed = report.clone();
        reversed.runs.reverse();
        assert_eq!(report.aggregate(), reversed.aggregate());
        // Cells 3 and 4 emit y ≥ 3: two runs violate, twenty ticks each
        // merge into one interval per run.
        let agg = report.aggregate();
        assert_eq!(agg.runs, 4);
        assert_eq!(agg.violations_by_monitor, vec![("y-bound".to_string(), 2)]);
        assert_eq!(agg.false_negatives, 2, "no subgoals: violations are FNs");
    }

    #[test]
    fn timed_runs_report_stats_and_match_untimed_reports() {
        let sweep = Sweep::new((0..8).collect::<Vec<u64>>()).with_base_seed(5);
        let (timed, stats) = sweep.run_timed(build).unwrap();
        assert_eq!(timed, sweep.run(build).unwrap());
        assert_eq!(timed, sweep.run_serial(build).unwrap());
        // EmitSubstrate has no template: every suite is compiled.
        assert_eq!(stats.runs(), 8);
        assert_eq!(stats.suites_compiled, 8);
        assert_eq!(stats.suites_instantiated + stats.suites_reused, 0);
        let (_, serial_stats) = sweep.run_serial_timed(build).unwrap();
        assert_eq!(serial_stats.runs(), 8);
    }

    #[test]
    fn streaming_aggregate_matches_collect_all() {
        let sweep = Sweep::new((0..64).collect::<Vec<u64>>()).with_base_seed(13);
        let collected = sweep.run_timed(build).unwrap();
        let (streamed, streamed_stats) = sweep.run_aggregate(build).unwrap();
        let (serial_streamed, serial_stats) = sweep.run_aggregate_serial(build).unwrap();
        assert_eq!(streamed, collected.0.aggregate());
        assert_eq!(serial_streamed, collected.0.aggregate());
        assert_eq!(streamed_stats.runs(), 64);
        assert_eq!(serial_stats.runs(), 64);
        assert_eq!(
            streamed_stats.suites_compiled
                + streamed_stats.suites_instantiated
                + streamed_stats.suites_reused,
            collected.1.suites_compiled
                + collected.1.suites_instantiated
                + collected.1.suites_reused
        );
    }

    #[test]
    fn streaming_aggregate_over_an_empty_sweep_is_empty() {
        let sweep = Sweep::new(Vec::<u64>::new());
        let (agg, stats) = sweep.run_aggregate(build).unwrap();
        assert_eq!(agg, SweepAggregate::default());
        assert_eq!(stats.runs(), 0);
    }

    /// An [`EmitSubstrate`] whose goal suite references a signal the
    /// simulator never sets, so every run fails with a per-cell
    /// `MissingVar` naming its label — for error-ordering tests.
    struct BrokenSubstrate(EmitSubstrate);

    impl Substrate for BrokenSubstrate {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn label(&self) -> String {
            self.0.label()
        }
        fn duration_ms(&self) -> u64 {
            self.0.duration_ms()
        }
        fn signal_table(&self) -> &Arc<SignalTable> {
            self.0.signal_table()
        }
        fn build_simulator(&self) -> esafe_sim::Simulator {
            self.0.build_simulator()
        }
        fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
            let mut suite = MonitorSuite::new(self.0.table.clone());
            suite.add_goal(
                self.0.label.clone(),
                Location::new("Emit"),
                parse("ghost < 3.0").expect("valid formula"),
            )?;
            Ok(suite)
        }
    }

    fn build_broken(cell: &u64, seed: u64) -> BrokenSubstrate {
        let mut b = SignalTable::builder();
        let y = b.real("y");
        b.real("ghost");
        BrokenSubstrate(EmitSubstrate {
            value: (cell % 5) as f64,
            label: format!("cell-{cell}-seed-{seed:016x}"),
            table: b.finish(),
            y,
        })
    }

    #[test]
    fn streaming_reports_the_earliest_cell_error() {
        // Every cell fails with a MissingVar from a monitor named after
        // its own label; the streaming path must surface cell 0's error,
        // exactly like the collect-all path, regardless of scheduling.
        let sweep = Sweep::new((0..8).collect::<Vec<u64>>()).with_base_seed(3);
        let collected = sweep.run(build_broken);
        let streamed = sweep.run_aggregate(build_broken).map(|(a, _)| a);
        match (collected, streamed) {
            (Err(a), Err(b)) => {
                assert!(format!("{a}").contains("cell-0"), "collect path: {a}");
                assert_eq!(format!("{a}"), format!("{b}"));
            }
            (a, b) => panic!("expected both paths to fail: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn labels_are_addressable() {
        let sweep = Sweep::new(vec![2u64]);
        let report = sweep.run_serial(build).unwrap();
        let label = &report.runs[0].label;
        assert!(report.for_label(label).is_some());
        assert!(report.for_label("nope").is_none());
    }

    /// The golden earliest-cell-error contract, quarantine OFF (the
    /// default): every run path — parallel, serial, batched, and all
    /// three streaming-aggregate forms — surfaces cell 0's error with
    /// an identical rendering, regardless of scheduling.
    #[test]
    fn every_run_path_reports_the_earliest_cell_error_identically() {
        let sweep = Sweep::new((0..8).collect::<Vec<u64>>()).with_base_seed(3);
        let renderings: Vec<String> = [
            sweep.run(build_broken).err(),
            sweep.run_serial(build_broken).err(),
            sweep.run_batched(build_broken, 4).err(),
            sweep.run_aggregate(build_broken).map(|_| ()).err(),
            sweep.run_aggregate_serial(build_broken).map(|_| ()).err(),
            sweep
                .run_aggregate_batched(build_broken, 4)
                .map(|_| ())
                .err(),
        ]
        .into_iter()
        .map(|e| format!("{}", e.expect("every path must fail")))
        .collect();
        assert!(renderings[0].contains("cell-0"), "{}", renderings[0]);
        for (i, rendering) in renderings.iter().enumerate() {
            assert_eq!(rendering, &renderings[0], "path {i} diverged");
        }
    }

    /// Panics in cell 2's build, caught: builds the rest normally.
    fn build_panicky(cell: &u64, seed: u64) -> EmitSubstrate {
        if *cell == 2 {
            panic!("cell {cell} exploded during build");
        }
        build(cell, seed)
    }

    #[test]
    fn quarantine_isolates_a_panicking_cell_with_provenance() {
        let base = 31u64;
        let sweep = Sweep::new((0..6).collect::<Vec<u64>>()).with_base_seed(base);
        let baseline = sweep.run_serial(build).unwrap();
        let guarded = sweep.clone().with_quarantine(Quarantine::default());

        let report = guarded.run(build_panicky).unwrap();
        let serial = guarded.run_serial(build_panicky).unwrap();
        assert_eq!(report, serial, "guarded parallel must match guarded serial");

        // Every healthy cell's report is bit-identical to the
        // all-healthy sweep; only the panicking cell is missing.
        let mut expected = baseline.runs.clone();
        expected.remove(2);
        assert_eq!(report.runs, expected);
        assert_eq!(report.retries, 0);
        assert_eq!(
            report.quarantined,
            vec![CellFailure {
                cell: 2,
                seed: cell_seed(base, 2),
                retries: 0,
                reason: FailureReason::Panic {
                    message: "cell 2 exploded during build".to_owned(),
                },
            }]
        );

        // The streaming-aggregate paths carry the same provenance.
        let (agg, _) = guarded.run_aggregate(build_panicky).unwrap();
        let (agg_serial, _) = guarded.run_aggregate_serial(build_panicky).unwrap();
        assert_eq!(agg, report.aggregate());
        assert_eq!(agg_serial, agg);
        assert_eq!(agg.quarantined, report.quarantined);
    }

    #[test]
    fn quarantine_retries_flaky_cells_with_fresh_seeds() {
        let base = 77u64;
        let cells: Vec<u64> = (0..4).collect();
        // Cell values equal indices here, so a build can recognize a
        // first-attempt seed and flake exactly once per cell.
        let flaky = |cell: &u64, seed: u64| {
            if seed == cell_seed(base, *cell as usize) {
                panic!("first attempt flake");
            }
            build(cell, seed)
        };
        let sweep = Sweep::new(cells)
            .with_base_seed(base)
            .with_quarantine(Quarantine {
                tick_budget: None,
                retry: RetryPolicy {
                    attempts: 1,
                    reseed: true,
                },
            });
        let report = sweep.run_serial(flaky).unwrap();
        assert!(report.quarantined.is_empty());
        assert_eq!(report.retries, 4, "each cell burned one retry");
        for (i, run) in report.runs.iter().enumerate() {
            let reseeded = retry_seed(base, i, 1);
            assert_eq!(run.label, format!("cell-{i}-seed-{reseeded:016x}"));
        }
        assert_eq!(report.aggregate().retries, 4);
    }

    #[test]
    fn quarantine_exhausts_retries_then_records_the_final_seed() {
        let base = 13u64;
        let always_panics = |cell: &u64, _seed: u64| -> EmitSubstrate {
            panic!("cell {cell} always fails");
        };
        let sweep = Sweep::new(vec![0u64])
            .with_base_seed(base)
            .with_quarantine(Quarantine {
                tick_budget: None,
                retry: RetryPolicy {
                    attempts: 2,
                    reseed: true,
                },
            });
        let report = sweep.run_serial(always_panics).unwrap();
        assert!(report.runs.is_empty());
        assert_eq!(report.retries, 2);
        assert_eq!(
            report.quarantined,
            vec![CellFailure {
                cell: 0,
                seed: retry_seed(base, 0, 2),
                retries: 2,
                reason: FailureReason::Panic {
                    message: "cell 0 always fails".to_owned(),
                },
            }]
        );
        // Without reseeding, every attempt (and the recorded seed) is
        // the canonical cell seed.
        let fixed = Sweep::new(vec![0u64])
            .with_base_seed(base)
            .with_quarantine(Quarantine {
                tick_budget: None,
                retry: RetryPolicy {
                    attempts: 1,
                    reseed: false,
                },
            });
        let report = fixed.run_serial(always_panics).unwrap();
        assert_eq!(report.quarantined[0].seed, cell_seed(base, 0));
        assert_eq!(report.quarantined[0].retries, 1);
    }

    #[test]
    fn tick_budget_trips_are_quarantined_and_never_retried() {
        // EmitSubstrate runs 20 ticks; a budget of 5 trips every cell.
        // The trip is deterministic, so the retry policy must not burn
        // attempts on it.
        let sweep = Sweep::new((0..3).collect::<Vec<u64>>())
            .with_base_seed(9)
            .with_quarantine(Quarantine {
                tick_budget: Some(5),
                retry: RetryPolicy {
                    attempts: 3,
                    reseed: true,
                },
            });
        let report = sweep.run_serial(build).unwrap();
        assert!(report.runs.is_empty());
        assert_eq!(report.retries, 0, "deterministic trips are not retried");
        assert_eq!(report.quarantined.len(), 3);
        for (i, failure) in report.quarantined.iter().enumerate() {
            assert_eq!(failure.cell, i);
            assert_eq!(failure.retries, 0);
            assert_eq!(
                failure.reason,
                FailureReason::TickBudgetExceeded { budget: 5 }
            );
        }
        // A budget covering the schedule changes nothing.
        let roomy = Sweep::new((0..3).collect::<Vec<u64>>())
            .with_base_seed(9)
            .with_quarantine(Quarantine {
                tick_budget: Some(20),
                retry: RetryPolicy::default(),
            });
        let unguarded = Sweep::new((0..3).collect::<Vec<u64>>()).with_base_seed(9);
        assert_eq!(
            roomy.run_serial(build).unwrap().runs,
            unguarded.run_serial(build).unwrap().runs
        );
    }
}
