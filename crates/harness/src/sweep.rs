//! Batch-parallel experiment sweeps over a grid of configurations.
//!
//! Two execution shapes share one cell runner:
//!
//! * **collect-all** ([`Sweep::run`] / [`Sweep::run_serial`] and their
//!   `_timed` variants) — every [`RunReport`] is kept, in cell order.
//!   This is the explicit API for tests, goldens, and callers that need
//!   per-run detail (violation tables, figure series); memory is O(cells).
//! * **streaming** ([`Sweep::run_aggregate`] /
//!   [`Sweep::run_aggregate_serial`]) — each worker folds the reports it
//!   produces into a per-worker partial [`SweepAggregate`]
//!   ([`AggregateBuilder`]), merged once at join. No report outlives its
//!   cell, so memory is O(workers) and grid size is bounded by time, not
//!   RAM — the path behind `repro --grid` and 10⁵+-cell sweeps.
//!
//! Both shapes produce the identical aggregate (every total is a
//! commutative sum), which the workspace's regression tests pin.

use crate::context::{RunContext, RunTiming, SuiteProvenance};
use crate::experiment::{Experiment, ExperimentConfig, ExperimentError, RunReport};
use crate::substrate::Substrate;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Deterministic per-cell seed: a splitmix64 mix of the sweep's base
/// seed and the cell index, so cell N gets the same seed no matter how
/// many threads run the sweep or in what order cells complete.
pub fn cell_seed(base: u64, index: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((index as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A grid of experiment cells to fan across cores.
///
/// A cell is any description of one run — a `(Scenario, DefectSet)`
/// pair, a fault configuration, a seed index. The sweep builds a
/// [`Substrate`] per cell via the caller's factory, runs each under the
/// shared [`ExperimentConfig`], and returns reports in cell order, so
/// [`Sweep::run`] (rayon-parallel) and [`Sweep::run_serial`] produce
/// identical results.
#[derive(Debug, Clone)]
pub struct Sweep<C> {
    pub(crate) cells: Vec<C>,
    pub(crate) config: ExperimentConfig,
    pub(crate) base_seed: u64,
}

impl<C: Sync> Sweep<C> {
    /// Creates a sweep over the given cells.
    pub fn new(cells: Vec<C>) -> Self {
        Sweep {
            cells,
            config: ExperimentConfig::default(),
            base_seed: 0,
        }
    }

    /// Replaces the per-run timing policy.
    pub fn with_config(mut self, config: ExperimentConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the base seed mixed into every cell's deterministic seed.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The sweep's cells, in run order.
    pub fn cells(&self) -> &[C] {
        &self.cells
    }

    /// Runs every cell in parallel across the available cores.
    ///
    /// `build` receives each cell and its deterministic seed
    /// ([`cell_seed`]) and returns the substrate to run. Each worker
    /// thread owns one pooled [`RunContext`] reused across the cells it
    /// executes (scratch frame, template-instantiated suite); pooling is
    /// observationally invisible, so reports come back in cell order,
    /// bit-identical to [`Sweep::run_serial`]. On error, the failure of
    /// the earliest cell is returned regardless of scheduling.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run<S, F>(&self, build: F) -> Result<SweepReport, ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S + Sync,
    {
        self.run_timed(build).map(|(report, _)| report)
    }

    /// [`Sweep::run`] plus the sweep's aggregated [`SweepStats`] —
    /// where the wall-clock went (setup vs ticking, summed over all
    /// workers) and how many suites were compiled, template-instantiated,
    /// or reused from a worker's pool.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_timed<S, F>(&self, build: F) -> Result<(SweepReport, SweepStats), ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S + Sync,
    {
        let indices: Vec<usize> = (0..self.cells.len()).collect();
        let results: Vec<(Result<RunReport, ExperimentError>, RunTiming)> = indices
            .into_par_iter()
            .map_init(RunContext::new, |ctx, i| self.run_cell(ctx, i, &build))
            .collect();
        Self::collect_reports(results)
    }

    /// Runs every cell sequentially on the calling thread — the reference
    /// path the parallel runner must match bit for bit. One pooled
    /// [`RunContext`] serves every cell, in cell order.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_serial<S, F>(&self, build: F) -> Result<SweepReport, ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        self.run_serial_timed(build).map(|(report, _)| report)
    }

    /// [`Sweep::run_serial`] plus the aggregated [`SweepStats`].
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_serial_timed<S, F>(
        &self,
        build: F,
    ) -> Result<(SweepReport, SweepStats), ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        let mut ctx = RunContext::new();
        let results: Vec<(Result<RunReport, ExperimentError>, RunTiming)> = (0..self.cells.len())
            .map(|i| self.run_cell(&mut ctx, i, &build))
            .collect();
        Self::collect_reports(results)
    }

    /// Runs every cell in parallel, folding each report into a
    /// per-worker partial aggregate the moment it is produced — no
    /// report is retained, so memory is O(workers) regardless of grid
    /// size. The partials merge at join into the same
    /// [`SweepAggregate`] the collect-all paths compute (every total is
    /// a commutative sum), with the same pooled-context amortization.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order —
    /// identical to [`Sweep::run`] regardless of scheduling.
    pub fn run_aggregate<S, F>(
        &self,
        build: F,
    ) -> Result<(SweepAggregate, SweepStats), ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S + Sync,
    {
        let indices: Vec<usize> = (0..self.cells.len()).collect();
        let partial = indices
            .into_par_iter()
            .map_init(RunContext::new, |ctx, i| (i, self.run_cell(ctx, i, &build)))
            .fold(Partial::default, |acc: Partial, (i, outcome)| {
                acc.absorbed(i, outcome)
            })
            .reduce(Partial::default, Partial::merged);
        partial.finish()
    }

    /// [`Sweep::run_aggregate`] on the calling thread: one pooled
    /// context, one accumulator, cells in order — the reference the
    /// parallel reducer must match exactly.
    ///
    /// # Errors
    ///
    /// Returns the first cell's [`ExperimentError`], by cell order.
    pub fn run_aggregate_serial<S, F>(
        &self,
        build: F,
    ) -> Result<(SweepAggregate, SweepStats), ExperimentError>
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        let mut ctx = RunContext::new();
        let mut partial = Partial::default();
        for i in 0..self.cells.len() {
            partial = partial.absorbed(i, self.run_cell(&mut ctx, i, &build));
        }
        partial.finish()
    }

    pub(crate) fn run_cell<S, F>(
        &self,
        ctx: &mut RunContext,
        index: usize,
        build: &F,
    ) -> (Result<RunReport, ExperimentError>, RunTiming)
    where
        S: Substrate,
        F: Fn(&C, u64) -> S,
    {
        let substrate = build(&self.cells[index], cell_seed(self.base_seed, index));
        match Experiment::new(&substrate)
            .with_config(self.config)
            .run_in(ctx)
        {
            Ok((report, timing)) => (Ok(report), timing),
            Err(e) => (Err(e), RunTiming::default()),
        }
    }

    pub(crate) fn collect_reports(
        results: Vec<(Result<RunReport, ExperimentError>, RunTiming)>,
    ) -> Result<(SweepReport, SweepStats), ExperimentError> {
        let mut runs = Vec::with_capacity(results.len());
        let mut stats = SweepStats::default();
        for (result, timing) in results {
            runs.push(result?);
            stats.absorb(timing);
        }
        Ok((SweepReport { runs }, stats))
    }
}

/// One worker's streaming fold state: the partial aggregate, the timing
/// totals, and the earliest failing cell seen so far. Merging partials
/// is commutative, so the reduction order across workers cannot change
/// the result.
#[derive(Debug, Default)]
pub(crate) struct Partial {
    aggregate: AggregateBuilder,
    stats: SweepStats,
    error: Option<(usize, ExperimentError)>,
}

impl Partial {
    /// Folds one cell's outcome in, keeping the earliest error by cell
    /// index.
    pub(crate) fn absorbed(
        mut self,
        index: usize,
        (result, timing): (Result<RunReport, ExperimentError>, RunTiming),
    ) -> Partial {
        self.stats.absorb(timing);
        match result {
            Ok(report) => self.aggregate.absorb(&report),
            Err(e) => {
                if self.error.as_ref().is_none_or(|(j, _)| index < *j) {
                    self.error = Some((index, e));
                }
            }
        }
        self
    }

    /// Merges two workers' partials.
    pub(crate) fn merged(mut self, other: Partial) -> Partial {
        self.aggregate.merge(other.aggregate);
        self.stats.merge(other.stats);
        self.error = match (self.error, other.error) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
            (a, b) => a.or(b),
        };
        self
    }

    pub(crate) fn finish(self) -> Result<(SweepAggregate, SweepStats), ExperimentError> {
        match self.error {
            Some((_, e)) => Err(e),
            None => Ok((self.aggregate.finish(), self.stats)),
        }
    }
}

/// Streaming accumulator for [`SweepAggregate`]: absorb reports one at a
/// time, merge accumulators across workers, then
/// [`finish`](AggregateBuilder::finish). Every operation is a
/// commutative sum, so any absorb/merge order yields the same aggregate
/// — the property that makes the streaming sweep bit-identical to
/// collect-then-aggregate.
#[derive(Debug, Clone, Default)]
pub struct AggregateBuilder {
    runs: usize,
    terminated_early: usize,
    terminal_events: usize,
    hits: usize,
    false_negatives: usize,
    false_positives: usize,
    violations_by_monitor: BTreeMap<String, usize>,
}

impl AggregateBuilder {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's totals in. The report is only read — callers
    /// drop it immediately after, which is the point: nothing of the
    /// run outlives this call.
    pub fn absorb(&mut self, run: &RunReport) {
        self.runs += 1;
        self.terminated_early += usize::from(run.terminated_early);
        self.terminal_events += usize::from(run.terminal_event.is_some());
        for (id, intervals) in &run.violations {
            *self.violations_by_monitor.entry(id.clone()).or_default() += intervals.len();
        }
        for row in &run.correlation.rows {
            self.hits += row.hits;
            self.false_negatives += row.false_negatives;
            self.false_positives += row.false_positives;
        }
    }

    /// Merges another accumulator in (the sweep's join step).
    pub fn merge(&mut self, other: AggregateBuilder) {
        self.runs += other.runs;
        self.terminated_early += other.terminated_early;
        self.terminal_events += other.terminal_events;
        self.hits += other.hits;
        self.false_negatives += other.false_negatives;
        self.false_positives += other.false_positives;
        for (id, count) in other.violations_by_monitor {
            *self.violations_by_monitor.entry(id).or_default() += count;
        }
    }

    /// The order-independent totals (per-monitor counts sorted by id).
    pub fn finish(self) -> SweepAggregate {
        SweepAggregate {
            runs: self.runs,
            terminated_early: self.terminated_early,
            terminal_events: self.terminal_events,
            hits: self.hits,
            false_negatives: self.false_negatives,
            false_positives: self.false_positives,
            violations_by_monitor: self.violations_by_monitor.into_iter().collect(),
        }
    }
}

/// Aggregated timing/amortization counters of one sweep. Durations are
/// summed across workers (CPU-time-like, not wall-clock: on N busy
/// cores the sum exceeds elapsed time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Total per-run setup (suite acquisition, simulator build, scratch
    /// frames).
    pub setup: Duration,
    /// Total tick-loop time (simulate, observe, monitor, sample).
    pub ticking: Duration,
    /// Runs whose suite was compiled from scratch (no template).
    pub suites_compiled: usize,
    /// Runs whose suite was instantiated from a [`SuiteTemplate`]
    /// (first use of a template on a worker).
    ///
    /// [`SuiteTemplate`]: esafe_monitor::SuiteTemplate
    pub suites_instantiated: usize,
    /// Runs that reset and reused a worker's pooled suite.
    pub suites_reused: usize,
}

impl SweepStats {
    /// Folds one run's timing into the totals.
    fn absorb(&mut self, timing: RunTiming) {
        self.setup += timing.setup;
        self.ticking += timing.ticking;
        match timing.suite {
            SuiteProvenance::Compiled => self.suites_compiled += 1,
            SuiteProvenance::Instantiated => self.suites_instantiated += 1,
            SuiteProvenance::Reused => self.suites_reused += 1,
        }
    }

    /// Merges another sweep's (or worker's) totals in.
    pub fn merge(&mut self, other: SweepStats) {
        self.setup += other.setup;
        self.ticking += other.ticking;
        self.suites_compiled += other.suites_compiled;
        self.suites_instantiated += other.suites_instantiated;
        self.suites_reused += other.suites_reused;
    }

    /// Number of runs folded in.
    pub fn runs(&self) -> usize {
        self.suites_compiled + self.suites_instantiated + self.suites_reused
    }
}

/// All reports of a sweep, in cell order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// One report per cell.
    pub runs: Vec<RunReport>,
}

impl SweepReport {
    /// The report for a cell label, if present.
    pub fn for_label(&self, label: &str) -> Option<&RunReport> {
        self.runs.iter().find(|r| r.label == label)
    }

    /// Aggregates the sweep into order-independent totals: every count is
    /// a commutative sum and per-monitor totals are keyed (sorted) by
    /// monitor id, so any execution order yields the same aggregate.
    /// (Same accumulator as the streaming [`Sweep::run_aggregate`] path,
    /// so collect-then-aggregate and streaming agree by construction.)
    pub fn aggregate(&self) -> SweepAggregate {
        let mut builder = AggregateBuilder::new();
        for run in &self.runs {
            builder.absorb(run);
        }
        builder.finish()
    }
}

/// Order-independent totals of a sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepAggregate {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Runs that aborted before their schedule.
    pub terminated_early: usize,
    /// Runs that hit a terminal event.
    pub terminal_events: usize,
    /// Total hits across all runs and goals.
    pub hits: usize,
    /// Total false negatives (residual emergence).
    pub false_negatives: usize,
    /// Total false positives (restriction or redundancy).
    pub false_positives: usize,
    /// Violation-interval counts per monitor id, sorted by id.
    pub violations_by_monitor: Vec<(String, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::{parse, EvalError, Frame, SignalId, SignalTable};
    use esafe_monitor::{Location, MonitorSuite};
    use esafe_sim::{SimTime, Simulator, Subsystem};
    use std::sync::Arc;

    /// Emits `seed % cap` every tick; the monitor requires `y < 3`.
    struct Emit {
        y: SignalId,
        value: f64,
    }

    impl Subsystem for Emit {
        fn name(&self) -> &str {
            "emit"
        }
        fn step(&mut self, _t: &SimTime, _prev: &Frame, next: &mut Frame) {
            next.set(self.y, self.value);
        }
    }

    struct EmitSubstrate {
        value: f64,
        label: String,
        table: Arc<SignalTable>,
        y: SignalId,
    }

    impl Substrate for EmitSubstrate {
        fn name(&self) -> &str {
            "emit"
        }
        fn label(&self) -> String {
            self.label.clone()
        }
        fn duration_ms(&self) -> u64 {
            20
        }
        fn signal_table(&self) -> &Arc<SignalTable> {
            &self.table
        }
        fn build_simulator(&self) -> Simulator {
            let mut sim = Simulator::new(1, &self.table);
            sim.add(Emit {
                y: self.y,
                value: self.value,
            });
            sim.init_with(|f| f.set(self.y, 0.0));
            sim
        }
        fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
            let mut suite = MonitorSuite::new(self.table.clone());
            suite.add_goal(
                "y-bound",
                Location::new("Emit"),
                parse("y < 3.0").expect("valid formula"),
            )?;
            Ok(suite)
        }
    }

    fn build(cell: &u64, seed: u64) -> EmitSubstrate {
        let mut b = SignalTable::builder();
        let y = b.real("y");
        EmitSubstrate {
            value: (cell % 5) as f64,
            label: format!("cell-{cell}-seed-{seed:016x}"),
            table: b.finish(),
            y,
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let sweep = Sweep::new((0..16).collect::<Vec<u64>>()).with_base_seed(99);
        let parallel = sweep.run(build).unwrap();
        let serial = sweep.run_serial(build).unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(parallel.aggregate(), serial.aggregate());
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..32).map(|i| cell_seed(7, i)).collect();
        let b: Vec<u64> = (0..32).map(|i| cell_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "per-cell seeds must not collide");
        assert_ne!(cell_seed(7, 0), cell_seed(8, 0), "base seed must matter");
    }

    #[test]
    fn aggregate_counts_are_order_independent() {
        let sweep = Sweep::new(vec![1u64, 4, 2, 3]);
        let report = sweep.run_serial(build).unwrap();
        let mut reversed = report.clone();
        reversed.runs.reverse();
        assert_eq!(report.aggregate(), reversed.aggregate());
        // Cells 3 and 4 emit y ≥ 3: two runs violate, twenty ticks each
        // merge into one interval per run.
        let agg = report.aggregate();
        assert_eq!(agg.runs, 4);
        assert_eq!(agg.violations_by_monitor, vec![("y-bound".to_string(), 2)]);
        assert_eq!(agg.false_negatives, 2, "no subgoals: violations are FNs");
    }

    #[test]
    fn timed_runs_report_stats_and_match_untimed_reports() {
        let sweep = Sweep::new((0..8).collect::<Vec<u64>>()).with_base_seed(5);
        let (timed, stats) = sweep.run_timed(build).unwrap();
        assert_eq!(timed, sweep.run(build).unwrap());
        assert_eq!(timed, sweep.run_serial(build).unwrap());
        // EmitSubstrate has no template: every suite is compiled.
        assert_eq!(stats.runs(), 8);
        assert_eq!(stats.suites_compiled, 8);
        assert_eq!(stats.suites_instantiated + stats.suites_reused, 0);
        let (_, serial_stats) = sweep.run_serial_timed(build).unwrap();
        assert_eq!(serial_stats.runs(), 8);
    }

    #[test]
    fn streaming_aggregate_matches_collect_all() {
        let sweep = Sweep::new((0..64).collect::<Vec<u64>>()).with_base_seed(13);
        let collected = sweep.run_timed(build).unwrap();
        let (streamed, streamed_stats) = sweep.run_aggregate(build).unwrap();
        let (serial_streamed, serial_stats) = sweep.run_aggregate_serial(build).unwrap();
        assert_eq!(streamed, collected.0.aggregate());
        assert_eq!(serial_streamed, collected.0.aggregate());
        assert_eq!(streamed_stats.runs(), 64);
        assert_eq!(serial_stats.runs(), 64);
        assert_eq!(
            streamed_stats.suites_compiled
                + streamed_stats.suites_instantiated
                + streamed_stats.suites_reused,
            collected.1.suites_compiled
                + collected.1.suites_instantiated
                + collected.1.suites_reused
        );
    }

    #[test]
    fn streaming_aggregate_over_an_empty_sweep_is_empty() {
        let sweep = Sweep::new(Vec::<u64>::new());
        let (agg, stats) = sweep.run_aggregate(build).unwrap();
        assert_eq!(agg, SweepAggregate::default());
        assert_eq!(stats.runs(), 0);
    }

    /// An [`EmitSubstrate`] whose goal suite references a signal the
    /// simulator never sets, so every run fails with a per-cell
    /// `MissingVar` naming its label — for error-ordering tests.
    struct BrokenSubstrate(EmitSubstrate);

    impl Substrate for BrokenSubstrate {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn label(&self) -> String {
            self.0.label()
        }
        fn duration_ms(&self) -> u64 {
            self.0.duration_ms()
        }
        fn signal_table(&self) -> &Arc<SignalTable> {
            self.0.signal_table()
        }
        fn build_simulator(&self) -> esafe_sim::Simulator {
            self.0.build_simulator()
        }
        fn build_monitors(&self) -> Result<MonitorSuite, EvalError> {
            let mut suite = MonitorSuite::new(self.0.table.clone());
            suite.add_goal(
                self.0.label.clone(),
                Location::new("Emit"),
                parse("ghost < 3.0").expect("valid formula"),
            )?;
            Ok(suite)
        }
    }

    fn build_broken(cell: &u64, seed: u64) -> BrokenSubstrate {
        let mut b = SignalTable::builder();
        let y = b.real("y");
        b.real("ghost");
        BrokenSubstrate(EmitSubstrate {
            value: (cell % 5) as f64,
            label: format!("cell-{cell}-seed-{seed:016x}"),
            table: b.finish(),
            y,
        })
    }

    #[test]
    fn streaming_reports_the_earliest_cell_error() {
        // Every cell fails with a MissingVar from a monitor named after
        // its own label; the streaming path must surface cell 0's error,
        // exactly like the collect-all path, regardless of scheduling.
        let sweep = Sweep::new((0..8).collect::<Vec<u64>>()).with_base_seed(3);
        let collected = sweep.run(build_broken);
        let streamed = sweep.run_aggregate(build_broken).map(|(a, _)| a);
        match (collected, streamed) {
            (Err(a), Err(b)) => {
                assert!(format!("{a}").contains("cell-0"), "collect path: {a}");
                assert_eq!(format!("{a}"), format!("{b}"));
            }
            (a, b) => panic!("expected both paths to fail: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn labels_are_addressable() {
        let sweep = Sweep::new(vec![2u64]);
        let report = sweep.run_serial(build).unwrap();
        let label = &report.runs[0].label;
        assert!(report.for_label(label).is_some());
        assert!(report.for_label("nope").is_none());
    }
}
