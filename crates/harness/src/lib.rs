//! Substrate-generic experiment harness.
//!
//! The thesis evaluates its run-time monitoring contribution on **two**
//! composite systems — the Chapter 4 distributed elevator and the
//! Chapter 5 semi-autonomous vehicle. Both evaluations are the same
//! experiment shape: assemble a deterministic fixed-step [`Simulator`],
//! attach a hierarchical [`MonitorSuite`], step the loop with one-tick
//! observation delay, derive probe signals, watch for terminal events
//! (collisions), record figure series, and classify detections into
//! hits / false positives / false negatives. This crate owns that shape
//! once:
//!
//! * [`Substrate`] — what a composite system must provide to be run:
//!   the shared signal table, simulator assembly, monitor-suite
//!   construction, signal derivation, and terminal-event detection;
//! * [`Experiment`] — the generic simulate → observe → correlate loop,
//!   configured in **milliseconds** ([`ExperimentConfig`]) so substrates
//!   with different tick periods (1 ms vehicle, 10 ms elevator) share one
//!   run loop;
//! * [`RunReport`] — the substrate-independent outcome of one run;
//! * [`Sweep`] — a rayon-parallel fan-out of experiment cells (scenario ×
//!   defect grids, seed batches) with deterministic per-cell seeds and
//!   order-independent aggregation, so the parallel path is
//!   bit-identical to the serial one. [`Sweep::run_aggregate`] is the
//!   streaming form: per-worker partial aggregates
//!   ([`AggregateBuilder`]) folded as reports are produced and merged
//!   at join — O(workers) memory for arbitrarily large grids;
//! * [`RunContext`] — per-worker pooled run state (observed scratch
//!   frame, template-instantiated monitor suite) reused across the cells
//!   a sweep worker executes. Substrate families expose a compile-once
//!   [`SuiteTemplate`](esafe_monitor::SuiteTemplate) through
//!   [`Substrate::suite_template`], so a sweep compiles each goal
//!   formula once, not once per cell; [`Sweep::run_timed`] reports the
//!   resulting setup/ticking split and amortization counters
//!   ([`SweepStats`]);
//! * [`Quarantine`] / [`SweepJournal`] — fault isolation and durable
//!   checkpoint/resume for fleet-scale sweeps: with a quarantine
//!   installed a panicking, erroring, or runaway cell is recorded as a
//!   typed [`CellFailure`] (with retry policy) instead of aborting the
//!   run, and a journal persists completed cells so an interrupted
//!   sweep resumes bit-identically, skipping work already done.
//!
//! A substrate constructs its [`SignalTable`](esafe_logic::SignalTable)
//! **once**; the experiment loop, every sweep cell, every compiled
//! monitor, and every series sample share it. Per-tick data flows as
//! [`Frame`](esafe_logic::Frame)s — dense, id-indexed, `Copy`-slot
//! samples — so the loop holds zero per-tick `String` allocations.
//!
//! [`Simulator`]: esafe_sim::Simulator
//! [`MonitorSuite`]: esafe_monitor::MonitorSuite
//!
//! # Example
//!
//! ```
//! use esafe_harness::{Experiment, ExperimentConfig, RunReport, Substrate};
//! use esafe_logic::{parse, Frame, SignalId, SignalTable};
//! use esafe_monitor::{Location, MonitorSuite};
//! use esafe_sim::{SimTime, Simulator, Subsystem};
//! use std::sync::Arc;
//!
//! /// A counter that must stay below 8 — and won't.
//! struct Counter { n: SignalId }
//! impl Subsystem for Counter {
//!     fn name(&self) -> &str { "counter" }
//!     fn step(&mut self, _t: &SimTime, prev: &Frame, next: &mut Frame) {
//!         next.set(self.n, prev.real_or(self.n, 0.0) + 1.0);
//!     }
//! }
//!
//! struct CounterSubstrate { table: Arc<SignalTable>, n: SignalId }
//! impl CounterSubstrate {
//!     fn new() -> Self {
//!         let mut b = SignalTable::builder();
//!         let n = b.real("n");
//!         CounterSubstrate { table: b.finish(), n }
//!     }
//! }
//! impl Substrate for CounterSubstrate {
//!     fn name(&self) -> &str { "counter" }
//!     fn label(&self) -> String { "count-to-twenty".into() }
//!     fn duration_ms(&self) -> u64 { 20 }
//!     fn signal_table(&self) -> &Arc<SignalTable> { &self.table }
//!     fn build_simulator(&self) -> Simulator {
//!         let mut sim = Simulator::new(1, &self.table);
//!         sim.add(Counter { n: self.n });
//!         sim.init_with(|f| f.set(self.n, 0.0));
//!         sim
//!     }
//!     fn build_monitors(&self) -> Result<MonitorSuite, esafe_logic::EvalError> {
//!         let mut suite = MonitorSuite::new(self.table.clone());
//!         let goal = parse("n < 8.0").expect("valid formula");
//!         suite.add_goal("bound", Location::new("Counter"), goal)?;
//!         Ok(suite)
//!     }
//! }
//!
//! let report: RunReport = Experiment::new(&CounterSubstrate::new()).run().unwrap();
//! assert_eq!(report.violations_for("bound").len(), 1);
//! ```

pub mod batch;
pub mod context;
pub mod corpus;
pub mod experiment;
pub mod journal;
pub mod lanes;
pub mod substrate;
pub mod sweep;

pub use batch::DEFAULT_BATCH_WIDTH;
pub use context::{RunContext, RunTiming, SuiteProvenance};
pub use corpus::{
    replay_corpus, replay_corpus_reports, CorpusError, CorpusReplay, CorpusStats,
    TraceCorpusReader, TraceCorpusWriter, DEFAULT_REPLAY_WIDTH,
};
pub use experiment::{Experiment, ExperimentConfig, ExperimentError, RunReport};
pub use journal::{CellDelta, JournalRecord, SweepJournal};
pub use lanes::LaneAllocator;
pub use substrate::Substrate;
pub use sweep::{
    cell_seed, retry_seed, AggregateBuilder, CellFailure, FailureReason, Quarantine, RetryPolicy,
    Sweep, SweepAggregate, SweepReport, SweepStats,
};
