//! Fuzzing the sweep-journal codec: arbitrary records must round-trip
//! bit-identically, truncation at every byte boundary must never yield
//! a phantom record, and garbage or corruption in a journal file must
//! never panic recovery — a damaged tail costs re-running cells, never
//! a wrong aggregate. Mirrors the TCP codec fuzz discipline in
//! `crates/serve/tests/codec_fuzz.rs`.

use esafe_harness::journal::{
    decode_record, encode_record, DecodeOutcome, JournalRecord, SweepJournal,
};
use esafe_harness::{CellDelta, CellFailure, ExperimentConfig, FailureReason};
use proptest::prelude::*;
use std::path::PathBuf;

/// Monitor ids covering the shapes a real sweep writes: plain, dotted,
/// long, and empty.
const IDS: [&str; 4] = ["G", "G.A", "G.B.a-rather-long-monitor-identifier", ""];

fn delta_from(
    cell: u64,
    flags: u64,
    counts: (u64, u64, u64),
    violations: &[(u8, u64)],
) -> CellDelta {
    CellDelta {
        cell: cell as usize,
        retries: (flags >> 2) as u32,
        terminated_early: flags & 1 == 1,
        terminal_event: flags & 2 == 2,
        hits: counts.0,
        false_negatives: counts.1,
        false_positives: counts.2,
        violations: violations
            .iter()
            .map(|&(id, n)| (IDS[(id % 4) as usize].to_owned(), n))
            .collect(),
    }
}

fn failure_from(cell: u64, seed: u64, retries: u32, which: u8, detail: u64) -> CellFailure {
    let reason = match which % 3 {
        0 => FailureReason::Panic {
            message: format!("lane melted down (payload {detail})"),
        },
        1 => FailureReason::Error {
            message: format!("signal `ghost` is not in the table ({detail})"),
        },
        _ => FailureReason::TickBudgetExceeded { budget: detail },
    };
    CellFailure {
        cell: cell as usize,
        seed,
        retries,
        reason,
    }
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("esafe-journal-fuzz-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

/// Writes a journal of `deltas` at `path` and returns the file bytes.
fn journal_bytes(path: &PathBuf, cells: usize, deltas: &[CellDelta]) -> Vec<u8> {
    let mut journal = SweepJournal::create(path, 7, cells, ExperimentConfig::default()).unwrap();
    for delta in deltas {
        journal
            .append(JournalRecord::Completed(delta.clone()))
            .unwrap();
    }
    journal.sync().unwrap();
    drop(journal);
    std::fs::read(path).unwrap()
}

proptest! {
    /// Completed records round-trip bit-identically: decode inverts
    /// encode, consumes exactly the framing, and re-encodes to the same
    /// bytes.
    #[test]
    fn completed_records_round_trip_bit_identically(
        cell in 0u64..1 << 32,
        flags in 0u64..1 << 10,
        counts in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        violations in proptest::collection::vec((0u8..8, 0u64..u64::MAX), 0..6),
    ) {
        let record = JournalRecord::Completed(delta_from(cell, flags, counts, &violations));
        let bytes = encode_record(&record);
        match decode_record(&bytes) {
            DecodeOutcome::Record(back, consumed) => {
                prop_assert_eq!(&back, &record);
                prop_assert_eq!(consumed, bytes.len());
                prop_assert_eq!(encode_record(&back), bytes);
            }
            other => panic!("round trip failed: {other:?}"),
        }
    }

    /// Quarantined records round-trip bit-identically across all three
    /// failure reasons.
    #[test]
    fn quarantined_records_round_trip_bit_identically(
        cell in 0u64..1 << 32,
        seed in 0u64..u64::MAX,
        retries in 0u32..u32::MAX,
        which in 0u8..9,
        detail in 0u64..u64::MAX,
    ) {
        let record = JournalRecord::Quarantined(failure_from(cell, seed, retries, which, detail));
        let bytes = encode_record(&record);
        match decode_record(&bytes) {
            DecodeOutcome::Record(back, consumed) => {
                prop_assert_eq!(&back, &record);
                prop_assert_eq!(consumed, bytes.len());
                prop_assert_eq!(encode_record(&back), bytes);
            }
            other => panic!("round trip failed: {other:?}"),
        }
    }

    /// Truncating an encoded record at EVERY byte boundary yields
    /// `Incomplete` or `Corrupt`, never a phantom record and never a
    /// panic.
    #[test]
    fn truncation_at_every_byte_boundary_never_decodes(
        cell in 0u64..1 << 20,
        flags in 0u64..1 << 10,
        counts in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        violations in proptest::collection::vec((0u8..8, 0u64..u64::MAX), 0..4),
    ) {
        let record = JournalRecord::Completed(delta_from(cell, flags, counts, &violations));
        let bytes = encode_record(&record);
        for cut in 0..bytes.len() {
            match decode_record(&bytes[..cut]) {
                DecodeOutcome::Incomplete | DecodeOutcome::Corrupt(_) => {}
                DecodeOutcome::Record(..) => panic!(
                    "a {cut}-byte prefix of a {}-byte record decoded",
                    bytes.len()
                ),
            }
        }
    }

    /// A garbage tail smashed onto a valid journal never panics
    /// recovery: every intact record survives, the garbage is cut.
    #[test]
    fn garbage_tails_recover_without_panicking(
        count in 0usize..5,
        garbage in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 1..64),
    ) {
        let path = temp_path("garbage-tail");
        let deltas: Vec<CellDelta> = (0..count)
            .map(|i| delta_from(i as u64, i as u64, (1, 2, 3), &[(0, 1)]))
            .collect();
        let mut bytes = journal_bytes(&path, 8, &deltas);
        bytes.extend_from_slice(&garbage);
        std::fs::write(&path, &bytes).unwrap();

        let recovered = SweepJournal::open(&path).unwrap();
        prop_assert_eq!(recovered.records(), count);
        for (i, _) in deltas.iter().enumerate() {
            prop_assert!(recovered.is_completed(i), "intact record {i} must survive");
        }
        drop(recovered);
        std::fs::remove_file(&path).unwrap();
    }

    /// Arbitrary single-byte corruption anywhere in the record region
    /// never panics recovery; the journal keeps some intact prefix.
    #[test]
    fn record_corruption_recovers_without_panicking(
        flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..6),
    ) {
        let path = temp_path("record-flip");
        let deltas: Vec<CellDelta> = (0..4)
            .map(|i| delta_from(i, i, (i, i + 1, i + 2), &[(0, 1), (1, 2)]))
            .collect();
        let mut bytes = journal_bytes(&path, 8, &deltas);
        let header = esafe_harness::journal::HEADER_BYTES;
        let body = bytes.len() - header;
        for &(pos, mask) in &flips {
            bytes[header + pos % body] ^= mask;
        }
        std::fs::write(&path, &bytes).unwrap();

        let recovered = SweepJournal::open(&path).unwrap();
        prop_assert!(recovered.records() <= 4, "corruption cannot invent records");
        drop(recovered);
        std::fs::remove_file(&path).unwrap();
    }

    /// Any single-byte header corruption is a hard, typed error — never
    /// a panic, never a silently-wrong sweep description.
    #[test]
    fn header_corruption_is_a_hard_error(
        pos in 0usize..esafe_harness::journal::HEADER_BYTES,
        mask in 1u8..255,
    ) {
        let path = temp_path("header-flip");
        let mut bytes = journal_bytes(&path, 4, &[delta_from(0, 0, (1, 1, 1), &[])]);
        bytes[pos] ^= mask;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(SweepJournal::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
