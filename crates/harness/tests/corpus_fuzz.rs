//! Fuzzing the trace-corpus codec and store: random tables, runs, and
//! tick patterns must round-trip bit-identically (including NaN
//! payloads, `-0.0`, and `Int` samples in `Real` columns); truncating
//! a torn corpus at EVERY byte boundary must recover a monotone prefix
//! of complete runs without panicking; garbage manifests and corrupted
//! committed regions must be typed errors, never panics and never
//! silently-wrong replays. Mirrors the sweep-journal fuzz discipline
//! in `journal_fuzz.rs`.

use esafe_harness::corpus::{
    CorpusError, TraceCorpusReader, TraceCorpusWriter, CORPUS_DATA_FILE, CORPUS_HEADER_BYTES,
    CORPUS_MANIFEST_FILE,
};
use esafe_harness::ExperimentConfig;
use esafe_logic::corpus::{decode_run_trace, encode_run, RunMeta, SymDict};
use esafe_logic::{FrameTrace, SignalKind, SignalTable, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("esafe-corpus-fuzz-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A deterministic value mixer (splitmix64) so traces are pure
/// functions of the proptest inputs.
fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(31))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds a table from kind codes: one signal per code, named `s0..`.
fn table_from(kinds: &[u8]) -> Arc<SignalTable> {
    let mut b = SignalTable::builder();
    for (j, kind) in kinds.iter().enumerate() {
        let name = format!("s{j}");
        match kind % 4 {
            0 => b.bool(&name),
            1 => b.int(&name),
            2 => b.real(&name),
            _ => b.sym(&name),
        };
    }
    b.finish()
}

/// The fuzzed sample for signal `j` at tick `t`: absent with
/// probability `100 - density`, otherwise a kind-appropriate value
/// covering the codec's hard cases (NaN bit patterns, negative zero,
/// `Int` in a `Real` column, recurring and one-off symbols).
fn value_at(kind: SignalKind, j: usize, t: usize, density: u64, salt: u64) -> Option<Value> {
    let m = mix(salt, j as u64, t as u64);
    if m % 100 >= density {
        return None;
    }
    Some(match kind {
        SignalKind::Bool => Value::Bool(m & 256 != 0),
        SignalKind::Int => Value::Int((m >> 8) as i64),
        SignalKind::Real => match (m >> 8) % 5 {
            // `Real` columns legitimately carry `Int` samples.
            0 => Value::Int((m >> 16) as i64 % 1000),
            1 => Value::Real(f64::from_bits(0x7ff8_dead_beef_0001 | (m >> 16) << 52)),
            2 => Value::Real(-0.0),
            _ => Value::Real(f64::from_bits(m)),
        },
        SignalKind::Sym => Value::sym(match (m >> 8) % 6 {
            0 => "GO".to_owned(),
            1 => "STOP".to_owned(),
            2 => "HOLD".to_owned(),
            _ => format!("sym-{}", (m >> 11) % 8),
        }),
    })
}

/// Assembles the fuzzed trace for a table.
fn trace_from(table: &Arc<SignalTable>, len: usize, density: u64, salt: u64) -> FrameTrace {
    let mut trace = FrameTrace::with_capacity(table, 1 + (salt % 20), len);
    let mut frame = table.frame();
    for t in 0..len {
        frame.clear();
        for id in table.ids() {
            if let Some(v) = value_at(table.kind(id), id.index(), t, density, salt) {
                frame.set(id, v);
            }
        }
        trace.push(&frame);
    }
    trace
}

/// `Option<Value>` equality under bit semantics: NaNs with equal
/// payloads are equal, `-0.0 != 0.0` — exactly what the codec
/// preserves.
fn bits_eq(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(Value::Real(x)), Some(Value::Real(y))) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

fn meta_for(trace: &FrameTrace, salt: u64) -> RunMeta {
    RunMeta {
        table_ref: 0,
        substrate: "fuzz".to_owned(),
        label: format!("run-{salt:x}"),
        dt_millis: trace.tick_millis(),
        ticks: trace.len() as u64,
        terminated_early: salt & 1 == 1,
        terminal_event: (salt & 2 == 2).then(|| "collision".to_owned()),
    }
}

/// Writes a small corpus of fuzzed runs at `dir`, returning each run's
/// trace.
fn write_corpus(
    dir: &PathBuf,
    table: &Arc<SignalTable>,
    lens: &[usize],
    salt: u64,
) -> Vec<FrameTrace> {
    let mut writer = TraceCorpusWriter::create(dir, ExperimentConfig::default()).unwrap();
    let traces: Vec<FrameTrace> = lens
        .iter()
        .enumerate()
        .map(|(i, &len)| trace_from(table, len, 60 + (salt % 41), salt.wrapping_add(i as u64)))
        .collect();
    for (i, trace) in traces.iter().enumerate() {
        writer
            .append_trace(trace, "fuzz", &format!("run-{i}"), false, None)
            .unwrap();
    }
    writer.finish().unwrap();
    traces
}

/// Column-by-column bit equality between a decoded and a reference
/// trace.
fn assert_traces_bit_equal(decoded: &FrameTrace, reference: &FrameTrace) {
    assert_eq!(decoded.len(), reference.len());
    assert_eq!(decoded.tick_millis(), reference.tick_millis());
    // The decoded table re-interns the same signals in the same order,
    // so recorded ids index both traces.
    for id in reference.table().ids() {
        let d = decoded.column(id);
        let r = reference.column(id);
        assert_eq!(d.len(), r.len());
        for (t, (dv, rv)) in d.iter().zip(r).enumerate() {
            assert!(
                bits_eq(dv, rv),
                "signal {} tick {t}: decoded {dv:?} != recorded {rv:?}",
                reference.table().name(id)
            );
        }
    }
}

proptest! {
    /// Random tables × random tick patterns round-trip bit-identically
    /// through the run codec, and re-encoding the decoded trace with a
    /// fresh dictionary reproduces the original bytes.
    #[test]
    fn random_runs_round_trip_bit_identically(
        kinds in proptest::collection::vec(0u8..4, 1..6),
        len in 0usize..120,
        density in 0u64..101,
        salt in 0u64..u64::MAX,
    ) {
        let table = table_from(&kinds);
        let trace = trace_from(&table, len, density, salt);
        let meta = meta_for(&trace, salt);

        let mut dict = SymDict::new();
        let bytes = encode_run(&trace, &meta, &mut dict);
        let (back_meta, decoded) =
            decode_run_trace(&bytes, &table, &dict).expect("a just-encoded run decodes");
        prop_assert_eq!(&back_meta, &meta);
        assert_traces_bit_equal(&decoded, &trace);

        // Determinism: a fresh dictionary assigns the same ids in the
        // same first-appearance order, so the bytes reproduce exactly.
        let mut dict2 = SymDict::new();
        prop_assert_eq!(encode_run(&decoded, &meta, &mut dict2), bytes);
    }

    /// Truncating a torn (manifest-less) corpus at EVERY byte boundary
    /// never panics and never invents data: the reader recovers a
    /// monotonically growing prefix of complete runs, each decoding
    /// bit-identically to what was recorded.
    #[test]
    fn truncation_at_every_byte_boundary_recovers_a_clean_prefix(
        kinds in proptest::collection::vec(0u8..4, 1..4),
        salt in 0u64..u64::MAX,
    ) {
        let dir = temp_dir("truncate");
        let table = table_from(&kinds);
        let traces = write_corpus(&dir, &table, &[7, 11, 3], salt);
        let data = dir.join(CORPUS_DATA_FILE);
        let bytes = std::fs::read(&data).unwrap();
        // A SIGKILL mid-record never leaves a manifest behind.
        std::fs::remove_file(dir.join(CORPUS_MANIFEST_FILE)).unwrap();

        let mut last_runs = 0usize;
        for cut in 0..=bytes.len() {
            std::fs::write(&data, &bytes[..cut]).unwrap();
            match TraceCorpusReader::open(&dir) {
                Ok(reader) => {
                    prop_assert!(cut >= CORPUS_HEADER_BYTES);
                    prop_assert!(reader.recovered());
                    prop_assert!(reader.len() >= last_runs, "recovery went backwards at {cut}");
                    prop_assert!(reader.len() <= traces.len());
                    last_runs = reader.len();
                    for (i, reference) in traces.iter().enumerate().take(reader.len()) {
                        let decoded = reader.decode_trace(i).expect("recovered runs decode");
                        assert_traces_bit_equal(&decoded, reference);
                    }
                }
                // Only a header-short prefix may refuse to open.
                Err(CorpusError::Header(_)) => prop_assert!(cut < CORPUS_HEADER_BYTES),
                Err(other) => panic!("unexpected error at cut {cut}: {other}"),
            }
        }
        prop_assert_eq!(last_runs, traces.len(), "the full file recovers every run");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A garbage manifest is a typed [`CorpusError::Manifest`] — never
    /// a panic, never a silent fallback to recovery mode (which could
    /// mask a half-written commit).
    #[test]
    fn garbage_manifests_are_typed_errors(
        garbage in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..96),
        salt in 0u64..u64::MAX,
    ) {
        let dir = temp_dir("garbage-manifest");
        let table = table_from(&[0, 2, 3]);
        write_corpus(&dir, &table, &[5], salt);
        std::fs::write(dir.join(CORPUS_MANIFEST_FILE), &garbage).unwrap();
        match TraceCorpusReader::open(&dir) {
            Err(CorpusError::Manifest(_)) => {}
            other => panic!("garbage manifest must be a Manifest error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Single-byte corruption anywhere in a *committed* region is a
    /// hard typed error — a manifest promises the data it indexed.
    #[test]
    fn committed_corruption_is_always_detected(
        pos in 0usize..1 << 16,
        mask in 1u8..255,
        salt in 0u64..u64::MAX,
    ) {
        let dir = temp_dir("commit-flip");
        let table = table_from(&[1, 2, 3, 0]);
        write_corpus(&dir, &table, &[6, 9], salt);
        let data = dir.join(CORPUS_DATA_FILE);
        let mut bytes = std::fs::read(&data).unwrap();
        let at = pos % bytes.len();
        bytes[at] ^= mask;
        std::fs::write(&data, &bytes).unwrap();
        match TraceCorpusReader::open(&dir) {
            Err(
                CorpusError::Header(_) | CorpusError::Manifest(_) | CorpusError::Corrupt(_),
            ) => {}
            Ok(_) => panic!("corruption at byte {at} went undetected"),
            Err(other) => panic!("unexpected error kind: {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A garbage tail smashed onto a torn corpus (no manifest) never
    /// panics: every complete run survives, the garbage is dropped.
    #[test]
    fn garbage_tails_recover_every_complete_run(
        garbage in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 1..64),
        salt in 0u64..u64::MAX,
    ) {
        let dir = temp_dir("garbage-tail");
        let table = table_from(&[3, 3, 1]);
        let traces = write_corpus(&dir, &table, &[4, 8], salt);
        std::fs::remove_file(dir.join(CORPUS_MANIFEST_FILE)).unwrap();
        let data = dir.join(CORPUS_DATA_FILE);
        let mut bytes = std::fs::read(&data).unwrap();
        bytes.extend_from_slice(&garbage);
        std::fs::write(&data, &bytes).unwrap();

        let reader = TraceCorpusReader::open(&dir).unwrap();
        prop_assert!(reader.recovered());
        prop_assert_eq!(reader.len(), traces.len());
        for (i, reference) in traces.iter().enumerate() {
            assert_traces_bit_equal(&reader.decode_trace(i).unwrap(), reference);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
