//! Plain-text and Markdown rendering of goals, ICPA tables, and catalog
//! tables — the documentation artifacts ICPA exists to produce.

use crate::catalog::CatalogEntry;
use crate::goal::Goal;
use crate::icpa::IcpaTable;
use crate::system::{ControlPath, PathStep};
use std::fmt::Write as _;

/// Renders a goal as a KAOS-style card (thesis Figure 2.6 layout).
///
/// ```
/// use esafe_core::{Goal, GoalClass};
/// use esafe_core::render::goal_card;
/// use esafe_logic::parse;
/// let g = Goal::new("Achieve[TrainProgress]", GoalClass::Achieve,
///                   "The train shall progress through consecutive blocks.",
///                   parse("on_block => eventually(on_next_block)").unwrap());
/// let card = goal_card(&g);
/// assert!(card.contains("InformalDef"));
/// ```
pub fn goal_card(goal: &Goal) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Goal: {}", goal.name());
    let _ = writeln!(out, "InformalDef: {}", goal.informal());
    let _ = writeln!(out, "FormalDef: {}", goal.formal());
    out
}

/// Renders an indirect control path tree as an indented outline.
pub fn control_path(path: &ControlPath) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Variable: {}", path.root);
    for step in &path.branches {
        render_step(step, 1, &mut out);
    }
    out
}

fn render_step(step: &PathStep, indent: usize, out: &mut String) {
    let _ = writeln!(
        out,
        "{}L{} {} (via {})",
        "  ".repeat(indent),
        step.level,
        step.agent,
        step.via
    );
    for c in &step.children {
        render_step(c, indent + 1, out);
    }
}

/// Renders a full ICPA table in the six-section layout of Figure 4.7.
pub fn icpa_table(table: &IcpaTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Indirect Control Path Analysis ===");
    let _ = writeln!(out, "\n-- System Safety Goal --");
    out.push_str(&goal_card(&table.goal));

    let _ = writeln!(out, "\n-- Indirect Control Paths --");
    for p in &table.paths {
        out.push_str(&control_path(p));
    }

    let _ = writeln!(out, "\n-- Indirect Control Relationships --");
    for r in &table.relationships {
        let _ = writeln!(
            out,
            "[{:02}] ({}) {}",
            r.number,
            r.subsystems.join(", "),
            r.formal
        );
        if !r.comment.is_empty() {
            let _ = writeln!(out, "     % {}", r.comment);
        }
    }

    let _ = writeln!(out, "\n-- Goal Coverage Strategy --");
    let _ = writeln!(out, "Goal Assignment: {}", table.strategy.assignment);
    let _ = writeln!(out, "Goal Scope:      {}", table.strategy.scope);

    let _ = writeln!(out, "\n-- Goal Elaboration --");
    for e in &table.elaboration {
        let refs = e
            .using_relationships
            .iter()
            .map(|n| format!("{n:02}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "{}  [{}] — {} ({})", e.derived, refs, e.tactic, e.note);
    }

    let _ = writeln!(out, "\n-- Subsystem Safety Goals --");
    for s in &table.subgoals {
        let _ = writeln!(out, "Subsystem: {}", s.subsystem);
        let _ = writeln!(out, "Controls: {}", s.controls.join(", "));
        let _ = writeln!(out, "Observes: {}", s.observes.join(", "));
        out.push_str(&goal_card(&s.goal));
        out.push('\n');
    }

    match table.verify() {
        Some(true) => {
            let _ = writeln!(out, "[verified: subgoals + assumptions entail the goal]");
        }
        Some(false) => {
            let _ = writeln!(
                out,
                "[not verified: subgoals + assumptions do not propositionally \
                 entail the goal — check soundness, or verify inductively by \
                 model checking / run-time monitoring (§4.4.3)]"
            );
        }
        None => {
            let _ = writeln!(
                out,
                "[not propositionally checkable: verify by model checking or monitoring]"
            );
        }
    }
    out
}

/// Renders one Appendix-B-style catalog table as Markdown.
pub fn catalog_markdown(title: &str, rows: &[CatalogEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = writeln!(
        out,
        "| Goal | Capabilities | Realizable | Alternative | Restrictive |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for row in rows {
        let caps = row
            .form
            .var_names()
            .iter()
            .zip(&row.capabilities)
            .map(|(n, c)| format!("{n}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        let alt = row
            .alternative
            .as_ref()
            .map(|e| format!("`{e}`"))
            .unwrap_or_else(|| "—".to_owned());
        let _ = writeln!(
            out,
            "| `{}` | {} | {} | {} | {} |",
            row.original,
            caps,
            if row.realizable_as_is { "yes" } else { "no" },
            alt,
            if row.restrictive { "yes" } else { "no" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, AgentKind};
    use crate::catalog::{self, GoalForm, LiftPos, Shape};
    use crate::goal::GoalClass;
    use crate::icpa::{CoverageStrategy, GoalAssignment, GoalScope, IcpaBuilder};
    use crate::system::ControlGraph;
    use esafe_logic::parse;

    #[test]
    fn goal_card_has_three_lines() {
        let g = Goal::new(
            "Avoid[H]",
            GoalClass::Avoid,
            "never h",
            parse("!h").unwrap(),
        );
        let card = goal_card(&g);
        assert_eq!(card.lines().count(), 3);
        assert!(card.contains("Avoid[H]"));
        assert!(card.contains("never h"));
    }

    #[test]
    fn icpa_rendering_contains_all_sections() {
        let mut graph = ControlGraph::new();
        graph.add_var("b", "");
        graph.add_var("a", "");
        graph.add_agent(
            Agent::new("X", AgentKind::Software)
                .controls(["b"])
                .monitors(["a"]),
        );
        let table = IcpaBuilder::new(Goal::new(
            "Maintain[G]",
            GoalClass::Maintain,
            "",
            parse("prev(a) => b").unwrap(),
        ))
        .trace_paths(&graph)
        .relationship(7, "b", ["X"], parse("b <-> b").unwrap(), "identity")
        .strategy(CoverageStrategy {
            assignment: GoalAssignment::SingleResponsibility { agent: "X".into() },
            scope: GoalScope::Nonrestrictive,
        })
        .subgoal(
            "X",
            Goal::new(
                "Achieve[S]",
                GoalClass::Achieve,
                "",
                parse("prev(a) => b").unwrap(),
            ),
            ["b"],
            ["a"],
        )
        .finish();
        let text = icpa_table(&table);
        for needle in [
            "System Safety Goal",
            "Indirect Control Paths",
            "Indirect Control Relationships",
            "Goal Coverage Strategy",
            "Goal Elaboration",
            "Subsystem Safety Goals",
            "[07]",
            "verified",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn catalog_markdown_renders_rows() {
        let rows = catalog::table(&GoalForm::new(Shape::Simple, LiftPos::None));
        let md = catalog_markdown("B.1 (excerpt)", &rows);
        assert!(md.contains("| Goal |"));
        assert!(md.lines().count() > rows.len());
    }
}
