//! KAOS-style goal definitions.

use esafe_logic::Expr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The four KAOS goal pattern classes (thesis Table 2.2).
///
/// | Class    | Pattern        |
/// |----------|----------------|
/// | Achieve  | `P ⇒ ♦Q`       |
/// | Cease    | `P ⇒ ♦¬Q`      |
/// | Maintain | `P ⇒ □Q`       |
/// | Avoid    | `P ⇒ □¬Q`      |
///
/// Safety goals are typically `Avoid` goals (constrain a hazardous
/// condition) or operationalized `Achieve`/`Maintain` goals over bounded
/// response windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GoalClass {
    /// `P ⇒ ♦Q` — eventually bring about `Q`.
    Achieve,
    /// `P ⇒ ♦¬Q` — eventually stop `Q`.
    Cease,
    /// `P ⇒ □Q` — keep `Q` holding.
    Maintain,
    /// `P ⇒ □¬Q` — keep the hazard `Q` from holding.
    Avoid,
}

impl GoalClass {
    /// The class name as it appears in goal names like `Maintain[...]`.
    pub fn keyword(self) -> &'static str {
        match self {
            GoalClass::Achieve => "Achieve",
            GoalClass::Cease => "Cease",
            GoalClass::Maintain => "Maintain",
            GoalClass::Avoid => "Avoid",
        }
    }
}

impl fmt::Display for GoalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A safety goal in the KAOS format: a named, informally and formally
/// defined constraint on system state.
///
/// The formal definition is a temporal-logic [`Expr`]; the monitored and
/// controlled variable sets are derived positionally (past-referenced
/// variables are monitored, present-referenced variables are controlled —
/// thesis §4.5.3) but may be overridden when the analyst knows better.
///
/// # Example
///
/// ```
/// use esafe_core::{Goal, GoalClass};
/// use esafe_logic::parse;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Goal::new(
///     "Maintain[DoorClosedOrElevatorStopped]",
///     GoalClass::Maintain,
///     "At all times the door shall be closed or the elevator stopped.",
///     parse("always(door_closed || elevator_stopped)")?,
/// );
/// assert!(g.controlled_vars().contains("door_closed"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Goal {
    name: String,
    class: GoalClass,
    informal: String,
    formal: Expr,
    monitored_override: Option<BTreeSet<String>>,
    controlled_override: Option<BTreeSet<String>>,
}

impl Goal {
    /// Creates a goal with positionally derived variable roles.
    pub fn new(
        name: impl Into<String>,
        class: GoalClass,
        informal: impl Into<String>,
        formal: Expr,
    ) -> Self {
        Goal {
            name: name.into(),
            class,
            informal: informal.into(),
            formal,
            monitored_override: None,
            controlled_override: None,
        }
    }

    /// Overrides the derived monitored-variable set.
    pub fn with_monitored(mut self, vars: impl IntoIterator<Item = String>) -> Self {
        self.monitored_override = Some(vars.into_iter().collect());
        self
    }

    /// Overrides the derived controlled-variable set.
    pub fn with_controlled(mut self, vars: impl IntoIterator<Item = String>) -> Self {
        self.controlled_override = Some(vars.into_iter().collect());
        self
    }

    /// The goal's name, e.g. `Achieve[AutoAccelBelowThreshold]`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The KAOS pattern class.
    pub fn class(&self) -> GoalClass {
        self.class
    }

    /// The natural-language definition.
    pub fn informal(&self) -> &str {
        &self.informal
    }

    /// The formal temporal-logic definition.
    pub fn formal(&self) -> &Expr {
        &self.formal
    }

    /// Variables the realizing agent must *monitor* (referenced in the
    /// past: under `prev`, `held_for`, `once_within`, `once`,
    /// `historically`, or the previous-state half of `became`).
    pub fn monitored_vars(&self) -> BTreeSet<String> {
        if let Some(m) = &self.monitored_override {
            return m.clone();
        }
        let (monitored, _) = var_roles(&self.formal);
        monitored
    }

    /// Variables the realizing agent must *control* (referenced in the
    /// present state).
    pub fn controlled_vars(&self) -> BTreeSet<String> {
        if let Some(c) = &self.controlled_override {
            return c.clone();
        }
        let (_, controlled) = var_roles(&self.formal);
        controlled
    }

    /// All variables referenced by the formal definition.
    pub fn vars(&self) -> BTreeSet<String> {
        self.formal.vars()
    }
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.formal)
    }
}

/// Splits the variables of an expression into (monitored, controlled) by
/// temporal position: variables referenced strictly in the past are
/// monitored; variables referenced in the present state are controlled.
/// A variable referenced in both positions appears in both sets.
pub fn var_roles(expr: &Expr) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut monitored = BTreeSet::new();
    let mut controlled = BTreeSet::new();
    collect_roles(expr, false, &mut monitored, &mut controlled);
    (monitored, controlled)
}

fn collect_roles(
    expr: &Expr,
    in_past: bool,
    monitored: &mut BTreeSet<String>,
    controlled: &mut BTreeSet<String>,
) {
    use esafe_logic::Operand;
    let mut add = |name: &str| {
        if in_past {
            monitored.insert(name.to_owned());
        } else {
            controlled.insert(name.to_owned());
        }
    };
    match expr {
        Expr::Const(_) => {}
        Expr::Var(v) => add(v),
        Expr::Cmp { lhs, rhs, .. } => {
            if let Operand::Var(v) = lhs {
                add(v);
            }
            if let Operand::Var(v) = rhs {
                add(v);
            }
        }
        Expr::Not(e)
        | Expr::Always(e)
        | Expr::Eventually(e)
        | Expr::Next(e)
        | Expr::Initially(e) => collect_roles(e, in_past, monitored, controlled),
        Expr::And(items) | Expr::Or(items) => {
            for e in items {
                collect_roles(e, in_past, monitored, controlled);
            }
        }
        Expr::Implies(a, b) | Expr::Entails(a, b) | Expr::Iff(a, b) => {
            collect_roles(a, in_past, monitored, controlled);
            collect_roles(b, in_past, monitored, controlled);
        }
        Expr::Prev(e) | Expr::Once(e) | Expr::Historically(e) => {
            collect_roles(e, true, monitored, controlled)
        }
        Expr::HeldFor { expr, .. } | Expr::OnceWithin { expr, .. } => {
            collect_roles(expr, true, monitored, controlled)
        }
        // `became(p) ≡ p ∧ ●¬p`: p is referenced both now and in the past.
        Expr::Became(e) => {
            collect_roles(e, in_past, monitored, controlled);
            collect_roles(e, true, monitored, controlled);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::parse;

    #[test]
    fn roles_split_by_temporal_position() {
        let e = parse("prev(a) -> b").unwrap();
        let (m, c) = var_roles(&e);
        assert!(m.contains("a") && !m.contains("b"));
        assert!(c.contains("b") && !c.contains("a"));
    }

    #[test]
    fn present_antecedent_is_controlled() {
        // A ⇒ B requires control of both (thesis Table 4.5).
        let e = parse("a => b").unwrap();
        let (m, c) = var_roles(&e);
        assert!(m.is_empty());
        assert!(c.contains("a") && c.contains("b"));
    }

    #[test]
    fn became_references_both_positions() {
        let e = parse("became(p)").unwrap();
        let (m, c) = var_roles(&e);
        assert!(m.contains("p") && c.contains("p"));
    }

    #[test]
    fn bounded_windows_are_monitored() {
        let e = parse("held_for(cmd == 'STOP', 5ticks) -> stopped").unwrap();
        let (m, c) = var_roles(&e);
        assert!(m.contains("cmd"));
        assert!(c.contains("stopped"));
    }

    #[test]
    fn overrides_replace_derivation() {
        let g = Goal::new("G", GoalClass::Avoid, "informal", parse("a -> b").unwrap())
            .with_monitored(["x".to_owned()])
            .with_controlled(["y".to_owned()]);
        assert_eq!(g.monitored_vars().into_iter().collect::<Vec<_>>(), ["x"]);
        assert_eq!(g.controlled_vars().into_iter().collect::<Vec<_>>(), ["y"]);
        assert!(g.vars().contains("a")); // vars() still reports the formula
    }

    #[test]
    fn display_shows_name_and_formula() {
        let g = Goal::new("Avoid[X]", GoalClass::Avoid, "", parse("!x").unwrap());
        assert_eq!(g.to_string(), "Avoid[X]: !x");
        assert_eq!(g.class().keyword(), "Avoid");
    }
}
