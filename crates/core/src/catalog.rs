//! The goal realizability-pattern catalog (thesis Table 4.5, Appendix B).
//!
//! Appendix B tabulates, for thirteen goal forms built from `A ⇒ B` with
//! optional `●` lifts and `∨`/`∧` compounds, which combinations of variable
//! controllability/observability make the goal realizable as written, and
//! what *alternative goal* (equivalent, or sound-but-restrictive) to use
//! otherwise.
//!
//! Rather than transcribing the tables, this module **derives** them from
//! the rules of §4.5.3 — controlled variables must be referenced in the
//! present state, observed variables in a prior state — and machine-checks
//! every emitted alternative for soundness (`alternative ⊨ original`, with
//! the alternative treated as an invariant). The thesis asserts these
//! properties; here they are proved per row by model enumeration.
//!
//! # Example
//!
//! ```
//! use esafe_core::catalog::{resolve, Capability, GoalForm, LiftPos, Shape};
//!
//! // A ⇒ ●B with B observable and A controllable: the contrapositive
//! // ¬●B ⇒ ¬A is an equivalent (nonrestrictive) realizable form.
//! let form = GoalForm::new(Shape::Simple, LiftPos::FirstConsequent);
//! let entry = resolve(&form, &[Capability::Controllable, Capability::Observable]);
//! assert!(!entry.realizable_as_is);
//! assert!(!entry.restrictive);
//! assert_eq!(entry.alternative.as_ref().unwrap().to_string(), "!prev(b) => !a");
//! ```

use crate::goal::var_roles;
use esafe_logic::prop::{self, PropSet};
use esafe_logic::Expr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The boolean structure of a goal form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Shape {
    /// `A ⇒ B` (Appendix B.1 / Table 4.5).
    Simple,
    /// `A ∨ B ⇒ C` (B.2–B.4).
    OrAntecedent,
    /// `A ∧ B ⇒ C` (B.5–B.7).
    AndAntecedent,
    /// `A ⇒ B ∧ C` (B.8–B.10).
    AndConsequent,
    /// `A ⇒ B ∨ C` (B.11–B.13).
    OrConsequent,
}

impl Shape {
    /// Number of distinct variables in the form.
    pub fn var_count(self) -> usize {
        match self {
            Shape::Simple => 2,
            _ => 3,
        }
    }
}

/// Where the `●` lift sits in the form, following the appendix's three
/// variants per shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LiftPos {
    /// No lift: e.g. `A ∨ B ⇒ C`.
    None,
    /// Lift on the first antecedent variable: e.g. `●A ∨ B ⇒ C`.
    FirstAntecedent,
    /// Lift on the first consequent variable: e.g. `A ⇒ ●B ∨ C`.
    FirstConsequent,
}

/// A goal form: shape plus lift position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GoalForm {
    /// Boolean structure.
    pub shape: Shape,
    /// `●` placement.
    pub lift: LiftPos,
}

impl GoalForm {
    /// Creates a goal form.
    pub fn new(shape: Shape, lift: LiftPos) -> Self {
        GoalForm { shape, lift }
    }

    /// Variable names of the form, in order (`a`, `b`[, `c`]).
    pub fn var_names(&self) -> Vec<&'static str> {
        match self.shape.var_count() {
            2 => vec!["a", "b"],
            _ => vec!["a", "b", "c"],
        }
    }

    /// The form's goal expression over variables `a`, `b`[, `c`].
    pub fn expr(&self) -> Expr {
        let lift_first = |e: Expr, do_lift: bool| if do_lift { Expr::prev(e) } else { e };
        let (ante, cons) = match self.shape {
            Shape::Simple => (
                lift_first(Expr::var("a"), self.lift == LiftPos::FirstAntecedent),
                lift_first(Expr::var("b"), self.lift == LiftPos::FirstConsequent),
            ),
            Shape::OrAntecedent => (
                Expr::or(
                    lift_first(Expr::var("a"), self.lift == LiftPos::FirstAntecedent),
                    Expr::var("b"),
                ),
                lift_first(Expr::var("c"), self.lift == LiftPos::FirstConsequent),
            ),
            Shape::AndAntecedent => (
                Expr::and(
                    lift_first(Expr::var("a"), self.lift == LiftPos::FirstAntecedent),
                    Expr::var("b"),
                ),
                lift_first(Expr::var("c"), self.lift == LiftPos::FirstConsequent),
            ),
            Shape::AndConsequent => (
                lift_first(Expr::var("a"), self.lift == LiftPos::FirstAntecedent),
                Expr::and(
                    lift_first(Expr::var("b"), self.lift == LiftPos::FirstConsequent),
                    Expr::var("c"),
                ),
            ),
            Shape::OrConsequent => (
                lift_first(Expr::var("a"), self.lift == LiftPos::FirstAntecedent),
                Expr::or(
                    lift_first(Expr::var("b"), self.lift == LiftPos::FirstConsequent),
                    Expr::var("c"),
                ),
            ),
        };
        Expr::entails(ante, cons)
    }
}

impl fmt::Display for GoalForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr())
    }
}

/// An agent's capability over one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Capability {
    /// The agent can set the variable (and therefore also knows it).
    Controllable,
    /// The agent can observe the variable one state later, but not set it.
    Observable,
    /// Neither.
    Unavailable,
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Capability::Controllable => "ctrl",
            Capability::Observable => "obs",
            Capability::Unavailable => "—",
        };
        f.write_str(s)
    }
}

/// One row of the catalog: a form, a capability assignment, and the
/// resolved alternative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// The goal form.
    pub form: GoalForm,
    /// Per-variable capabilities, in [`GoalForm::var_names`] order.
    pub capabilities: Vec<Capability>,
    /// The original goal expression.
    pub original: Expr,
    /// Whether the original is realizable as written.
    pub realizable_as_is: bool,
    /// The recommended goal (the original when realizable; an equivalent
    /// or restrictive rewrite otherwise; `None` when no sound realizable
    /// goal exists under these capabilities).
    pub alternative: Option<Expr>,
    /// Whether the alternative strictly strengthens the original.
    pub restrictive: bool,
    /// Machine check: `alternative ⊨ original` (as invariants). Always
    /// `true` for emitted alternatives; kept explicit for audits.
    pub verified_sound: bool,
}

/// Resolves one catalog row.
///
/// # Panics
///
/// Panics if `caps.len()` differs from the form's variable count.
pub fn resolve(form: &GoalForm, caps: &[Capability]) -> CatalogEntry {
    let names = form.var_names();
    assert_eq!(caps.len(), names.len(), "one capability per variable");
    let original = form.expr();

    // Direction-aware realizability (§4.5.3): in `ante ⇒ cons` the agent
    // constrains the *consequent*, so every consequent variable must be
    // controllable even when referenced in the past (`A ⇒ ●B` with B merely
    // observable is only realizable via its contrapositive). Antecedent
    // variables follow the positional rule: present ⇒ controllable,
    // past ⇒ at least observable.
    fn is_realizable(e: &Expr, names: &[&str], caps: &[Capability]) -> bool {
        let ctrl = |v: &String| cap_of(v, names, caps) == Capability::Controllable;
        let avail = |v: &String| cap_of(v, names, caps) != Capability::Unavailable;
        match e {
            Expr::Entails(a, c) | Expr::Implies(a, c) => {
                let (ante_past, ante_now) = var_roles(a);
                c.vars().iter().all(ctrl)
                    && ante_now.iter().all(ctrl)
                    && ante_past.iter().all(avail)
            }
            Expr::Always(inner) => is_realizable(inner, names, caps),
            other => {
                let (past, now) = var_roles(other);
                now.iter().all(ctrl) && past.iter().all(avail)
            }
        }
    }
    let realizable = |e: &Expr| -> bool { is_realizable(e, &names, caps) };

    if realizable(&original) {
        return CatalogEntry {
            form: *form,
            capabilities: caps.to_vec(),
            original: original.clone(),
            realizable_as_is: true,
            alternative: Some(original),
            restrictive: false,
            verified_sound: true,
        };
    }

    // Search the candidate space for the best sound, realizable rewrite.
    let mut best: Option<(Expr, bool, u64)> = None; // (expr, restrictive, weakness)
    for cand in candidates(&original) {
        if !realizable(&cand) {
            continue;
        }
        if !entails_invariant_one(&cand, &original) {
            continue;
        }
        let equivalent = entails_invariant_one(&original, &cand);
        let weakness = model_weight(&cand, &original);
        let better = match &best {
            None => true,
            Some((_, best_restrictive, best_weak)) => {
                // Prefer nonrestrictive; then the weakest restriction.
                match (equivalent, !best_restrictive) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => weakness > *best_weak,
                }
            }
        };
        if better {
            best = Some((cand, !equivalent, weakness));
        }
    }

    match best {
        Some((alt, restrictive, _)) => CatalogEntry {
            form: *form,
            capabilities: caps.to_vec(),
            original,
            realizable_as_is: false,
            alternative: Some(alt),
            restrictive,
            verified_sound: true,
        },
        None => CatalogEntry {
            form: *form,
            capabilities: caps.to_vec(),
            original,
            realizable_as_is: false,
            alternative: None,
            restrictive: false,
            verified_sound: false,
        },
    }
}

fn cap_of(var: &str, names: &[&str], caps: &[Capability]) -> Capability {
    names
        .iter()
        .position(|n| *n == var)
        .map(|i| caps[i])
        .unwrap_or(Capability::Unavailable)
}

fn entails_invariant_one(premise: &Expr, conclusion: &Expr) -> bool {
    prop::entails_invariant(&[premise], conclusion).unwrap_or(false)
}

/// Weakness score: how many models the candidate admits jointly with the
/// original (higher = weaker = less restrictive).
fn model_weight(cand: &Expr, original: &Expr) -> u64 {
    PropSet::build(&[cand, original])
        .map(|s| s.count_models_where(|t| t[0]))
        .unwrap_or(0)
}

/// Candidate rewrites for an entailment goal: the original, contrapositive,
/// antecedent-conjunct strengthenings, consequent-disjunct strengthenings,
/// their contrapositives, and the blunt `□v` / `□¬v` restrictions per
/// variable.
fn candidates(original: &Expr) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::new();
    let push = |e: Expr, out: &mut Vec<Expr>| {
        if !out.contains(&e) {
            out.push(e);
        }
    };

    if let Expr::Entails(a, c) = original {
        // Contrapositive.
        push(
            Expr::entails(Expr::not((**c).clone()), Expr::not((**a).clone())),
            &mut out,
        );
        // Strengthen: drop antecedent conjuncts.
        if let Expr::And(items) = a.as_ref() {
            for keep in proper_subsets(items) {
                let g = Expr::entails(Expr::and_all(keep), (**c).clone());
                push(g.clone(), &mut out);
                if let Expr::Entails(ga, gc) = &g {
                    push(
                        Expr::entails(Expr::not((**gc).clone()), Expr::not((**ga).clone())),
                        &mut out,
                    );
                }
            }
        }
        // Strengthen: drop consequent disjuncts.
        if let Expr::Or(items) = c.as_ref() {
            for keep in proper_subsets(items) {
                let g = Expr::entails((**a).clone(), Expr::or_all(keep));
                push(g.clone(), &mut out);
                if let Expr::Entails(ga, gc) = &g {
                    push(
                        Expr::entails(Expr::not((**gc).clone()), Expr::not((**ga).clone())),
                        &mut out,
                    );
                }
            }
        }
    }

    // Blunt restrictions: force or forbid a single variable everywhere.
    let vars: BTreeSet<String> = original.vars();
    for v in &vars {
        push(Expr::always(Expr::var(v.clone())), &mut out);
        push(Expr::always(Expr::not(Expr::var(v.clone()))), &mut out);
    }
    out
}

fn proper_subsets(items: &[Expr]) -> Vec<Vec<Expr>> {
    let n = items.len();
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) - 1 {
        let subset: Vec<Expr> = items
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, e)| e.clone())
            .collect();
        out.push(subset);
    }
    out
}

/// All capability assignments for `n` variables (3ⁿ rows).
pub fn capability_assignments(n: usize) -> Vec<Vec<Capability>> {
    let all = [
        Capability::Controllable,
        Capability::Observable,
        Capability::Unavailable,
    ];
    let mut out: Vec<Vec<Capability>> = vec![vec![]];
    for _ in 0..n {
        out = out
            .into_iter()
            .flat_map(|prefix| {
                all.iter().map(move |c| {
                    let mut next = prefix.clone();
                    next.push(*c);
                    next
                })
            })
            .collect();
    }
    out
}

/// Generates the full table for one goal form (one Appendix B table's
/// worth of rows).
pub fn table(form: &GoalForm) -> Vec<CatalogEntry> {
    capability_assignments(form.shape.var_count())
        .into_iter()
        .map(|caps| resolve(form, &caps))
        .collect()
}

/// The thirteen Appendix B tables, keyed `B.1` … `B.13`.
///
/// `B.1` combines the three lifts of the simple form, as in the thesis;
/// compound shapes get one table per lift.
pub fn appendix_b() -> Vec<(String, Vec<CatalogEntry>)> {
    let mut out = Vec::new();
    // B.1: A ⇒ B, ●A ⇒ B, A ⇒ ●B.
    let mut b1 = Vec::new();
    for lift in [
        LiftPos::None,
        LiftPos::FirstAntecedent,
        LiftPos::FirstConsequent,
    ] {
        b1.extend(table(&GoalForm::new(Shape::Simple, lift)));
    }
    out.push(("B.1".to_owned(), b1));
    let mut idx = 2;
    for shape in [
        Shape::OrAntecedent,
        Shape::AndAntecedent,
        Shape::AndConsequent,
        Shape::OrConsequent,
    ] {
        for lift in [
            LiftPos::None,
            LiftPos::FirstAntecedent,
            LiftPos::FirstConsequent,
        ] {
            out.push((format!("B.{idx}"), table(&GoalForm::new(shape, lift))));
            idx += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::parse;

    const C: Capability = Capability::Controllable;
    const O: Capability = Capability::Observable;
    const U: Capability = Capability::Unavailable;

    fn simple(lift: LiftPos) -> GoalForm {
        GoalForm::new(Shape::Simple, lift)
    }

    #[test]
    fn form_expressions_match_the_tables() {
        assert_eq!(simple(LiftPos::None).expr(), parse("a => b").unwrap());
        assert_eq!(
            simple(LiftPos::FirstAntecedent).expr(),
            parse("prev(a) => b").unwrap()
        );
        assert_eq!(
            GoalForm::new(Shape::OrAntecedent, LiftPos::FirstAntecedent).expr(),
            parse("prev(a) || b => c").unwrap()
        );
        assert_eq!(
            GoalForm::new(Shape::OrConsequent, LiftPos::FirstConsequent).expr(),
            parse("a => prev(b) || c").unwrap()
        );
    }

    // Table 4.5, form A ⇒ B.
    #[test]
    fn a_implies_b_needs_both_controllable() {
        let e = resolve(&simple(LiftPos::None), &[C, C]);
        assert!(e.realizable_as_is && !e.restrictive);
    }

    #[test]
    fn a_implies_b_with_only_a_controllable_forbids_a() {
        let e = resolve(&simple(LiftPos::None), &[C, U]);
        assert!(!e.realizable_as_is && e.restrictive);
        assert_eq!(e.alternative.unwrap(), parse("always(!a)").unwrap());
    }

    #[test]
    fn a_implies_b_with_only_b_controllable_forces_b() {
        let e = resolve(&simple(LiftPos::None), &[U, C]);
        assert!(e.restrictive);
        assert_eq!(e.alternative.unwrap(), parse("always(b)").unwrap());
    }

    #[test]
    fn a_implies_b_observable_antecedent_is_still_restricted() {
        // A observable, B controllable: same-state reaction impossible.
        let e = resolve(&simple(LiftPos::None), &[O, C]);
        assert!(!e.realizable_as_is);
        assert!(e.restrictive);
        assert_eq!(e.alternative.unwrap(), parse("always(b)").unwrap());
    }

    // Table 4.5, form ●A ⇒ B.
    #[test]
    fn prev_a_implies_b_realizable_with_observation() {
        let e = resolve(&simple(LiftPos::FirstAntecedent), &[O, C]);
        assert!(e.realizable_as_is);
        let e2 = resolve(&simple(LiftPos::FirstAntecedent), &[C, C]);
        assert!(e2.realizable_as_is);
    }

    #[test]
    fn prev_a_implies_b_without_observation_restricts() {
        let e = resolve(&simple(LiftPos::FirstAntecedent), &[U, C]);
        assert!(e.restrictive);
        assert_eq!(e.alternative.unwrap(), parse("always(b)").unwrap());
    }

    // Table 4.5, form A ⇒ ●B.
    #[test]
    fn a_implies_prev_b_contrapositive_is_equivalent() {
        let e = resolve(&simple(LiftPos::FirstConsequent), &[C, O]);
        assert!(!e.realizable_as_is);
        assert!(!e.restrictive, "thesis: ¬●B ⇒ ¬A is an equivalent form");
        assert_eq!(e.alternative.unwrap(), parse("!prev(b) => !a").unwrap());
    }

    #[test]
    fn a_implies_prev_b_both_controllable_realizable() {
        let e = resolve(&simple(LiftPos::FirstConsequent), &[C, C]);
        assert!(e.realizable_as_is);
    }

    #[test]
    fn no_capabilities_yields_no_alternative() {
        let e = resolve(&simple(LiftPos::None), &[U, U]);
        assert!(e.alternative.is_none());
        assert!(!e.verified_sound);
    }

    #[test]
    fn and_antecedent_drops_unobservable_conjunct() {
        // A ∧ B ⇒ C with B unavailable: strengthen to A ⇒ C.
        let form = GoalForm::new(Shape::AndAntecedent, LiftPos::FirstAntecedent);
        let e = resolve(&form, &[O, U, C]);
        assert!(e.restrictive);
        assert_eq!(e.alternative.unwrap(), parse("prev(a) => c").unwrap());
    }

    #[test]
    fn or_consequent_drops_uncontrollable_disjunct() {
        // A ⇒ B ∨ C with C unavailable: strengthen to A ⇒ B.
        let form = GoalForm::new(Shape::OrConsequent, LiftPos::FirstAntecedent);
        let e = resolve(&form, &[O, C, U]);
        assert!(e.restrictive);
        assert_eq!(e.alternative.unwrap(), parse("prev(a) => b").unwrap());
    }

    #[test]
    fn or_antecedent_with_unavailable_disjunct_forces_consequent() {
        // A ∨ B ⇒ C with B unavailable: only □C covers B's firing.
        let form = GoalForm::new(Shape::OrAntecedent, LiftPos::None);
        let e = resolve(&form, &[C, U, C]);
        assert!(e.restrictive);
        assert_eq!(e.alternative.unwrap(), parse("always(c)").unwrap());
    }

    #[test]
    fn every_emitted_alternative_is_sound() {
        for (name, rows) in appendix_b() {
            for row in rows {
                if let Some(alt) = &row.alternative {
                    assert!(
                        prop::entails_invariant(&[alt], &row.original).unwrap(),
                        "{name}: {} does not entail {}",
                        alt,
                        row.original
                    );
                }
            }
        }
    }

    #[test]
    fn appendix_b_has_thirteen_tables() {
        let tables = appendix_b();
        assert_eq!(tables.len(), 13);
        assert_eq!(tables[0].0, "B.1");
        assert_eq!(tables[0].1.len(), 27); // 3 lifts × 9 assignments
        assert_eq!(tables[1].1.len(), 27); // 27 assignments of 3 vars
    }

    #[test]
    fn nonrestrictive_alternatives_are_equivalent() {
        for (_, rows) in appendix_b() {
            for row in rows {
                if let (Some(alt), false) = (&row.alternative, row.restrictive) {
                    assert!(
                        prop::entails_invariant(&[&row.original], alt).unwrap(),
                        "nonrestrictive {} must be equivalent to {}",
                        alt,
                        row.original
                    );
                }
            }
        }
    }
}
