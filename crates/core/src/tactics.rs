//! Goal elaboration and realizability tactics (thesis §4.1.2, §4.5).
//!
//! Each tactic takes a parent goal (and supporting data) and produces a
//! [`TacticApplication`]: derived subgoals, the critical assumptions the
//! derivation relies on, and — when the formulas are propositionally
//! unrollable — a machine check that `subgoals ∧ assumptions ⊨ parent`.

use esafe_logic::{prop, Expr, Operand, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The tactic catalog (Letier & van Lamsweerde's realizability tactics
/// plus the thesis's restriction/coordination patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TacticKind {
    /// Fig. 4.1(a): replace a variable by an accurate sensed image of it.
    IntroduceAccuracyGoal,
    /// Fig. 4.1(b): replace a predicate by an actuation command that
    /// produces it.
    IntroduceActuationGoal,
    /// Fig. 4.2: `P ⇒ Q` via a middle variable: `P ⇒ M`, `M ⇒ Q`.
    SplitByChaining,
    /// Fig. 4.3: case-split the antecedent with a coverage condition.
    SplitByCase,
    /// §3.3.5 / §4.5.2: strengthen a disjunction by dropping disjuncts.
    OrReduction,
    /// §4.5.2: tighten a numeric threshold by a safety margin.
    SafetyMargin,
    /// §4.5.1 eq. 4.12–4.23: interlock variables coordinating two agents.
    Interlock,
    /// §4.5.1 eq. 4.24–4.30: a lockout agent gates another agent's action.
    Lockout,
}

impl fmt::Display for TacticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TacticKind::IntroduceAccuracyGoal => "introduce accuracy goal",
            TacticKind::IntroduceActuationGoal => "introduce actuation goal",
            TacticKind::SplitByChaining => "split by chaining",
            TacticKind::SplitByCase => "split by case",
            TacticKind::OrReduction => "OR-reduction",
            TacticKind::SafetyMargin => "safety margin",
            TacticKind::Interlock => "interlock",
            TacticKind::Lockout => "lockout",
        };
        f.write_str(s)
    }
}

/// The result of applying a tactic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TacticApplication {
    /// Which tactic produced this.
    pub tactic: TacticKind,
    /// The derived subgoals.
    pub subgoals: Vec<Expr>,
    /// Critical assumptions (indirect control relationships, coverage
    /// conditions, initial-state facts) the derivation relies on.
    pub assumptions: Vec<Expr>,
    /// `Some(true)` when `subgoals ∧ assumptions ⊨ parent` was machine
    /// checked and holds; `Some(false)` when the check ran and failed;
    /// `None` when the formulas are not propositionally checkable.
    pub verified: Option<bool>,
}

impl TacticApplication {
    fn checked(
        tactic: TacticKind,
        parent: &Expr,
        subgoals: Vec<Expr>,
        assumptions: Vec<Expr>,
    ) -> Self {
        let premises: Vec<&Expr> = subgoals.iter().chain(assumptions.iter()).collect();
        let verified = prop::entails_invariant(&premises, parent).ok();
        TacticApplication {
            tactic,
            subgoals,
            assumptions,
            verified,
        }
    }
}

/// Fig. 4.1(a) — *introduce accuracy goal*: rewrite `goal` to reference an
/// observable image `image_var` of the unobservable `var`, with the
/// accuracy assumption `□(var ⇔ image_var)`.
pub fn introduce_accuracy(goal: &Expr, var: &str, image_var: &str) -> TacticApplication {
    let rewritten = goal.rename_vars(&|v| {
        if v == var {
            image_var.to_owned()
        } else {
            v.to_owned()
        }
    });
    let accuracy = Expr::iff(Expr::var(var), Expr::var(image_var));
    TacticApplication::checked(
        TacticKind::IntroduceAccuracyGoal,
        goal,
        vec![rewritten],
        vec![accuracy],
    )
}

/// Fig. 4.1(b) — *introduce actuation goal*: rewrite `goal` to reference a
/// controllable actuation `command_var` whose effect is `var`, with the
/// actuation assumption `□(command_var ⇔ var)`.
///
/// Real actuators respond with delay; the exact equivalence stands in for
/// the delay relationships (eq. 4.2–4.5), which ICPA records as additional
/// numbered assumptions.
pub fn introduce_actuation(goal: &Expr, var: &str, command_var: &str) -> TacticApplication {
    let mut app = introduce_accuracy(goal, var, command_var);
    app.tactic = TacticKind::IntroduceActuationGoal;
    app
}

/// Fig. 4.2 — *split lack of monitorability/controllability by chaining*:
/// `P ⇒ Q` becomes `P ⇒ M` and `M ⇒ Q` through the middle expression `m`.
pub fn split_by_chaining(p: &Expr, m: &Expr, q: &Expr) -> TacticApplication {
    let parent = Expr::entails(p.clone(), q.clone());
    let subgoals = vec![
        Expr::entails(p.clone(), m.clone()),
        Expr::entails(m.clone(), q.clone()),
    ];
    TacticApplication::checked(TacticKind::SplitByChaining, &parent, subgoals, vec![])
}

/// Fig. 4.3 — *split by case*: `P ⇒ Q` becomes one subgoal per case
/// predicate, with the coverage assumption `P ⇒ (case₁ ∨ … ∨ caseₙ)`.
pub fn split_by_case(p: &Expr, q: &Expr, cases: &[Expr]) -> TacticApplication {
    let parent = Expr::entails(p.clone(), q.clone());
    let subgoals: Vec<Expr> = cases
        .iter()
        .map(|c| Expr::entails(Expr::and(p.clone(), c.clone()), q.clone()))
        .collect();
    let coverage = Expr::entails(p.clone(), Expr::or_all(cases.to_vec()));
    TacticApplication::checked(TacticKind::SplitByCase, &parent, subgoals, vec![coverage])
}

/// §3.3.5 — *OR-reduction*: strengthen a disjunctive goal by keeping a
/// proper subset of disjuncts (see [`crate::compose::or_reduction`] for
/// shape details). Returns `None` when the goal shape does not reduce.
pub fn or_reduce(goal: &Expr, keep: &dyn Fn(&Expr) -> bool) -> Option<TacticApplication> {
    let reduced = crate::compose::or_reduction(goal, keep)?;
    Some(TacticApplication::checked(
        TacticKind::OrReduction,
        goal,
        vec![reduced],
        vec![],
    ))
}

/// §4.5.2 — *safety margin*: tighten the numeric threshold of a comparison
/// goal. For `var ≤ L` the subgoal becomes `var ≤ L − margin` (eq. 3.47 /
/// 3.48, 4.31); for `var ≥ L`, `var ≥ L + margin`.
///
/// Returns `None` when the goal is not a one-sided numeric comparison.
/// The entailment is arithmetic, which the propositional checker cannot
/// see, so `verified` is reported from the margin's sign instead.
pub fn safety_margin(goal: &Expr, margin: f64) -> Option<TacticApplication> {
    fn tighten(e: &Expr, margin: f64) -> Option<Expr> {
        match e {
            Expr::Always(inner) => Some(Expr::always(tighten(inner, margin)?)),
            Expr::Cmp { lhs, op, rhs } => {
                let (var, lit, op) = match (lhs, rhs) {
                    (Operand::Var(v), Operand::Lit(l)) => (v.clone(), l, *op),
                    (Operand::Lit(l), Operand::Var(v)) => (v.clone(), l, op.flipped()),
                    _ => return None,
                };
                let bound = lit.as_real()?;
                use esafe_logic::CmpOp::*;
                let new_bound = match op {
                    Le | Lt => bound - margin,
                    Ge | Gt => bound + margin,
                    Eq | Ne => return None,
                };
                Some(Expr::Cmp {
                    lhs: Operand::Var(var),
                    op,
                    rhs: Operand::Lit(Value::Real(new_bound)),
                })
            }
            _ => None,
        }
    }
    let sub = tighten(goal, margin)?;
    Some(TacticApplication {
        tactic: TacticKind::SafetyMargin,
        subgoals: vec![sub],
        assumptions: vec![],
        verified: Some(margin >= 0.0),
    })
}

/// §4.5.1 eq. 4.14–4.15 — *interlock*: coordinate two agents maintaining
/// `□(A ∨ B)` through interlock variables `LA`, `LB`. Each agent may only
/// negate its own condition after setting its lock and seeing the peer's
/// lock clear in the previous state:
///
/// ```text
/// ●(¬LA ∨ LB) ⇒ A        ●(¬LB ∨ LA) ⇒ B
/// ```
pub fn interlock(a: &str, b: &str, lock_a: &str, lock_b: &str) -> TacticApplication {
    let parent = Expr::always(Expr::or(Expr::var(a), Expr::var(b)));
    let g_a = Expr::entails(
        Expr::prev(Expr::or(Expr::not(Expr::var(lock_a)), Expr::var(lock_b))),
        Expr::var(a),
    );
    let g_b = Expr::entails(
        Expr::prev(Expr::or(Expr::not(Expr::var(lock_b)), Expr::var(lock_a))),
        Expr::var(b),
    );
    TacticApplication::checked(TacticKind::Interlock, &parent, vec![g_a, g_b], vec![])
}

/// §4.5.1 eq. 4.24–4.30 — *lockout*: a lockout agent `B` gates agent `A`'s
/// control of `C`. The shared control relationship becomes
/// `●(A ∧ B) ⇒ C` and `●(¬A ∨ ¬B) ⇒ ¬C`; both agents receive the safety
/// subgoal to drop their enable after observing the danger `D`:
///
/// ```text
/// ●D ⇒ ¬A        ●D ⇒ ¬B
/// ```
///
/// The parent goal `●D ⇒ ¬C` follows from either subgoal plus the control
/// relationship — redundant coverage against one agent failing.
pub fn lockout(danger: &str, enable_a: &str, enable_b: &str, effect: &str) -> TacticApplication {
    let parent = Expr::entails(
        Expr::prev(Expr::prev(Expr::var(danger))),
        Expr::not(Expr::var(effect)),
    );
    let ctrl_on = Expr::entails(
        Expr::prev(Expr::and(Expr::var(enable_a), Expr::var(enable_b))),
        Expr::var(effect),
    );
    let ctrl_off = Expr::entails(
        Expr::prev(Expr::or(
            Expr::not(Expr::var(enable_a)),
            Expr::not(Expr::var(enable_b)),
        )),
        Expr::not(Expr::var(effect)),
    );
    let g_a = Expr::entails(
        Expr::prev(Expr::var(danger)),
        Expr::not(Expr::var(enable_a)),
    );
    let g_b = Expr::entails(
        Expr::prev(Expr::var(danger)),
        Expr::not(Expr::var(enable_b)),
    );
    TacticApplication::checked(
        TacticKind::Lockout,
        &parent,
        vec![g_a, g_b],
        vec![ctrl_on, ctrl_off],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::parse;

    fn p(s: &str) -> Expr {
        parse(s).unwrap()
    }

    #[test]
    fn accuracy_goal_verifies() {
        let goal = p("overweight => stopped");
        let app = introduce_accuracy(&goal, "overweight", "overweight_sensed");
        assert_eq!(app.subgoals, vec![p("overweight_sensed => stopped")]);
        assert_eq!(app.verified, Some(true));
    }

    #[test]
    fn actuation_goal_rewrites_consequent() {
        let goal = p("near_limit => stopped");
        let app = introduce_actuation(&goal, "stopped", "drive_cmd_stop");
        assert_eq!(app.subgoals, vec![p("near_limit => drive_cmd_stop")]);
        assert_eq!(app.tactic, TacticKind::IntroduceActuationGoal);
        assert_eq!(app.verified, Some(true));
    }

    #[test]
    fn chaining_verifies() {
        let app = split_by_chaining(&p("p"), &p("m"), &p("q"));
        assert_eq!(app.subgoals.len(), 2);
        assert_eq!(app.verified, Some(true));
    }

    #[test]
    fn case_split_verifies_with_coverage() {
        let app = split_by_case(&p("p"), &p("q"), &[p("f"), p("g")]);
        assert_eq!(app.subgoals.len(), 2);
        assert_eq!(app.assumptions.len(), 1);
        assert_eq!(app.verified, Some(true));
    }

    #[test]
    fn case_split_without_coverage_fails_verification() {
        // Deliberately drop the coverage assumption: entailment must fail.
        let mut app = split_by_case(&p("p"), &p("q"), &[p("f"), p("g")]);
        app.assumptions.clear();
        let premises: Vec<&Expr> = app.subgoals.iter().collect();
        assert!(!prop::entails(&premises, &p("p => q")).unwrap());
    }

    #[test]
    fn or_reduce_produces_verified_restriction() {
        let goal = p("always(a || x)");
        let app = or_reduce(&goal, &|e| *e == p("a")).unwrap();
        assert_eq!(app.subgoals, vec![p("always(a)")]);
        assert_eq!(app.verified, Some(true));
    }

    #[test]
    fn safety_margin_tightens_upper_bound() {
        let goal = p("always(va.value <= 2.0)");
        let app = safety_margin(&goal, 0.5).unwrap();
        assert_eq!(app.subgoals, vec![p("always(va.value <= 1.5)")]);
        assert_eq!(app.verified, Some(true));
    }

    #[test]
    fn safety_margin_raises_lower_bound_and_flips_literal_side() {
        let goal = p("-2.5 <= vj.value");
        let app = safety_margin(&goal, 0.5).unwrap();
        assert_eq!(app.subgoals, vec![p("vj.value >= -2.0")]);
    }

    #[test]
    fn safety_margin_rejects_equality_and_symbols() {
        assert!(safety_margin(&p("cmd == 'STOP'"), 0.1).is_none());
        assert!(safety_margin(&p("a && b"), 0.1).is_none());
    }

    #[test]
    fn interlock_subgoals_jointly_cover_the_disjunction() {
        let app = interlock("a", "b", "la", "lb");
        assert_eq!(app.subgoals.len(), 2);
        // (¬LA ∨ LB) ∨ (¬LB ∨ LA) is a tautology, so at every state at
        // least one subgoal's antecedent held previously, forcing A or B.
        assert_eq!(app.verified, Some(true));
    }

    #[test]
    fn lockout_provides_redundant_coverage() {
        let app = lockout("danger", "enable_a", "enable_b", "effect");
        assert_eq!(app.verified, Some(true));
        // Either subgoal alone (plus the control relationship) suffices.
        let premises: Vec<&Expr> = std::iter::once(&app.subgoals[0])
            .chain(app.assumptions.iter())
            .collect();
        let parent = Expr::entails(
            Expr::prev(Expr::prev(Expr::var("danger"))),
            Expr::not(Expr::var("effect")),
        );
        assert!(prop::entails_invariant(&premises, &parent).unwrap());
    }

    #[test]
    fn tactic_kind_displays() {
        assert_eq!(TacticKind::SplitByCase.to_string(), "split by case");
        assert_eq!(TacticKind::OrReduction.to_string(), "OR-reduction");
    }
}
