//! Emergence and composability of safety goals (thesis Chapter 3).
//!
//! Goals here are propositional/two-state expressions; all judgements are
//! made by model enumeration over their unrolling ([`esafe_logic::prop`]).
//! Write `C = G1 ∧ … ∧ Gn` for a subgoal group's conjunction and
//! `D = C1 ∨ … ∨ Cp` for the disjunction over redundant groups. The
//! thesis's definitions become:
//!
//! * **fully composable** (eq. 3.1): `C ⇔ G`;
//! * **fully composable with redundancy** (eq. 3.9): `D ⇔ G`;
//! * **emergent but partially composable** (eq. 3.14): `C ∧ X ⇔ G` for some
//!   unknown/unrealizable `X` — such an `X` exists iff `G ⊨ C`, and the
//!   weakest admissible `X` is `C → G`; the models of `C ∧ ¬G` measure the
//!   "demon" region that `X` must exclude;
//! * **emergent but partially composable with redundancy** (eq. 3.23):
//!   `D ∨ Y ⇔ G` — such a `Y` exists iff `D ⊨ G`, the weakest admissible
//!   `Y` is `G ∧ ¬D`, and its model count measures the "angel" region
//!   through which the system satisfies `G` by unspecified means;
//! * **restrictive composition** (§3.3.5, §4.5.2): `C ⊨ G` strictly — the
//!   subgoals guarantee the parent but prohibit some safe behavior; the
//!   models of `G ∧ ¬C` count the behaviors given up.

use esafe_logic::prop::PropSet;
use esafe_logic::{Expr, PropError};
use serde::{Deserialize, Serialize};

/// Darimont's four conditions for a complete and-reduction (thesis §3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AndReductionReport {
    /// Condition 1: `G1, …, Gn ⊢ G`.
    pub entails_parent: bool,
    /// Condition 2: no proper subset of the subgoals already entails `G`.
    pub minimal: bool,
    /// Condition 3: the subgoals are jointly satisfiable.
    pub consistent: bool,
    /// Condition 4: the reduction is not a mere restatement (`n > 1`, or a
    /// single subgoal differs syntactically *and* semantically from `G`).
    pub nontrivial: bool,
}

impl AndReductionReport {
    /// All four conditions hold: the subgoals form a complete
    /// and-reduction of the parent.
    pub fn is_complete(&self) -> bool {
        self.entails_parent && self.minimal && self.consistent && self.nontrivial
    }
}

/// Evaluates Darimont's and-reduction conditions for `subgoals` against
/// `parent`.
///
/// # Errors
///
/// Propagates [`PropError`] when any formula cannot be unrolled or the
/// joint atom count exceeds the enumeration limit.
///
/// # Example
///
/// ```
/// use esafe_core::compose::and_reduction;
/// use esafe_logic::parse;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let parent = parse("a -> b")?;
/// let subgoals = vec![parse("a -> c")?, parse("c -> b")?];
/// let r = and_reduction(&subgoals, &parent)?;
/// assert!(r.is_complete());
/// # Ok(())
/// # }
/// ```
pub fn and_reduction(subgoals: &[Expr], parent: &Expr) -> Result<AndReductionReport, PropError> {
    let mut exprs: Vec<&Expr> = subgoals.iter().collect();
    exprs.push(parent);
    let set = PropSet::build(&exprs)?;
    let n = subgoals.len();
    let parent_idx = n;
    let all: Vec<usize> = (0..n).collect();

    let entails_parent = set.all_entail(&all, parent_idx);
    let consistent = set.jointly_satisfiable(&all);

    // Minimality: removing any one subgoal must break the entailment.
    let mut minimal = true;
    if entails_parent {
        for skip in 0..n {
            let subset: Vec<usize> = (0..n).filter(|&i| i != skip).collect();
            if set.all_entail(&subset, parent_idx) {
                minimal = false;
                break;
            }
        }
    }

    // Non-triviality: a single subgoal equivalent to the parent is a
    // restatement, not a decomposition.
    let nontrivial = n > 1 || (n == 1 && !set.equivalent(0, parent_idx));

    Ok(AndReductionReport {
        entails_parent,
        minimal,
        consistent,
        nontrivial,
    })
}

/// Returns whether `subgoals` form a *partial* and-reduction of `parent`:
/// they are consistent, do not by themselves entail the parent, and can be
/// extended to a complete and-reduction (which propositionally reduces to
/// the subgoals not contradicting the parent).
///
/// # Errors
///
/// See [`and_reduction`].
pub fn is_partial_and_reduction(subgoals: &[Expr], parent: &Expr) -> Result<bool, PropError> {
    let mut exprs: Vec<&Expr> = subgoals.iter().collect();
    exprs.push(parent);
    let set = PropSet::build(&exprs)?;
    let n = subgoals.len();
    let all: Vec<usize> = (0..n).collect();
    let jointly_sat_with_parent = set.count_models_where(|t| t[..n].iter().all(|&b| b) && t[n]) > 0;
    let entails = set.all_entail(&all, n);
    Ok(jointly_sat_with_parent && !entails)
}

/// The composability classification of a goal against one or more
/// redundant and-reduction groups (thesis Chapter 3 taxonomy).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Composability {
    /// Eq. 3.1: one group, `C ⇔ G`.
    FullyComposable,
    /// Eq. 3.9: several groups, `D ⇔ G`.
    FullyComposableWithRedundancy,
    /// Eq. 3.14 with a nontrivial demon `X`: `G ⊨ C` but `C ⊭ G`.
    EmergentPartiallyComposable {
        /// Models of `C ∧ ¬G`: states the unknown subgoal `X` must exclude.
        demon_models: u64,
    },
    /// Eq. 3.23 with a nontrivial angel `Y`: `D ⊨ G` but `G ⊭ D`.
    EmergentPartiallyComposableWithRedundancy {
        /// Models of `G ∧ ¬D`: states where only emergence satisfies `G`.
        angel_models: u64,
    },
    /// §3.3.5/§4.5.2: the subgoals strictly strengthen the parent
    /// (`C ⊨ G`, `G ⊭ C`) — sound but restrictive.
    ComposableWithRestriction {
        /// Models of `G ∧ ¬C`: safe behaviors the subgoals prohibit.
        excluded_models: u64,
    },
    /// Neither direction of entailment holds: both a demon `X` and an
    /// angel `Y` would be needed.
    Emergent {
        /// Models of `C ∧ ¬G` (or `D ∧ ¬G` with redundancy).
        demon_models: u64,
        /// Models of `G ∧ ¬C` (or `G ∧ ¬D`).
        angel_models: u64,
    },
}

/// Classifies `parent` against redundant subgoal `groups` (each group is
/// one and-reduction; a single group means no redundancy).
///
/// # Errors
///
/// Propagates [`PropError`] from unrolling.
///
/// # Example
///
/// ```
/// use esafe_core::compose::{classify, Composability};
/// use esafe_logic::parse;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Thesis Table 3.1: G = A ⇒ B decomposed through C and D.
/// let parent = parse("a -> b")?;
/// let group = vec![parse("a -> c")?, parse("c -> d")?, parse("d -> b")?];
/// // The chain entails the parent but excludes safe states (e.g. a ∧ ¬c ∧ b):
/// let c = classify(&parent, &[group])?;
/// assert!(matches!(c, Composability::ComposableWithRestriction { .. }));
/// # Ok(())
/// # }
/// ```
pub fn classify(parent: &Expr, groups: &[Vec<Expr>]) -> Result<Composability, PropError> {
    assert!(!groups.is_empty(), "at least one subgoal group is required");
    let disjunction = Expr::or_all(
        groups
            .iter()
            .map(|g| Expr::and_all(g.iter().cloned()))
            .collect::<Vec<_>>(),
    );
    let set = PropSet::build(&[&disjunction, parent])?;
    let demon_models = set.count_models_where(|t| t[0] && !t[1]);
    let angel_models = set.count_models_where(|t| t[1] && !t[0]);
    let redundant = groups.len() > 1;

    Ok(match (demon_models, angel_models) {
        (0, 0) if redundant => Composability::FullyComposableWithRedundancy,
        (0, 0) => Composability::FullyComposable,
        (0, excluded) if redundant => Composability::EmergentPartiallyComposableWithRedundancy {
            angel_models: excluded,
        },
        (0, excluded) => Composability::ComposableWithRestriction {
            excluded_models: excluded,
        },
        (demons, 0) => Composability::EmergentPartiallyComposable {
            demon_models: demons,
        },
        (demons, angels) => Composability::Emergent {
            demon_models: demons,
            angel_models: angels,
        },
    })
}

/// The weakest demon `X` satisfying eq. 3.14 (`C ∧ X ⇔ G`), namely
/// `C → G`. Only meaningful when `G ⊨ C` (checked by [`classify`]).
pub fn weakest_demon(parent: &Expr, subgoals: &[Expr]) -> Expr {
    Expr::implies(Expr::and_all(subgoals.iter().cloned()), parent.clone())
}

/// The weakest angel `Y` satisfying eq. 3.23 (`D ∨ Y ⇔ G`), namely
/// `G ∧ ¬D`. Only meaningful when `D ⊨ G`.
pub fn weakest_angel(parent: &Expr, groups: &[Vec<Expr>]) -> Expr {
    let d = Expr::or_all(
        groups
            .iter()
            .map(|g| Expr::and_all(g.iter().cloned()))
            .collect::<Vec<_>>(),
    );
    Expr::and(parent.clone(), Expr::not(d))
}

/// Conjunctive-reduction (thesis §3.3.4): splits `always(a ∧ b ∧ …)` or an
/// `Or`-antecedent implication into independently assignable subgoals.
/// Returns `None` when the shape does not decompose conjunctively.
///
/// * `□(A ∧ X)` ⟶ `[□A, □X]` (eq. 3.32–3.34);
/// * `(A ∨ X) ⇒ B` ⟶ `[A ⇒ B, X ⇒ B]` (eq. 3.35–3.38).
pub fn conjunctive_reduction(goal: &Expr) -> Option<Vec<Expr>> {
    match goal {
        Expr::Always(inner) => match inner.as_ref() {
            Expr::And(items) if items.len() > 1 => {
                Some(items.iter().cloned().map(Expr::always).collect())
            }
            _ => None,
        },
        Expr::And(items) if items.len() > 1 => Some(items.clone()),
        Expr::Entails(a, b) | Expr::Implies(a, b) => match a.as_ref() {
            Expr::Or(items) if items.len() > 1 => Some(
                items
                    .iter()
                    .map(|d| match goal {
                        Expr::Entails(..) => Expr::entails(d.clone(), (**b).clone()),
                        _ => Expr::implies(d.clone(), (**b).clone()),
                    })
                    .collect(),
            ),
            _ => None,
        },
        _ => None,
    }
}

/// OR-reduction (thesis §3.3.5, eq. 3.42–3.46): strengthens a disjunctive
/// goal by keeping only the realizable disjuncts. The result entails the
/// original but prohibits some acceptable behavior.
///
/// * `□(A ∨ X)` with `keep` selecting `A` ⟶ `□A`;
/// * `(A ∧ X) ⇒ B` ⟶ `A ⇒ B` (dropping conjuncts of the antecedent
///   strengthens the goal).
///
/// Returns `None` when the shape does not admit the reduction or `keep`
/// selects nothing.
pub fn or_reduction(goal: &Expr, keep: &dyn Fn(&Expr) -> bool) -> Option<Expr> {
    match goal {
        Expr::Always(inner) => match inner.as_ref() {
            Expr::Or(items) => {
                let kept: Vec<Expr> = items.iter().filter(|e| keep(e)).cloned().collect();
                if kept.is_empty() || kept.len() == items.len() {
                    None
                } else {
                    Some(Expr::always(Expr::or_all(kept)))
                }
            }
            _ => None,
        },
        Expr::Or(items) => {
            let kept: Vec<Expr> = items.iter().filter(|e| keep(e)).cloned().collect();
            if kept.is_empty() || kept.len() == items.len() {
                None
            } else {
                Some(Expr::or_all(kept))
            }
        }
        Expr::Entails(a, b) | Expr::Implies(a, b) => match a.as_ref() {
            Expr::And(items) => {
                let kept: Vec<Expr> = items.iter().filter(|e| keep(e)).cloned().collect();
                if kept.is_empty() || kept.len() == items.len() {
                    None
                } else {
                    let ante = Expr::and_all(kept);
                    Some(match goal {
                        Expr::Entails(..) => Expr::entails(ante, (**b).clone()),
                        _ => Expr::implies(ante, (**b).clone()),
                    })
                }
            }
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esafe_logic::{parse, prop};

    fn p(s: &str) -> Expr {
        parse(s).unwrap()
    }

    #[test]
    fn chain_is_complete_and_reduction() {
        // Thesis Table 3.1 first reduction: {A⇒C, C⇒D, D⇒B} of A⇒B.
        let r = and_reduction(&[p("a -> c"), p("c -> d"), p("d -> b")], &p("a -> b")).unwrap();
        assert!(r.is_complete());
    }

    #[test]
    fn dropping_a_link_breaks_completeness_but_leaves_partial() {
        let subgoals = [p("a -> c"), p("d -> b")];
        let r = and_reduction(&subgoals, &p("a -> b")).unwrap();
        assert!(!r.entails_parent);
        assert!(is_partial_and_reduction(&subgoals, &p("a -> b")).unwrap());
    }

    #[test]
    fn restatement_is_trivial() {
        let r = and_reduction(&[p("a -> b")], &p("!a || b")).unwrap();
        assert!(r.entails_parent && !r.nontrivial);
    }

    #[test]
    fn redundant_padding_is_not_minimal() {
        let r = and_reduction(&[p("a -> c"), p("c -> b"), p("a -> b")], &p("a -> b")).unwrap();
        assert!(r.entails_parent && !r.minimal);
    }

    #[test]
    fn contradictory_subgoals_are_inconsistent() {
        let r = and_reduction(&[p("a"), p("!a")], &p("b")).unwrap();
        assert!(!r.consistent);
    }

    #[test]
    fn fully_composable_exact_split() {
        // □(A ∧ B) decomposed as {□A, □B} is exact.
        let c = classify(&p("a && b"), &[vec![p("a"), p("b")]]).unwrap();
        assert_eq!(c, Composability::FullyComposable);
    }

    #[test]
    fn redundant_groups_covering_exactly() {
        // G = a ∨ b via groups {a} and {b}.
        let c = classify(&p("a || b"), &[vec![p("a")], vec![p("b")]]).unwrap();
        assert_eq!(c, Composability::FullyComposableWithRedundancy);
    }

    #[test]
    fn missing_subgoal_leaves_demon_region() {
        // G = a ∧ b, but only {a} is specified: satisfying `a` does not
        // guarantee G — X = (b) is hidden. G ⊨ a holds.
        let c = classify(&p("a && b"), &[vec![p("a")]]).unwrap();
        match c {
            Composability::EmergentPartiallyComposable { demon_models } => {
                assert_eq!(demon_models, 1); // model a ∧ ¬b
            }
            other => panic!("unexpected classification {other:?}"),
        }
    }

    #[test]
    fn uncovered_redundancy_leaves_angel_region() {
        // G = a ∨ b ∨ c with groups {a}, {b}: c-only models satisfied by Y.
        let c = classify(&p("a || b || c"), &[vec![p("a")], vec![p("b")]]).unwrap();
        match c {
            Composability::EmergentPartiallyComposableWithRedundancy { angel_models } => {
                assert_eq!(angel_models, 1); // model ¬a ∧ ¬b ∧ c
            }
            other => panic!("unexpected classification {other:?}"),
        }
    }

    #[test]
    fn strengthening_is_restrictive() {
        // G = a ∨ b covered by just {a}: sound but prohibits ¬a ∧ b.
        let c = classify(&p("a || b"), &[vec![p("a")]]).unwrap();
        match c {
            Composability::ComposableWithRestriction { excluded_models } => {
                assert_eq!(excluded_models, 1);
            }
            other => panic!("unexpected classification {other:?}"),
        }
    }

    #[test]
    fn incomparable_goals_are_emergent() {
        let c = classify(&p("a"), &[vec![p("b")]]).unwrap();
        assert!(matches!(
            c,
            Composability::Emergent {
                demon_models: 1,
                angel_models: 1
            }
        ));
    }

    #[test]
    fn weakest_demon_closes_the_equivalence() {
        let parent = p("a && b");
        let subgoals = vec![p("a")];
        let x = weakest_demon(&parent, &subgoals);
        let closed = Expr::and(Expr::and_all(subgoals), x);
        assert!(prop::equivalent(&closed, &parent).unwrap());
    }

    #[test]
    fn weakest_angel_closes_the_equivalence() {
        let parent = p("a || b || c");
        let groups = vec![vec![p("a")], vec![p("b")]];
        let y = weakest_angel(&parent, &groups);
        let d = Expr::or_all(
            groups
                .iter()
                .map(|g| Expr::and_all(g.clone()))
                .collect::<Vec<_>>(),
        );
        let closed = Expr::or(d, y);
        assert!(prop::equivalent(&closed, &parent).unwrap());
    }

    #[test]
    fn conjunctive_reduction_splits_always_and() {
        let subs = conjunctive_reduction(&p("always(a && x)")).unwrap();
        assert_eq!(subs, vec![p("always(a)"), p("always(x)")]);
        let subs2 = conjunctive_reduction(&p("a || x => b")).unwrap();
        assert_eq!(subs2, vec![p("a => b"), p("x => b")]);
        assert!(conjunctive_reduction(&p("a || b")).is_none());
    }

    #[test]
    fn conjunctive_reduction_is_exact() {
        let goal = p("a || x => b");
        let subs = conjunctive_reduction(&goal).unwrap();
        let conj = Expr::and_all(subs);
        assert!(prop::equivalent(&conj, &goal).unwrap());
    }

    #[test]
    fn or_reduction_strengthens() {
        let goal = p("always(a || x)");
        let reduced = or_reduction(&goal, &|e| *e == p("a")).unwrap();
        assert_eq!(reduced, p("always(a)"));
        assert!(prop::entails(&[&reduced], &goal).unwrap());
        assert!(!prop::entails(&[&goal], &reduced).unwrap());
    }

    #[test]
    fn or_reduction_on_conjunctive_antecedent() {
        // (A ∧ X) ⇒ B strengthened to A ⇒ B (eq. 3.44–3.46).
        let goal = p("a && x => b");
        let reduced = or_reduction(&goal, &|e| *e == p("a")).unwrap();
        assert_eq!(reduced, p("a => b"));
        assert!(prop::entails(&[&reduced], &goal).unwrap());
    }

    #[test]
    fn or_reduction_requires_a_proper_subset() {
        let goal = p("always(a || b)");
        assert!(or_reduction(&goal, &|_| true).is_none());
        assert!(or_reduction(&goal, &|_| false).is_none());
    }
}
