//! Goal-oriented safety decomposition: the primary contribution of Black's
//! *System Safety as an Emergent Property in Composite Systems* (CMU, 2009).
//!
//! Three pieces, matching the thesis's three contributions:
//!
//! 1. **Emergence formalism** ([`compose`]) — Chapter 3's definitions of
//!    *fully composable*, *fully composable with redundancy*, *emergent but
//!    partially composable* (with the hidden "demon" residual `X`), and the
//!    redundant variant (with the "angel" residual `Y`), decided by model
//!    enumeration over the goals' propositional unrolling, plus Darimont's
//!    complete/partial and-reduction conditions.
//!
//! 2. **Indirect Control Path Analysis** ([`icpa`], [`system`], [`tactics`],
//!    [`catalog`]) — Chapter 4's table-driven elaboration technique: trace
//!    each goal variable backward through the architecture to every agent
//!    that directly or indirectly controls it, record the indirect control
//!    relationships formally, choose a goal coverage strategy, and apply
//!    realizability tactics to derive subsystem subgoals with documented
//!    critical assumptions.
//!
//! 3. **Goal model** ([`goal`], [`agent`], [`realizability`]) — the KAOS
//!    substrate: goals as temporal-logic expressions with monitored and
//!    controlled variable sets, agents with monitorability/controllability,
//!    and the unrealizability taxonomy (lack of monitorability, lack of
//!    control, reference to the future, unsatisfiability, not finitely
//!    violable).
//!
//! # Quick example — decomposing a goal and classifying the result
//!
//! ```
//! use esafe_core::compose::{classify, Composability};
//! use esafe_logic::parse;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Parent goal: an object in the path implies the vehicle stops.
//! let parent = parse("object_in_path -> stop_vehicle")?;
//! // Subgoals assigned to collision avoidance (thesis eq. 3.5–3.6).
//! let g1 = parse("object_in_path <-> ca.stop_vehicle")?;
//! let g2 = parse("ca.stop_vehicle -> stop_vehicle")?;
//! let c = classify(&parent, &[vec![g1, g2]])?;
//! assert!(matches!(c, Composability::ComposableWithRestriction { .. }));
//! # Ok(())
//! # }
//! ```

pub mod agent;
pub mod catalog;
pub mod compose;
pub mod goal;
pub mod icpa;
pub mod realizability;
pub mod render;
pub mod system;
pub mod tactics;

pub use agent::{Agent, AgentKind};
pub use goal::{Goal, GoalClass};
pub use icpa::{CoverageStrategy, GoalAssignment, GoalScope, IcpaBuilder, IcpaTable};
pub use realizability::Unrealizability;
pub use system::ControlGraph;
