//! The control architecture: agents, variables, and indirect control paths.

use crate::agent::{Agent, AgentKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A state variable in the architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Dotted variable name (e.g. `drive_command`).
    pub name: String,
    /// Whether the variable is produced by sensing the plant/environment
    /// rather than written directly by an agent.
    pub sensed: bool,
    /// Free-text description for documentation output.
    pub description: String,
}

/// One stop along an indirect control path: an agent that influences the
/// root variable, the variable through which the influence flows, and the
/// upstream agents that influence *it* (thesis Figure 4.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// The influencing agent.
    pub agent: String,
    /// The variable this agent controls on the way to the root.
    pub via: String,
    /// Distance from the root variable (1 = nearest indirect control
    /// source).
    pub level: u32,
    /// Upstream influencers of this agent's inputs.
    pub children: Vec<PathStep>,
}

impl PathStep {
    /// All agents along this path (pre-order, including this step).
    pub fn agents(&self) -> Vec<&str> {
        let mut out = vec![self.agent.as_str()];
        for c in &self.children {
            out.extend(c.agents());
        }
        out
    }

    /// Maximum depth (in levels) below this step, inclusive.
    pub fn depth(&self) -> u32 {
        1 + self.children.iter().map(PathStep::depth).max().unwrap_or(0)
    }
}

/// The indirect control path tree for one goal variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlPath {
    /// The goal variable being traced.
    pub root: String,
    /// Branches: one per direct/nearest influencer.
    pub branches: Vec<PathStep>,
}

impl ControlPath {
    /// All distinct agents anywhere on the path, in first-visit order.
    pub fn all_agents(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for b in &self.branches {
            for a in b.agents() {
                if seen.insert(a.to_owned()) {
                    out.push(a.to_owned());
                }
            }
        }
        out
    }

    /// Agents at a given level (1 = nearest the root variable).
    pub fn agents_at_level(&self, level: u32) -> Vec<String> {
        fn walk(step: &PathStep, level: u32, out: &mut Vec<String>) {
            if step.level == level && !out.contains(&step.agent) {
                out.push(step.agent.clone());
            }
            for c in &step.children {
                walk(c, level, out);
            }
        }
        let mut out = Vec::new();
        for b in &self.branches {
            walk(b, level, &mut out);
        }
        out
    }

    /// Number of branches at the first level.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }
}

/// The system's control architecture: variables, agents, and the physical
/// influence links between actuated and sensed variables.
///
/// The graph answers the central ICPA question: *which agents directly or
/// indirectly control a given state variable?* Tracing walks backward from
/// a goal variable through (a) agents that directly control it, (b) for
/// sensed variables, the physical links from actuated variables, and then
/// recursively through each agent's input variables.
///
/// # Example
///
/// ```
/// use esafe_core::{Agent, AgentKind, ControlGraph};
///
/// let mut g = ControlGraph::new();
/// g.add_sensed_var("elevator_speed", "speed from the hall sensor");
/// g.add_var("drive_speed", "physical drive speed");
/// g.add_var("drive_command", "actuation signal to the drive");
/// g.add_physical_link("drive_speed", "elevator_speed",
///                     "drive moves the car; sensor measures it");
/// g.add_agent(Agent::new("Drive", AgentKind::Actuator)
///     .controls(["drive_speed"]).monitors(["drive_command"]));
/// g.add_agent(Agent::new("DriveController", AgentKind::Software)
///     .controls(["drive_command"]));
/// let path = g.trace("elevator_speed");
/// assert_eq!(path.all_agents(), vec!["Drive", "DriveController"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlGraph {
    vars: BTreeMap<String, Variable>,
    agents: BTreeMap<String, Agent>,
    /// (source actuated variable, target sensed variable, note)
    physical_links: Vec<(String, String, String)>,
}

impl ControlGraph {
    /// Creates an empty architecture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a directly written variable.
    pub fn add_var(&mut self, name: impl Into<String>, description: impl Into<String>) {
        let name = name.into();
        self.vars.insert(
            name.clone(),
            Variable {
                name,
                sensed: false,
                description: description.into(),
            },
        );
    }

    /// Registers a sensed variable (no agent writes it directly).
    pub fn add_sensed_var(&mut self, name: impl Into<String>, description: impl Into<String>) {
        let name = name.into();
        self.vars.insert(
            name.clone(),
            Variable {
                name,
                sensed: true,
                description: description.into(),
            },
        );
    }

    /// Registers an agent.
    pub fn add_agent(&mut self, agent: Agent) {
        self.agents.insert(agent.name().to_owned(), agent);
    }

    /// Declares that the plant/environment carries influence from
    /// `source_var` (typically actuated) into `target_var` (typically
    /// sensed).
    pub fn add_physical_link(
        &mut self,
        source_var: impl Into<String>,
        target_var: impl Into<String>,
        note: impl Into<String>,
    ) {
        self.physical_links
            .push((source_var.into(), target_var.into(), note.into()));
    }

    /// Looks up a variable.
    pub fn variable(&self, name: &str) -> Option<&Variable> {
        self.vars.get(name)
    }

    /// Looks up an agent.
    pub fn agent(&self, name: &str) -> Option<&Agent> {
        self.agents.get(name)
    }

    /// All agents, in name order.
    pub fn agents(&self) -> impl Iterator<Item = &Agent> {
        self.agents.values()
    }

    /// All variables, in name order.
    pub fn variables(&self) -> impl Iterator<Item = &Variable> {
        self.vars.values()
    }

    /// Agents that directly control `var`.
    pub fn direct_controllers(&self, var: &str) -> Vec<&Agent> {
        self.agents
            .values()
            .filter(|a| a.can_control(var))
            .collect()
    }

    /// Physical upstream variables influencing `var`.
    pub fn physical_sources(&self, var: &str) -> Vec<&str> {
        self.physical_links
            .iter()
            .filter(|(_, dst, _)| dst == var)
            .map(|(src, _, _)| src.as_str())
            .collect()
    }

    /// Traces the indirect control path of `root_var` (ICPA step 2).
    ///
    /// The trace walks backward: direct controllers of the variable form
    /// level 1; each controller's input variables are traced recursively at
    /// the next level. Physical links are followed without incrementing the
    /// level (the actuator behind a sensed value is still the "nearest"
    /// indirect control source — thesis §4.4.1). Cycles in the architecture
    /// are cut at the repeated agent.
    pub fn trace(&self, root_var: &str) -> ControlPath {
        let mut visited = BTreeSet::new();
        let branches = self.trace_var(root_var, 1, &mut visited);
        ControlPath {
            root: root_var.to_owned(),
            branches,
        }
    }

    fn trace_var(&self, var: &str, level: u32, visited: &mut BTreeSet<String>) -> Vec<PathStep> {
        let mut steps = Vec::new();
        for agent in self.direct_controllers(var) {
            if !visited.insert(agent.name().to_owned()) {
                continue; // cycle: already on this path
            }
            let mut children = Vec::new();
            for input in agent.inputs() {
                children.extend(self.trace_var(input, level + 1, visited));
            }
            steps.push(PathStep {
                agent: agent.name().to_owned(),
                via: var.to_owned(),
                level,
                children,
            });
            visited.remove(agent.name());
        }
        // Sensed variables are reached through the plant from actuated ones.
        for src in self.physical_sources(var) {
            steps.extend(self.trace_var(src, level, visited));
        }
        steps
    }

    /// Convenience: agents of a given kind.
    pub fn agents_of_kind(&self, kind: AgentKind) -> Vec<&Agent> {
        self.agents.values().filter(|a| a.kind() == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature of the thesis's Figure 4.5 elevator architecture.
    fn elevator_graph() -> ControlGraph {
        let mut g = ControlGraph::new();
        g.add_sensed_var("elevator_speed", "hall sensor");
        g.add_sensed_var("door_closed", "door closed switch");
        g.add_var("drive_speed", "physical drive speed");
        g.add_var("door_position", "physical door position");
        g.add_var("drive_command", "to the drive");
        g.add_var("door_motor_command", "to the door motor");
        g.add_var("dispatch_request", "from the dispatcher");
        g.add_var("car_call", "car call message");
        g.add_physical_link("drive_speed", "elevator_speed", "plant");
        g.add_physical_link("door_position", "door_closed", "plant");
        g.add_agent(
            Agent::new("Drive", AgentKind::Actuator)
                .controls(["drive_speed"])
                .monitors(["drive_command"]),
        );
        g.add_agent(
            Agent::new("DoorMotor", AgentKind::Actuator)
                .controls(["door_position"])
                .monitors(["door_motor_command"]),
        );
        g.add_agent(
            Agent::new("DriveController", AgentKind::Software)
                .controls(["drive_command"])
                .monitors(["dispatch_request"]),
        );
        g.add_agent(
            Agent::new("DoorController", AgentKind::Software)
                .controls(["door_motor_command"])
                .monitors(["dispatch_request"]),
        );
        g.add_agent(
            Agent::new("DispatchController", AgentKind::Software)
                .controls(["dispatch_request"])
                .monitors(["car_call"]),
        );
        g.add_agent(Agent::new("CarButtonController", AgentKind::Software).controls(["car_call"]));
        g.add_agent(Agent::new("Passenger", AgentKind::Environment).controls(["door_closed"]));
        g
    }

    #[test]
    fn traces_through_physical_links_at_same_level() {
        let g = elevator_graph();
        let path = g.trace("elevator_speed");
        // Drive is the nearest source (level 1), its controller level 2.
        assert_eq!(path.agents_at_level(1), vec!["Drive".to_owned()]);
        assert_eq!(path.agents_at_level(2), vec!["DriveController".to_owned()]);
        assert_eq!(
            path.agents_at_level(3),
            vec!["DispatchController".to_owned()]
        );
        assert_eq!(
            path.agents_at_level(4),
            vec!["CarButtonController".to_owned()]
        );
    }

    #[test]
    fn branched_variable_lists_all_branches() {
        let g = elevator_graph();
        let path = g.trace("door_closed");
        // Branch 1: Passenger (environment). Branch 2: DoorMotor chain.
        let agents = path.all_agents();
        assert!(agents.contains(&"Passenger".to_owned()));
        assert!(agents.contains(&"DoorMotor".to_owned()));
        assert!(agents.contains(&"DoorController".to_owned()));
    }

    #[test]
    fn cycles_are_cut() {
        let mut g = ControlGraph::new();
        g.add_var("a", "");
        g.add_var("b", "");
        g.add_agent(
            Agent::new("X", AgentKind::Software)
                .controls(["a"])
                .monitors(["b"]),
        );
        g.add_agent(
            Agent::new("Y", AgentKind::Software)
                .controls(["b"])
                .monitors(["a"]),
        );
        let path = g.trace("a");
        // X at level 1, Y at level 2, and the recursion back into X stops.
        assert_eq!(path.all_agents(), vec!["X".to_owned(), "Y".to_owned()]);
        assert!(path.branches[0].depth() <= 3);
    }

    #[test]
    fn direct_controllers_may_be_multiple() {
        let mut g = ControlGraph::new();
        g.add_var("hall_call", "broadcast message");
        g.add_agent(Agent::new("H1", AgentKind::Software).controls(["hall_call"]));
        g.add_agent(Agent::new("H2", AgentKind::Software).controls(["hall_call"]));
        assert_eq!(g.direct_controllers("hall_call").len(), 2);
        let path = g.trace("hall_call");
        assert_eq!(path.branch_count(), 2);
    }

    #[test]
    fn agents_of_kind_filters() {
        let g = elevator_graph();
        assert_eq!(g.agents_of_kind(AgentKind::Environment).len(), 1);
        assert_eq!(g.agents_of_kind(AgentKind::Actuator).len(), 2);
    }
}
