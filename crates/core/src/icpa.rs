//! Indirect Control Path Analysis — the ICPA table and procedure
//! (thesis Chapter 4, Figures 1.2 and 4.7).
//!
//! An ICPA run follows six steps:
//!
//! 1. define the system safety goal in temporal logic;
//! 2. identify the indirect control sources of each goal variable
//!    ([`crate::system::ControlGraph::trace`]);
//! 3. define the relationships between sources (numbered formal
//!    [`Relationship`]s — these become *critical assumptions*);
//! 4. choose a goal coverage strategy ([`CoverageStrategy`]);
//! 5. apply tactics for goal elaboration ([`crate::tactics`]);
//! 6. record the resulting subsystem subgoals.
//!
//! The completed [`IcpaTable`] is both the analysis record and a checkable
//! artifact: [`IcpaTable::verify`] machine-checks that the subgoals plus
//! the cited relationships entail the parent goal.

use crate::goal::Goal;
use crate::system::{ControlGraph, ControlPath};
use crate::tactics::TacticKind;
use esafe_logic::{prop, Expr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A numbered indirect control relationship (one row of the middle ICPA
/// section; thesis Tables 4.1–4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relationship {
    /// The row number cited by elaboration steps (e.g. `07`).
    pub number: u32,
    /// The goal variable whose path this row belongs to.
    pub variable: String,
    /// Subsystems involved in the relationship.
    pub subsystems: Vec<String>,
    /// The formal relationship.
    pub formal: Expr,
    /// Natural-language gloss (the `%` comment lines of the thesis tables).
    pub comment: String,
}

/// Goal assignment: which agents carry subgoals and how the subgoals relate
/// (thesis §4.5.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoalAssignment {
    /// One agent (or agent group) alone satisfies the goal.
    SingleResponsibility {
        /// The responsible agent.
        agent: String,
    },
    /// A primary group satisfies the goal; a secondary group provides
    /// backup against primary failures.
    RedundantResponsibility {
        /// Primary responsible agents.
        primary: Vec<String>,
        /// Secondary (backup) agents.
        secondary: Vec<String>,
    },
    /// Two or more agents must each satisfy their subgoal for the parent
    /// to hold (coordinated control).
    SharedResponsibility {
        /// The coordinating agents.
        agents: Vec<String>,
    },
}

impl fmt::Display for GoalAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoalAssignment::SingleResponsibility { agent } => {
                write!(f, "Single Responsibility ({agent})")
            }
            GoalAssignment::RedundantResponsibility { primary, secondary } => write!(
                f,
                "Redundant Responsibility (primary: {}; secondary: {})",
                primary.join(", "),
                secondary.join(", ")
            ),
            GoalAssignment::SharedResponsibility { agents } => {
                write!(f, "Shared Responsibility ({})", agents.join(" & "))
            }
        }
    }
}

/// Goal scope: how closely the subgoals track the parent (thesis §4.5.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoalScope {
    /// The subgoals satisfy the parent exactly.
    Nonrestrictive,
    /// The subgoals strengthen the parent (safety margins, OR-reduction,
    /// worst-case delays).
    Restrictive {
        /// Why restriction was needed.
        rationale: String,
    },
}

impl fmt::Display for GoalScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoalScope::Nonrestrictive => write!(f, "Nonrestrictive"),
            GoalScope::Restrictive { rationale } => write!(f, "Restrictive ({rationale})"),
        }
    }
}

/// A goal coverage strategy: assignment plus scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageStrategy {
    /// Which agents carry subgoals.
    pub assignment: GoalAssignment,
    /// How closely the subgoals track the parent.
    pub scope: GoalScope,
}

/// One elaboration step: the tactic used and the relationship rows it
/// relied on (the fourth ICPA section).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElaborationStep {
    /// The derived expression or intermediate goal this step produced.
    pub derived: Expr,
    /// Tactic applied.
    pub tactic: TacticKind,
    /// Relationship numbers used as critical assumptions.
    pub using_relationships: Vec<u32>,
    /// Analyst note.
    pub note: String,
}

/// A subgoal assigned to one subsystem (the final ICPA section; thesis
/// Table 4.4 format).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemGoal {
    /// The responsible subsystem.
    pub subsystem: String,
    /// The subgoal in full KAOS form.
    pub goal: Goal,
    /// Variables the subsystem controls for this subgoal.
    pub controls: Vec<String>,
    /// Variables the subsystem observes for this subgoal.
    pub observes: Vec<String>,
}

/// A completed Indirect Control Path Analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IcpaTable {
    /// Section 1: the system safety goal.
    pub goal: Goal,
    /// Section 2: indirect control paths per goal variable.
    pub paths: Vec<ControlPath>,
    /// Section 3: numbered indirect control relationships.
    pub relationships: Vec<Relationship>,
    /// Section 4: the chosen coverage strategy.
    pub strategy: CoverageStrategy,
    /// Section 5: elaboration steps with cited assumptions.
    pub elaboration: Vec<ElaborationStep>,
    /// Section 6: the resulting subsystem safety subgoals.
    pub subgoals: Vec<SubsystemGoal>,
}

impl IcpaTable {
    /// Looks up a relationship by number.
    pub fn relationship(&self, number: u32) -> Option<&Relationship> {
        self.relationships.iter().find(|r| r.number == number)
    }

    /// The distinct subsystems that received subgoals.
    pub fn subsystems(&self) -> BTreeSet<&str> {
        self.subgoals.iter().map(|s| s.subsystem.as_str()).collect()
    }

    /// Machine-checks the decomposition: do the subgoals, together with
    /// all recorded relationships as critical assumptions, entail the
    /// parent goal (treating every formula as an invariant)?
    ///
    /// Returns `None` when any formula is not propositionally checkable
    /// (unbounded windows) — the thesis notes such elaborations are
    /// verified by model checking or run-time monitoring instead.
    pub fn verify(&self) -> Option<bool> {
        let premises: Vec<&Expr> = self
            .subgoals
            .iter()
            .map(|s| s.goal.formal())
            .chain(self.relationships.iter().map(|r| &r.formal))
            .collect();
        prop::entails_invariant(&premises, self.goal.formal()).ok()
    }

    /// All cited relationship numbers that do not exist in the table —
    /// should be empty for a well-formed analysis.
    pub fn dangling_citations(&self) -> Vec<u32> {
        let known: BTreeSet<u32> = self.relationships.iter().map(|r| r.number).collect();
        let mut missing: Vec<u32> = self
            .elaboration
            .iter()
            .flat_map(|e| e.using_relationships.iter().copied())
            .filter(|n| !known.contains(n))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        missing
    }
}

/// Step-by-step builder for an [`IcpaTable`], enforcing the procedure's
/// order: goal → paths → relationships → strategy → elaboration → subgoals.
///
/// # Example
///
/// ```
/// use esafe_core::{Agent, AgentKind, ControlGraph, Goal, GoalClass};
/// use esafe_core::icpa::{CoverageStrategy, GoalAssignment, GoalScope, IcpaBuilder};
/// use esafe_core::tactics::TacticKind;
/// use esafe_logic::parse;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = ControlGraph::new();
/// g.add_var("overweight", "weight sensor output");
/// g.add_var("drive_stopped", "drive state");
/// g.add_agent(Agent::new("DriveController", AgentKind::Software)
///     .controls(["drive_stopped"]).monitors(["overweight"]));
/// g.add_agent(Agent::new("Passenger", AgentKind::Environment)
///     .controls(["overweight"]));
///
/// let goal = Goal::new("Maintain[DriveStoppedWhenOverweight]",
///     GoalClass::Maintain,
///     "If the elevator is overweight, the drive shall be stopped.",
///     parse("prev(overweight) => drive_stopped")?);
///
/// let table = IcpaBuilder::new(goal)
///     .trace_paths(&g)
///     .relationship(1, "overweight", ["Passenger"],
///         parse("prev(overweight) => prev(overweight)")?, "passengers load the car")
///     .strategy(CoverageStrategy {
///         assignment: GoalAssignment::SingleResponsibility {
///             agent: "DriveController".into() },
///         scope: GoalScope::Nonrestrictive,
///     })
///     .subgoal("DriveController",
///         Goal::new("Achieve[StopWhenOverweight]", GoalClass::Achieve, "",
///                   parse("prev(overweight) => drive_stopped")?),
///         ["drive_stopped"], ["overweight"])
///     .finish();
/// assert_eq!(table.verify(), Some(true));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IcpaBuilder {
    goal: Goal,
    paths: Vec<ControlPath>,
    relationships: Vec<Relationship>,
    strategy: Option<CoverageStrategy>,
    elaboration: Vec<ElaborationStep>,
    subgoals: Vec<SubsystemGoal>,
}

impl IcpaBuilder {
    /// Step 1: define the system safety goal.
    pub fn new(goal: Goal) -> Self {
        IcpaBuilder {
            goal,
            paths: Vec::new(),
            relationships: Vec::new(),
            strategy: None,
            elaboration: Vec::new(),
            subgoals: Vec::new(),
        }
    }

    /// Step 2: trace indirect control paths for every goal variable.
    pub fn trace_paths(mut self, graph: &ControlGraph) -> Self {
        for var in self.goal.vars() {
            self.paths.push(graph.trace(&var));
        }
        self
    }

    /// Step 2 (manual): record a pre-computed path.
    pub fn path(mut self, path: ControlPath) -> Self {
        self.paths.push(path);
        self
    }

    /// Step 3: record a numbered indirect control relationship.
    pub fn relationship<S: Into<String>>(
        mut self,
        number: u32,
        variable: impl Into<String>,
        subsystems: impl IntoIterator<Item = S>,
        formal: Expr,
        comment: impl Into<String>,
    ) -> Self {
        self.relationships.push(Relationship {
            number,
            variable: variable.into(),
            subsystems: subsystems.into_iter().map(Into::into).collect(),
            formal,
            comment: comment.into(),
        });
        self
    }

    /// Step 4: choose the goal coverage strategy.
    pub fn strategy(mut self, strategy: CoverageStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Step 5: record an elaboration step.
    pub fn elaborate(
        mut self,
        derived: Expr,
        tactic: TacticKind,
        using_relationships: impl IntoIterator<Item = u32>,
        note: impl Into<String>,
    ) -> Self {
        self.elaboration.push(ElaborationStep {
            derived,
            tactic,
            using_relationships: using_relationships.into_iter().collect(),
            note: note.into(),
        });
        self
    }

    /// Step 6: record a resulting subsystem subgoal.
    pub fn subgoal<S: Into<String>>(
        mut self,
        subsystem: impl Into<String>,
        goal: Goal,
        controls: impl IntoIterator<Item = S>,
        observes: impl IntoIterator<Item = S>,
    ) -> Self {
        self.subgoals.push(SubsystemGoal {
            subsystem: subsystem.into(),
            goal,
            controls: controls.into_iter().map(Into::into).collect(),
            observes: observes.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Completes the table.
    ///
    /// # Panics
    ///
    /// Panics if no coverage strategy was chosen (step 4 is mandatory
    /// before the table is a valid analysis record).
    pub fn finish(self) -> IcpaTable {
        IcpaTable {
            goal: self.goal,
            paths: self.paths,
            relationships: self.relationships,
            strategy: self.strategy.expect("coverage strategy must be chosen"),
            elaboration: self.elaboration,
            subgoals: self.subgoals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, AgentKind};
    use crate::goal::GoalClass;
    use esafe_logic::parse;

    fn sample_graph() -> ControlGraph {
        let mut g = ControlGraph::new();
        g.add_var("a", "");
        g.add_var("b", "");
        g.add_agent(
            Agent::new("X", AgentKind::Software)
                .controls(["b"])
                .monitors(["a"]),
        );
        g.add_agent(Agent::new("Env", AgentKind::Environment).controls(["a"]));
        g
    }

    fn sample_goal() -> Goal {
        Goal::new(
            "Maintain[G]",
            GoalClass::Maintain,
            "informal",
            parse("prev(a) => b").unwrap(),
        )
    }

    fn build() -> IcpaTable {
        IcpaBuilder::new(sample_goal())
            .trace_paths(&sample_graph())
            .relationship(1, "a", ["Env"], parse("a <-> a").unwrap(), "env sets a")
            .strategy(CoverageStrategy {
                assignment: GoalAssignment::SingleResponsibility { agent: "X".into() },
                scope: GoalScope::Nonrestrictive,
            })
            .elaborate(
                parse("prev(a) => b").unwrap(),
                TacticKind::IntroduceActuationGoal,
                [1],
                "direct",
            )
            .subgoal(
                "X",
                Goal::new(
                    "Achieve[SubG]",
                    GoalClass::Achieve,
                    "",
                    parse("prev(a) => b").unwrap(),
                ),
                ["b"],
                ["a"],
            )
            .finish()
    }

    #[test]
    fn builder_produces_all_sections() {
        let t = build();
        assert_eq!(t.paths.len(), 2); // one per goal variable
        assert_eq!(t.relationships.len(), 1);
        assert_eq!(t.subgoals.len(), 1);
        assert_eq!(t.subsystems().len(), 1);
        assert!(t.relationship(1).is_some());
        assert!(t.relationship(9).is_none());
    }

    #[test]
    fn verify_checks_entailment() {
        let t = build();
        assert_eq!(t.verify(), Some(true));
    }

    #[test]
    fn verify_detects_insufficient_subgoals() {
        let mut t = build();
        t.subgoals[0].goal = Goal::new(
            "Achieve[Weak]",
            GoalClass::Achieve,
            "",
            parse("prev(a) => b || c").unwrap(),
        );
        assert_eq!(t.verify(), Some(false));
    }

    #[test]
    fn verify_reports_none_for_unboundable_goals() {
        let mut t = build();
        t.subgoals[0].goal = Goal::new(
            "Achieve[W]",
            GoalClass::Achieve,
            "",
            parse("held_for(a, 5ticks) => b").unwrap(),
        );
        assert_eq!(t.verify(), None);
    }

    #[test]
    fn dangling_citations_are_reported() {
        let mut t = build();
        t.elaboration[0].using_relationships.push(42);
        assert_eq!(t.dangling_citations(), vec![42]);
    }

    #[test]
    #[should_panic(expected = "coverage strategy must be chosen")]
    fn finish_requires_strategy() {
        let _ = IcpaBuilder::new(sample_goal()).finish();
    }

    #[test]
    fn strategy_display_forms() {
        let s = GoalAssignment::SharedResponsibility {
            agents: vec!["DoorController".into(), "DriveController".into()],
        };
        assert_eq!(
            s.to_string(),
            "Shared Responsibility (DoorController & DriveController)"
        );
        let sc = GoalScope::Restrictive {
            rationale: "worst-case actuator delays".into(),
        };
        assert_eq!(sc.to_string(), "Restrictive (worst-case actuator delays)");
    }
}
