//! Goal realizability checking (thesis §2.3.2, §4.5.3).
//!
//! A goal `G(M, C)` is *strictly realizable* by an agent iff the agent can
//! monitor every variable in `M` and control every variable in `C`.
//! Letier & van Lamsweerde's unrealizability taxonomy is reproduced:
//! lack of monitorability, lack of control, reference to the future,
//! unsatisfiability, and not-finitely-violable goals.

use crate::agent::Agent;
use crate::goal::Goal;
use esafe_logic::prop;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Why a goal is not realizable by a given agent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unrealizability {
    /// Past-referenced variables the agent cannot observe.
    LackOfMonitorability {
        /// The unobservable variables.
        vars: BTreeSet<String>,
    },
    /// Present-referenced variables the agent can neither control nor even
    /// observe.
    LackOfControl {
        /// The uncontrollable variables.
        vars: BTreeSet<String>,
    },
    /// Present-referenced variables the agent can observe but not control:
    /// satisfying the goal would require reacting to a value in the same
    /// state it is produced, i.e. seeing the future (thesis §2.3.2's
    /// *reference to future* for goals of the form `A ⇒ B`).
    ReferenceToFuture {
        /// The variables observed but not controlled in present position.
        vars: BTreeSet<String>,
    },
    /// The goal admits no model at all.
    Unsatisfiable,
    /// The goal contains `eventually`/`next` and so can never be declared
    /// violated after finitely many observations.
    NotFinitelyViolable,
}

impl fmt::Display for Unrealizability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unrealizability::LackOfMonitorability { vars } => {
                write!(f, "lack of monitorability: {}", join(vars))
            }
            Unrealizability::LackOfControl { vars } => {
                write!(f, "lack of control: {}", join(vars))
            }
            Unrealizability::ReferenceToFuture { vars } => {
                write!(f, "reference to future: {}", join(vars))
            }
            Unrealizability::Unsatisfiable => write!(f, "goal is unsatisfiable"),
            Unrealizability::NotFinitelyViolable => {
                write!(f, "goal is not finitely violable")
            }
        }
    }
}

fn join(vars: &BTreeSet<String>) -> String {
    vars.iter().cloned().collect::<Vec<_>>().join(", ")
}

/// Checks whether `goal` is strictly realizable by `agent`.
///
/// Returns `Ok(())` when realizable, or the complete list of obstructions.
///
/// # Example
///
/// ```
/// use esafe_core::{Agent, AgentKind, Goal, GoalClass};
/// use esafe_core::realizability::{check_realizable, Unrealizability};
/// use esafe_logic::parse;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let goal = Goal::new("G", GoalClass::Maintain, "",
///                      parse("prev(overweight) -> drive_stopped")?);
/// let capable = Agent::new("DriveController", AgentKind::Software)
///     .monitors(["overweight"]).controls(["drive_stopped"]);
/// assert!(check_realizable(&goal, &capable).is_ok());
///
/// let blind = Agent::new("Blind", AgentKind::Software)
///     .controls(["drive_stopped"]);
/// let errs = check_realizable(&goal, &blind).unwrap_err();
/// assert!(matches!(&errs[0], Unrealizability::LackOfMonitorability { .. }));
/// # Ok(())
/// # }
/// ```
pub fn check_realizable(goal: &Goal, agent: &Agent) -> Result<(), Vec<Unrealizability>> {
    let mut problems = Vec::new();

    if goal.formal().uses_future() {
        problems.push(Unrealizability::NotFinitelyViolable);
    }

    // Unsatisfiability — only decidable for propositionally unrollable
    // goals; unboundable goals are skipped (conservative).
    if let Ok(false) = prop::satisfiable(goal.formal()) {
        problems.push(Unrealizability::Unsatisfiable);
    }

    let monitored = goal.monitored_vars();
    let controlled = goal.controlled_vars();

    let unmonitorable: BTreeSet<String> = monitored
        .iter()
        .filter(|v| !agent.can_monitor(v))
        .cloned()
        .collect();
    if !unmonitorable.is_empty() {
        problems.push(Unrealizability::LackOfMonitorability {
            vars: unmonitorable,
        });
    }

    let mut future_refs = BTreeSet::new();
    let mut uncontrollable = BTreeSet::new();
    for v in &controlled {
        if agent.can_control(v) {
            continue;
        }
        if agent.can_monitor(v) {
            // Observable but present-positioned: monitored values are only
            // known one state later, so acting on them now is a reference
            // to the future.
            future_refs.insert(v.clone());
        } else {
            uncontrollable.insert(v.clone());
        }
    }
    if !future_refs.is_empty() {
        problems.push(Unrealizability::ReferenceToFuture { vars: future_refs });
    }
    if !uncontrollable.is_empty() {
        problems.push(Unrealizability::LackOfControl {
            vars: uncontrollable,
        });
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// Checks realizability of `goal` by a *coalition* of agents: the union of
/// their monitor/control sets. Used for shared-responsibility coverage
/// (thesis §4.5.1), where coordinated agents jointly realize a goal.
pub fn check_realizable_by_all(goal: &Goal, agents: &[&Agent]) -> Result<(), Vec<Unrealizability>> {
    use crate::agent::AgentKind;
    let mut merged = Agent::new("<coalition>", AgentKind::Software);
    for a in agents {
        merged = merged
            .controls(a.controlled_vars().iter().cloned())
            .monitors(a.monitored_vars().iter().cloned());
    }
    check_realizable(goal, &merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentKind;
    use crate::goal::GoalClass;
    use esafe_logic::parse;

    fn goal(src: &str) -> Goal {
        Goal::new("G", GoalClass::Maintain, "", parse(src).unwrap())
    }

    #[test]
    fn same_state_implication_needs_both_controlled() {
        // A ⇒ B with A merely observable: reference to future.
        let g = goal("a => b");
        let ag = Agent::new("X", AgentKind::Software)
            .monitors(["a"])
            .controls(["b"]);
        let errs = check_realizable(&g, &ag).unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, Unrealizability::ReferenceToFuture { vars } if vars.contains("a"))
        ));

        // Both controlled: realizable.
        let ag2 = Agent::new("X", AgentKind::Software).controls(["a", "b"]);
        assert!(check_realizable(&g, &ag2).is_ok());
    }

    #[test]
    fn prev_antecedent_with_observation_is_realizable() {
        // ●A ⇒ B with A observable and B controllable: realizable.
        let g = goal("prev(a) => b");
        let ag = Agent::new("X", AgentKind::Software)
            .monitors(["a"])
            .controls(["b"]);
        assert!(check_realizable(&g, &ag).is_ok());
    }

    #[test]
    fn missing_everything_reports_both_kinds() {
        let g = goal("prev(a) => b");
        let ag = Agent::new("X", AgentKind::Software);
        let errs = check_realizable(&g, &ag).unwrap_err();
        assert_eq!(errs.len(), 2);
        assert!(errs
            .iter()
            .any(|e| matches!(e, Unrealizability::LackOfMonitorability { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, Unrealizability::LackOfControl { .. })));
    }

    #[test]
    fn unsatisfiable_goal_is_flagged() {
        let g = goal("a && !a");
        let ag = Agent::new("X", AgentKind::Software).controls(["a"]);
        let errs = check_realizable(&g, &ag).unwrap_err();
        assert!(errs.contains(&Unrealizability::Unsatisfiable));
    }

    #[test]
    fn future_operators_are_not_finitely_violable() {
        let g = goal("p => eventually(q)");
        let ag = Agent::new("X", AgentKind::Software).controls(["p", "q"]);
        let errs = check_realizable(&g, &ag).unwrap_err();
        assert!(errs.contains(&Unrealizability::NotFinitelyViolable));
    }

    #[test]
    fn coalition_merges_capabilities() {
        let g = goal("prev(a) => b && c");
        let a1 = Agent::new("A1", AgentKind::Software)
            .monitors(["a"])
            .controls(["b"]);
        let a2 = Agent::new("A2", AgentKind::Software).controls(["c"]);
        assert!(check_realizable(&g, &a1).is_err());
        assert!(check_realizable_by_all(&g, &[&a1, &a2]).is_ok());
    }

    #[test]
    fn display_messages_render() {
        let e = Unrealizability::LackOfControl {
            vars: ["x".to_owned()].into_iter().collect(),
        };
        assert_eq!(e.to_string(), "lack of control: x");
    }
}
