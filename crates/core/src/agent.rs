//! Agents: the entities that monitor and control state variables.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The kind of an agent in the control architecture (thesis §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgentKind {
    /// A software control agent (e.g. `DriveController`).
    Software,
    /// A physical actuator that changes plant state (e.g. `Drive`).
    Actuator,
    /// A sensor producing a sensed state variable.
    Sensor,
    /// An environmental agent outside the system boundary (e.g.
    /// `Passenger`, the driver).
    Environment,
}

impl fmt::Display for AgentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AgentKind::Software => "software",
            AgentKind::Actuator => "actuator",
            AgentKind::Sensor => "sensor",
            AgentKind::Environment => "environment",
        };
        f.write_str(s)
    }
}

/// An agent with monitorability and controllability over state variables.
///
/// Following KAOS (thesis §2.3.2), a goal `G(M, C)` is realizable by an
/// agent iff `M ⊆ Mon(ag)` and `C ⊆ Ctrl(ag)`. Unlike strict KAOS, the
/// thesis's *direct control* relation allows several agents to produce the
/// same kind of output variable (e.g. one hall-call message per button
/// controller), so no uniqueness is enforced here.
///
/// # Example
///
/// ```
/// use esafe_core::{Agent, AgentKind};
///
/// let ag = Agent::new("DriveController", AgentKind::Software)
///     .controls(["drive_command"])
///     .monitors(["door_closed", "door_motor_command"]);
/// assert!(ag.can_control("drive_command"));
/// assert!(ag.can_monitor("door_closed"));
/// assert!(ag.can_monitor("drive_command")); // control implies monitoring
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Agent {
    name: String,
    kind: AgentKind,
    monitors: BTreeSet<String>,
    controls: BTreeSet<String>,
}

impl Agent {
    /// Creates an agent with empty monitor/control sets.
    pub fn new(name: impl Into<String>, kind: AgentKind) -> Self {
        Agent {
            name: name.into(),
            kind,
            monitors: BTreeSet::new(),
            controls: BTreeSet::new(),
        }
    }

    /// Adds directly controlled variables (builder style).
    pub fn controls<S: Into<String>>(mut self, vars: impl IntoIterator<Item = S>) -> Self {
        self.controls.extend(vars.into_iter().map(Into::into));
        self
    }

    /// Adds monitored variables (builder style).
    pub fn monitors<S: Into<String>>(mut self, vars: impl IntoIterator<Item = S>) -> Self {
        self.monitors.extend(vars.into_iter().map(Into::into));
        self
    }

    /// The agent's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The agent's kind.
    pub fn kind(&self) -> AgentKind {
        self.kind
    }

    /// The set of variables this agent directly controls.
    pub fn controlled_vars(&self) -> &BTreeSet<String> {
        &self.controls
    }

    /// The set of variables this agent monitors (excluding those it
    /// controls; see [`Agent::can_monitor`]).
    pub fn monitored_vars(&self) -> &BTreeSet<String> {
        &self.monitors
    }

    /// Whether the agent directly controls `var`.
    pub fn can_control(&self, var: &str) -> bool {
        self.controls.contains(var)
    }

    /// Whether the agent can observe `var`. An agent always knows the
    /// values it directly controls.
    pub fn can_monitor(&self, var: &str) -> bool {
        self.monitors.contains(var) || self.controls.contains(var)
    }

    /// Input variables: everything monitored but not controlled. These
    /// drive the upstream step of indirect control path tracing.
    pub fn inputs(&self) -> impl Iterator<Item = &str> {
        self.monitors
            .iter()
            .filter(|v| !self.controls.contains(*v))
            .map(String::as_str)
    }
}

impl fmt::Display for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_implies_monitorability() {
        let ag = Agent::new("A", AgentKind::Software).controls(["x"]);
        assert!(ag.can_monitor("x"));
        assert!(!ag.can_monitor("y"));
    }

    #[test]
    fn inputs_exclude_controlled() {
        let ag = Agent::new("A", AgentKind::Software)
            .controls(["out"])
            .monitors(["in1", "in2", "out"]);
        let inputs: Vec<_> = ag.inputs().collect();
        assert_eq!(inputs, vec!["in1", "in2"]);
    }

    #[test]
    fn display_includes_kind() {
        let ag = Agent::new("Passenger", AgentKind::Environment);
        assert_eq!(ag.to_string(), "Passenger (environment)");
    }
}
