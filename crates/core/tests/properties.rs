//! Property-based tests for the composability formalism and the
//! realizability catalog.

use esafe_core::catalog::{self, Capability, GoalForm, LiftPos, Shape};
use esafe_core::compose::{self, Composability};
use esafe_logic::{prop, Expr};
use proptest::prelude::*;

const VARS: [&str; 4] = ["a", "b", "c", "d"];

fn bool_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = (0..VARS.len()).prop_map(|i| Expr::var(VARS[i]));
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::implies(a, b)),
        ]
    })
}

fn capability() -> impl Strategy<Value = Capability> {
    prop_oneof![
        Just(Capability::Controllable),
        Just(Capability::Observable),
        Just(Capability::Unavailable),
    ]
}

fn goal_form() -> impl Strategy<Value = GoalForm> {
    let shape = prop_oneof![
        Just(Shape::Simple),
        Just(Shape::OrAntecedent),
        Just(Shape::AndAntecedent),
        Just(Shape::AndConsequent),
        Just(Shape::OrConsequent),
    ];
    let lift = prop_oneof![
        Just(LiftPos::None),
        Just(LiftPos::FirstAntecedent),
        Just(LiftPos::FirstConsequent),
    ];
    (shape, lift).prop_map(|(s, l)| GoalForm::new(s, l))
}

proptest! {
    /// Classification verdicts honor their defining entailments.
    #[test]
    fn classification_matches_entailments(
        parent in bool_expr(3),
        g1 in bool_expr(2),
        g2 in bool_expr(2),
    ) {
        let groups = vec![vec![g1.clone(), g2.clone()]];
        let c = compose::classify(&parent, &groups).unwrap();
        let conj = Expr::and(g1, g2);
        let fwd = prop::entails(&[&conj], &parent).unwrap(); // C ⊨ G
        let bwd = prop::entails(&[&parent], &conj).unwrap(); // G ⊨ C
        match c {
            Composability::FullyComposable => prop_assert!(fwd && bwd),
            Composability::ComposableWithRestriction { .. } => prop_assert!(fwd && !bwd),
            Composability::EmergentPartiallyComposable { .. } => prop_assert!(!fwd && bwd),
            Composability::Emergent { .. } => prop_assert!(!fwd && !bwd),
            other => prop_assert!(false, "single group cannot yield {other:?}"),
        }
    }

    /// The weakest demon X always closes eq. 3.14 when G ⊨ C.
    #[test]
    fn weakest_demon_closes_equivalence(
        parent in bool_expr(3),
        g1 in bool_expr(2),
    ) {
        let subgoals = vec![g1.clone()];
        if prop::entails(&[&parent], &g1).unwrap() {
            let x = compose::weakest_demon(&parent, &subgoals);
            let closed = Expr::and(g1, x);
            prop_assert!(prop::equivalent(&closed, &parent).unwrap());
        }
    }

    /// The weakest angel Y always closes eq. 3.23 when D ⊨ G.
    #[test]
    fn weakest_angel_closes_equivalence(
        parent in bool_expr(3),
        g1 in bool_expr(2),
        g2 in bool_expr(2),
    ) {
        let groups = vec![vec![g1.clone()], vec![g2.clone()]];
        let d = Expr::or(g1, g2);
        if prop::entails(&[&d], &parent).unwrap() {
            let y = compose::weakest_angel(&parent, &groups);
            let closed = Expr::or(d, y);
            prop_assert!(prop::equivalent(&closed, &parent).unwrap());
        }
    }

    /// Conjunctive reductions are exact decompositions.
    #[test]
    fn conjunctive_reduction_is_exact(items in proptest::collection::vec(bool_expr(2), 2..4)) {
        let goal = Expr::always(Expr::And(items));
        if let Some(subs) = compose::conjunctive_reduction(&goal) {
            let conj = Expr::and_all(subs);
            prop_assert!(prop::equivalent(&conj, &goal).unwrap());
        }
    }

    /// OR-reduction always yields a goal that entails the original and
    /// never the reverse (strictly restrictive) for independent variables.
    #[test]
    fn or_reduction_is_strictly_restrictive(keep_first in any::<bool>()) {
        let goal = Expr::always(Expr::or(Expr::var("a"), Expr::var("b")));
        let target = if keep_first { Expr::var("a") } else { Expr::var("b") };
        let reduced = compose::or_reduction(&goal, &|e| *e == target).unwrap();
        prop_assert!(prop::entails(&[&reduced], &goal).unwrap());
        prop_assert!(!prop::entails(&[&goal], &reduced).unwrap());
    }

    /// Every catalog row's emitted alternative is sound (entails the
    /// original as an invariant), and realizable rows echo the original.
    #[test]
    fn catalog_rows_are_sound(
        form in goal_form(),
        caps in proptest::collection::vec(capability(), 3),
    ) {
        let n = form.shape.var_count();
        let entry = catalog::resolve(&form, &caps[..n]);
        if let Some(alt) = &entry.alternative {
            prop_assert!(
                prop::entails_invariant(&[alt], &entry.original).unwrap(),
                "{alt} must entail {}", entry.original
            );
            if entry.realizable_as_is {
                prop_assert_eq!(alt, &entry.original);
                prop_assert!(!entry.restrictive);
            }
            if !entry.restrictive {
                prop_assert!(
                    prop::entails_invariant(&[&entry.original], alt).unwrap(),
                    "nonrestrictive {alt} must be equivalent to {}", entry.original
                );
            }
        }
    }

    /// All-controllable capability assignments always realize the original.
    #[test]
    fn full_control_is_always_realizable(form in goal_form()) {
        let n = form.shape.var_count();
        let entry = catalog::resolve(&form, &vec![Capability::Controllable; n]);
        prop_assert!(entry.realizable_as_is);
    }

    /// Darimont condition 1 (entailment) agrees with a direct prop check.
    #[test]
    fn and_reduction_condition_one(
        parent in bool_expr(3),
        subs in proptest::collection::vec(bool_expr(2), 1..4),
    ) {
        let report = compose::and_reduction(&subs, &parent).unwrap();
        let refs: Vec<&Expr> = subs.iter().collect();
        prop_assert_eq!(report.entails_parent, prop::entails(&refs, &parent).unwrap());
    }
}
