//! Scenario 2 walk-through: the reversed steering-arbitration priority
//! (thesis Fig. 5.4). CA commands a hard stop; the driver engages Park
//! Assist; the steering stage silently captures the forwarded
//! acceleration while CA's `selected` flag stands — and the hierarchical
//! monitors localize the lie.
//!
//! ```text
//! cargo run --example vehicle_defect_hunt
//! ```

use emergent_safety::scenarios::{catalog, runner, tables};
use emergent_safety::vehicle::config::DefectSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = catalog::scenario(2);
    println!("Scenario 2: {}\n", scenario.title);
    println!("Thesis expectation: {}\n", scenario.expected);

    // The thesis's partially implemented vehicle.
    let report = runner::run(&scenario, DefectSet::thesis())?;
    println!("{}", tables::violation_table(&report));
    println!("{}", tables::ascii_figure(&report, "arbiter.accel_cmd", 72));
    println!("{}", tables::ascii_figure(&report, "ca.selected", 72));

    assert!(report.terminated_early, "the run ends in a collision");
    assert!(
        !report.violations_for("3").is_empty(),
        "goal 3 (accel/steering agreement) catches the split-brain arbiter"
    );

    // The fixed system: same scenario, zero violations, no collision.
    let fixed = runner::run(&scenario, DefectSet::none())?;
    assert!(!fixed.collision && fixed.violations.is_empty());
    println!(
        "fixed system re-run: no collision, no violations — every finding \
         above is attributable to the injected defects ✓"
    );
    Ok(())
}
