//! Quickstart: specify a safety goal, decompose it, classify the
//! decomposition, and monitor it at run time — the thesis's workflow in
//! sixty lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use emergent_safety::core::compose::{classify, weakest_demon, Composability};
use emergent_safety::logic::{parse, SignalTable};
use emergent_safety::monitor::{Location, MonitorSuite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A system safety goal (thesis eq. 3.4): when an object is in the
    //    vehicle's path, the vehicle must be stopping.
    let parent = parse("object_in_path -> stop_vehicle")?;

    // 2. A candidate decomposition onto the collision-avoidance feature —
    //    but with imperfect object detection acknowledged (eq. 3.17–3.20):
    //    only the *detected* case is realizable.
    let g1 = parse("detected -> ca.stop_vehicle")?;
    let g2 = parse("ca.stop_vehicle -> stop_vehicle")?;
    let assumption = parse("object_in_path -> detected || missed")?;

    // 3. Classify: the subgoals alone cannot entail the parent — the
    //    missed-detection behavior is the hidden demon X of eq. 3.14.
    let verdict = classify(&parent, &[vec![g1.clone(), g2.clone(), assumption]])?;
    println!("classification: {verdict:?}");
    assert!(matches!(verdict, Composability::Emergent { .. }));
    println!(
        "weakest admissible X: {}",
        weakest_demon(&parent, &[g1, g2])
    );

    // 4. Monitor the goal and subgoals hierarchically at run time. The
    //    suite compiles every formula against one shared signal table, so
    //    each per-tick observation is dense id-indexed slot access.
    let mut b = SignalTable::builder();
    let s_object = b.bool("object_in_path");
    let s_detected = b.bool("detected");
    let s_ca_stop = b.bool("ca.stop_vehicle");
    let s_stopping = b.bool("stop_vehicle");
    let table = b.finish();

    let mut suite = MonitorSuite::new(table.clone());
    suite.add_goal(
        "G",
        Location::new("Vehicle"),
        parse("object_in_path -> stop_vehicle")?,
    )?;
    suite.add_subgoal(
        "G.CA",
        "G",
        Location::new("CA"),
        parse("detected -> ca.stop_vehicle")?,
    )?;

    // Tick 1: object present, detected, CA stopping — all satisfied.
    // Tick 2: object present but MISSED — the parent goal fires with no
    //         subgoal violation: a false negative exposing the emergence.
    let ticks = [
        (true, true, true, true),
        (true, false, false, false),
        (false, false, false, false),
    ];
    let mut frame = table.frame();
    for (object, detected, ca_stop, stopping) in ticks {
        frame.set(s_object, object);
        frame.set(s_detected, detected);
        frame.set(s_ca_stop, ca_stop);
        frame.set(s_stopping, stopping);
        suite.observe(&frame)?;
    }
    suite.finish();

    let report = suite.correlate(0);
    println!("\nrun-time classification:\n{report}");
    let row = report.for_goal("G").expect("goal registered");
    assert_eq!(
        row.false_negatives, 1,
        "the miss shows up as a false negative"
    );
    println!("false negatives = residual emergence detected at run time ✓");
    Ok(())
}
