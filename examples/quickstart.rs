//! Quickstart: specify a safety goal, decompose it, classify the
//! decomposition, and monitor it at run time — the thesis's workflow in
//! sixty lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use emergent_safety::core::compose::{classify, weakest_demon, Composability};
use emergent_safety::logic::{parse, State};
use emergent_safety::monitor::{Location, MonitorSuite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A system safety goal (thesis eq. 3.4): when an object is in the
    //    vehicle's path, the vehicle must be stopping.
    let parent = parse("object_in_path -> stop_vehicle")?;

    // 2. A candidate decomposition onto the collision-avoidance feature —
    //    but with imperfect object detection acknowledged (eq. 3.17–3.20):
    //    only the *detected* case is realizable.
    let g1 = parse("detected -> ca.stop_vehicle")?;
    let g2 = parse("ca.stop_vehicle -> stop_vehicle")?;
    let assumption = parse("object_in_path -> detected || missed")?;

    // 3. Classify: the subgoals alone cannot entail the parent — the
    //    missed-detection behavior is the hidden demon X of eq. 3.14.
    let verdict = classify(&parent, &[vec![g1.clone(), g2.clone(), assumption]])?;
    println!("classification: {verdict:?}");
    assert!(matches!(verdict, Composability::Emergent { .. }));
    println!(
        "weakest admissible X: {}",
        weakest_demon(&parent, &[g1, g2])
    );

    // 4. Monitor the goal and subgoals hierarchically at run time.
    let mut suite = MonitorSuite::new();
    suite.add_goal(
        "G",
        Location::new("Vehicle"),
        parse("object_in_path -> stop_vehicle")?,
    )?;
    suite.add_subgoal(
        "G.CA",
        "G",
        Location::new("CA"),
        parse("detected -> ca.stop_vehicle")?,
    )?;

    // Tick 1: object present, detected, CA stopping — all satisfied.
    // Tick 2: object present but MISSED — the parent goal fires with no
    //         subgoal violation: a false negative exposing the emergence.
    let ticks = [
        (true, true, true, true),
        (true, false, false, false),
        (false, false, false, false),
    ];
    for (object, detected, ca_stop, stopping) in ticks {
        suite.observe(
            &State::new()
                .with_bool("object_in_path", object)
                .with_bool("detected", detected)
                .with_bool("ca.stop_vehicle", ca_stop)
                .with_bool("stop_vehicle", stopping),
        )?;
    }
    suite.finish();

    let report = suite.correlate(0);
    println!("\nrun-time classification:\n{report}");
    let row = report.for_goal("G").expect("goal registered");
    assert_eq!(
        row.false_negatives, 1,
        "the miss shows up as a false negative"
    );
    println!("false negatives = residual emergence detected at run time ✓");
    Ok(())
}
