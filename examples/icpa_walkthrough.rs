//! A from-scratch ICPA session on a fresh architecture: build the control
//! graph, trace indirect control paths, consult the realizability catalog,
//! apply elaboration tactics, and machine-verify the resulting table.
//!
//! The system is the thesis's overweight-elevator example (Fig. 4.6) built
//! manually, so every one of the six ICPA steps is visible.
//!
//! ```text
//! cargo run --example icpa_walkthrough
//! ```

use emergent_safety::core::catalog::{resolve, Capability, GoalForm, LiftPos, Shape};
use emergent_safety::core::icpa::{CoverageStrategy, GoalAssignment, GoalScope, IcpaBuilder};
use emergent_safety::core::tactics::{self, TacticKind};
use emergent_safety::core::{render, Agent, AgentKind, ControlGraph, Goal, GoalClass};
use emergent_safety::logic::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 0: the architecture (a fragment of Fig. 4.5).
    let mut graph = ControlGraph::new();
    graph.add_sensed_var("overweight", "load-cell threshold flag");
    graph.add_sensed_var("elevator_stopped", "speed sensor band");
    graph.add_var("drive_speed", "physical drive speed");
    graph.add_var("drive_command", "actuation signal");
    graph.add_physical_link("drive_speed", "elevator_stopped", "plant");
    graph.add_agent(
        Agent::new("Drive", AgentKind::Actuator)
            .controls(["drive_speed"])
            .monitors(["drive_command"]),
    );
    graph.add_agent(
        Agent::new("DriveController", AgentKind::Software)
            .controls(["drive_command"])
            .monitors(["overweight"]),
    );
    graph.add_agent(Agent::new("Passenger", AgentKind::Environment).controls(["overweight"]));

    // Step 1: the goal (Fig. 4.6), ●(ew > wt) ⇒ IsStopped(es).
    let goal = Goal::new(
        "Maintain[DriveStoppedWhenOverweight]",
        GoalClass::Maintain,
        "If the elevator weight exceeds the threshold, the elevator shall \
         be stopped.",
        parse("prev(overweight) => elevator_stopped")?,
    );
    println!("{}", render::goal_card(&goal));

    // Step 2: who indirectly controls `elevator_stopped`?
    let path = graph.trace("elevator_stopped");
    println!("{}", render::control_path(&path));

    // Consult the catalog: ●A ⇒ B with A observable and B merely sensed —
    // the drive controller can only reach B through the actuation command.
    let row = resolve(
        &GoalForm::new(Shape::Simple, LiftPos::FirstAntecedent),
        &[Capability::Observable, Capability::Unavailable],
    );
    println!(
        "catalog says: realizable as-is: {}, alternative: {:?}",
        row.realizable_as_is,
        row.alternative.as_ref().map(ToString::to_string),
    );

    // Step 5 tactic: introduce the actuation goal — shift control from the
    // sensed variable to the drive command.
    let app = tactics::introduce_actuation(goal.formal(), "elevator_stopped", "drive_command_stop");
    println!(
        "tactic `{}` derived: {}  (machine-verified: {:?})",
        TacticKind::IntroduceActuationGoal,
        app.subgoals[0],
        app.verified
    );

    // Steps 3–6: the full table, with the verification stamp.
    let table = IcpaBuilder::new(goal)
        .path(path)
        .relationship(
            1,
            "elevator_stopped",
            ["Drive"],
            parse("drive_command_stop <-> elevator_stopped")?,
            "a drive commanded STOP stops the car (worst-case delay folded \
             into the restrictive scope)",
        )
        .strategy(CoverageStrategy {
            assignment: GoalAssignment::SingleResponsibility {
                agent: "DriveController".into(),
            },
            scope: GoalScope::Restrictive {
                rationale: "assumes worst-case drive actuation delay".into(),
            },
        })
        .elaborate(
            app.subgoals[0].clone(),
            TacticKind::IntroduceActuationGoal,
            [1],
            "actuation image of the sensed stop",
        )
        .subgoal(
            "DriveController",
            Goal::new(
                "Achieve[StopDriveWhenOverweight]",
                GoalClass::Achieve,
                "Command STOP whenever the car was overweight.",
                parse("prev(overweight) => drive_command_stop")?,
            ),
            ["drive_command_stop"],
            ["overweight"],
        )
        .finish();

    println!("{}", render::icpa_table(&table));
    assert_eq!(table.verify(), Some(true));
    Ok(())
}
