//! The Chapter 4 elevator, end to end: print the ICPA that derives the
//! Table 4.4 subgoals, run the healthy system, then inject the
//! hoistway-runaway fault and watch the redundant coverage mask it (a
//! false positive — thesis §3.4).
//!
//! ```text
//! cargo run --example elevator_safety
//! ```

use emergent_safety::core::render;
use emergent_safety::elevator::faults::ElevatorFaults;
use emergent_safety::elevator::{build_elevator, goals, icpa, ElevatorParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ElevatorParams::default();

    // The documented analysis: Tables 4.1–4.4 in one artifact.
    println!("{}", render::icpa_table(&icpa::door_or_stopped_icpa(&params)));

    // Healthy run: 2 simulated minutes of random passenger traffic.
    let mut suite = goals::build_suite(&params)?;
    let mut sim = build_elevator(params, ElevatorFaults::none(), 7);
    for _ in 0..12_000 {
        sim.step();
        suite.observe(sim.state())?;
    }
    suite.finish();
    println!("healthy run:\n{}", suite.correlate(5));

    // Inject the runaway: the drive controller loses its hoistway guard
    // and sticks UP. The emergency brake (the secondary redundancy leg)
    // catches the car, so the *system* goal stays clean while the
    // *primary subgoal* fires — redundant coverage masking a real defect.
    let faults = ElevatorFaults {
        hoistway_guard_missing: true,
        ..ElevatorFaults::none()
    };
    let mut suite = goals::build_suite(&params)?;
    let mut sim = build_elevator(params, faults, 7);
    for _ in 0..6_000 {
        sim.step();
        suite.observe(sim.state())?;
    }
    suite.finish();
    let report = suite.correlate(5);
    println!("runaway drive, emergency brake alive:\n{report}");
    let row = report.for_goal("hoistway").expect("goal registered");
    assert_eq!(row.goal_violations, 0, "the secondary leg saved the car");
    assert!(row.false_positives > 0, "but the monitors exposed the defect");
    println!(
        "primary-subgoal false positives exposed the hidden defect while \
         the system stayed safe ✓"
    );
    Ok(())
}
