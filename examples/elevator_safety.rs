//! The Chapter 4 elevator, end to end: print the ICPA that derives the
//! Table 4.4 subgoals, run the healthy system, then inject the
//! hoistway-runaway fault and watch the redundant coverage mask it (a
//! false positive — thesis §3.4). Both runs go through the generic
//! experiment harness.
//!
//! ```text
//! cargo run --example elevator_safety
//! ```

use emergent_safety::core::render;
use emergent_safety::elevator::faults::ElevatorFaults;
use emergent_safety::elevator::{icpa, ElevatorFamily, ElevatorParams};
use emergent_safety::harness::{Experiment, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ElevatorParams::default();

    // The documented analysis: Tables 4.1–4.4 in one artifact.
    println!(
        "{}",
        render::icpa_table(&icpa::door_or_stopped_icpa(&params))
    );

    // A ±50 ms correlation window: 5 ticks at the elevator's 10 ms period.
    let config = ExperimentConfig {
        correlation_window_ms: 50,
        ..ExperimentConfig::default()
    };

    // One family = one signal table + one compiled goal suite shared by
    // every run below (the monitors compile once, not once per run).
    let family = ElevatorFamily::new(params);

    // Healthy run: 2 simulated minutes of random passenger traffic.
    let healthy = family
        .substrate(ElevatorFaults::none(), 7)
        .with_ticks(12_000);
    let report = Experiment::new(&healthy).with_config(config).run()?;
    println!("healthy run:\n{}", report.correlation);

    // Inject the runaway: the drive controller loses its hoistway guard
    // and sticks UP. The emergency brake (the secondary redundancy leg)
    // catches the car, so the *system* goal stays clean while the
    // *primary subgoal* fires — redundant coverage masking a real defect.
    let faults = ElevatorFaults {
        hoistway_guard_missing: true,
        ..ElevatorFaults::none()
    };
    let runaway = family.substrate(faults, 7).with_ticks(6_000);
    let report = Experiment::new(&runaway).with_config(config).run()?;
    println!(
        "runaway drive, emergency brake alive:\n{}",
        report.correlation
    );
    let row = report
        .correlation
        .for_goal("hoistway")
        .expect("goal registered");
    assert_eq!(row.goal_violations, 0, "the secondary leg saved the car");
    assert!(
        row.false_positives > 0,
        "but the monitors exposed the defect"
    );
    println!(
        "primary-subgoal false positives exposed the hidden defect while \
         the system stayed safe ✓"
    );
    Ok(())
}
