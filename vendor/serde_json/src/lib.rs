//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde`'s [`Content`] tree as JSON text.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value as human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

fn write_content(
    c: &Content,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("non-finite float is not representable in JSON"));
            }
            // `{:?}` is Rust's shortest round-trip float form and always
            // keeps a decimal point, so floats re-parse as floats.
            out.push_str(&format!("{x:?}"));
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            write_delimited(items.iter(), indent, level, out, ('[', ']'), |item, out| {
                write_content(item, indent, level + 1, out)
            })?
        }
        Content::Map(entries) => write_delimited(
            entries.iter(),
            indent,
            level,
            out,
            ('{', '}'),
            |(k, v), out| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, indent, level + 1, out)
            },
        )?,
    }
    Ok(())
}

fn write_delimited<I: ExactSizeIterator>(
    items: I,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    (open, close): (char, char),
    mut write_item: impl FnMut(I::Item, &mut String) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, out)?;
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(Error::new("unterminated string")),
                Some(_) => unreachable!("scan stops only at quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Content::U64(n as u64)
                } else {
                    Content::I64(n)
                });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_and_pretty_round_trip() {
        let mut m: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        m.insert("x".into(), vec![(0.0, 1.5), (0.001, -2.0)]);
        let compact = to_string(&m).unwrap();
        let pretty = to_string_pretty(&m).unwrap();
        let back: BTreeMap<String, Vec<(f64, f64)>> = from_str(&compact).unwrap();
        let back_pretty: BTreeMap<String, Vec<(f64, f64)>> = from_str(&pretty).unwrap();
        assert_eq!(back, m);
        assert_eq!(back_pretty, m);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn floats_stay_floats() {
        let json = to_string(&7.0f64).unwrap();
        assert_eq!(json, "7.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 7.0);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
    }
}
