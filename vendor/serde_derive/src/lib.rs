//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde`'s [`Serialize`]/[`Deserialize`] traits,
//! which are defined over a self-describing content tree rather than the
//! upstream visitor machinery. The derive supports the shapes this
//! workspace actually uses: named structs (with `#[serde(skip)]` fields),
//! tuple structs, unit structs, and enums with unit, tuple, and named
//! variants. Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading `#[...]` attributes, returning whether any of them was
/// a `#[serde(skip*)]` marker.
fn eat_attrs(it: &mut TokenIter) -> bool {
    let mut skip = false;
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        if let Some(TokenTree::Group(g)) = it.next() {
            skip |= attr_is_serde_skip(&g.stream());
        }
    }
    skip
}

fn attr_is_serde_skip(attr: &TokenStream) -> bool {
    let mut it = attr.clone().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string().starts_with("skip"))),
        _ => false,
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility prefix.
fn eat_visibility(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut TokenIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive stub: expected {what}, found {other:?}"),
    }
}

/// Consumes tokens of one type, stopping after the top-level `,` (angle
/// brackets tracked by depth; delimited groups are atomic tokens).
fn eat_type_until_comma(it: &mut TokenIter) {
    let mut depth = 0i32;
    while let Some(tt) = it.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                it.next();
                return;
            }
            _ => {}
        }
        it.next();
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        let skip = eat_attrs(&mut it);
        eat_visibility(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            break;
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive stub: expected `:` after field, found {other:?}"),
        }
        eat_type_until_comma(&mut it);
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
    }
    fields
}

/// Counts the top-level comma-separated entries of a tuple-struct or
/// tuple-variant body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut it = ts.into_iter().peekable();
    if it.peek().is_none() {
        return 0;
    }
    let mut count = 0;
    loop {
        eat_attrs(&mut it);
        eat_visibility(&mut it);
        if it.peek().is_none() {
            break;
        }
        eat_type_until_comma(&mut it);
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        eat_attrs(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            break;
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    eat_attrs(&mut it);
    eat_visibility(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "item name");
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stub: generic type `{name}` is not supported");
    }
    let kind = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde derive stub: unexpected struct body {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive stub: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive stub: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_content(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(0) | Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(\"{vn}\"\
                             .to_string(), ::serde::Serialize::to_content(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Content::Map(vec![(\"{vn}\"\
                                 .to_string(), ::serde::Content::Seq(vec![{elems}]))]),",
                                binds = binds.join(", "),
                                elems = elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(\"{n}\".to_string(), \
                                         ::serde::Serialize::to_content({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\
                                 \"{vn}\".to_string(), ::serde::Content::Map(vec![{entries}]\
                                 ))]),",
                                binds = binds.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_named_construction(path: &str, fields: &[Field], map_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::core::default::Default::default()", f.name)
            } else {
                format!(
                    "{n}: ::serde::Deserialize::from_content(::serde::map_field({m}, \"{n}\")?)?",
                    n = f.name,
                    m = map_var
                )
            }
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let construct = gen_named_construction(name, fields, "__m");
            format!(
                "let __m = __c.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected map for struct {name}\"))?;\n\
                 ::core::result::Result::Ok({construct})"
            )
        }
        Kind::TupleStruct(0) | Kind::UnitStruct => {
            let construct = if matches!(item.kind, Kind::UnitStruct) {
                name.clone()
            } else {
                format!("{name}()")
            };
            format!("let _ = __c; ::core::result::Result::Ok({construct})")
        }
        Kind::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __c.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected seq for tuple struct {name}\"))?;\n\
                 if __s.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                 ::core::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(__val)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __s = __val.as_seq().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected seq for {name}::{vn}\"))?;\n\
                                 if __s.len() != {n} {{ return ::core::result::Result::Err(\
                                 ::serde::DeError::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                                 ::core::result::Result::Ok({name}::{vn}({elems}))\n\
                                 }},",
                                elems = elems.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let construct =
                                gen_named_construction(&format!("{name}::{vn}"), fields, "__m");
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __m = __val.as_map().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected map for {name}::{vn}\"))?;\n\
                                 ::core::result::Result::Ok({construct})\n\
                                 }},",
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {units}\n\
                 __other => ::core::result::Result::Err(::serde::DeError::custom(\
                 \"unknown unit variant for {name}\")),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let __val = &__entries[0].1;\n\
                 match __entries[0].0.as_str() {{\n\
                 {datas}\n\
                 __other => ::core::result::Result::Err(::serde::DeError::custom(\
                 \"unknown variant for {name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => ::core::result::Result::Err(::serde::DeError::custom(\
                 \"expected variant encoding for {name}\")),\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// Derives the vendored `serde::Serialize` (content-tree encoder).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the vendored `serde::Deserialize` (content-tree decoder).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}
