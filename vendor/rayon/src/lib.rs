//! Offline stand-in for `rayon`, covering the data-parallel subset this
//! workspace uses: `par_iter`/`into_par_iter` → `map`/`map_init` →
//! `collect`, plus `map_init(..).fold(..).reduce(..)` for streaming
//! reductions.
//!
//! Work is distributed over `std::thread::scope` with an atomic work
//! index; results land in their input slot, so `collect` preserves input
//! order and is deterministic regardless of thread interleaving.
//! `map_init` gives every worker thread one mutable state value built by
//! the caller's `init` closure — the hook behind per-worker pooled run
//! contexts.
//!
//! `fold` keeps one accumulator per worker thread and never materializes
//! the mapped results, so a fold over N items allocates O(threads), not
//! O(N) — the hook behind streaming experiment sweeps. As in rayon, the
//! number of accumulators and the reduction order are unspecified:
//! `fold`/`reduce` operations must be commutative and associative for
//! deterministic results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-style glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelIterator};
}

/// Number of worker threads for a job of `len` items.
fn thread_count(len: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len)
        .max(1)
}

/// Runs `f` over `items` on multiple threads, returning the results in
/// input order.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    parallel_map_init(items, || (), |(), x| f(x))
}

/// Runs `f` over `items` on multiple threads with one `init()`-built
/// state value per worker thread, returning the results in input order.
fn parallel_map_init<T: Send, S, R: Send>(
    items: Vec<T>,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, T) -> R + Sync,
) -> Vec<R> {
    let threads = thread_count(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|x| f(&mut state, x)).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("item taken once");
                    *results[i].lock().unwrap() = Some(f(&mut state, item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("slot filled"))
        .collect()
}

/// Runs `f` over `items` on multiple threads with per-worker `init()`
/// state, folding each worker's results into a per-worker accumulator
/// (`identity()` + `fold`). Returns one accumulator per worker; mapped
/// results are never materialized, so memory is O(threads).
fn parallel_fold_init<T: Send, S, R, A: Send>(
    items: Vec<T>,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, T) -> R + Sync,
    identity: impl Fn() -> A + Sync,
    fold: impl Fn(A, R) -> A + Sync,
) -> Vec<A> {
    let threads = thread_count(items.len());
    if threads <= 1 {
        let mut state = init();
        let mut acc = identity();
        for x in items {
            acc = fold(acc, f(&mut state, x));
        }
        return vec![acc];
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let next = AtomicUsize::new(0);
    let accumulators: Mutex<Vec<A>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                let mut acc = identity();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("item taken once");
                    acc = fold(acc, f(&mut state, item));
                }
                accumulators.lock().unwrap().push(acc);
            });
        }
    });
    accumulators.into_inner().unwrap()
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator, executed on `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// A mapped parallel iterator carrying per-worker state, executed on
/// `collect`.
pub struct ParMapInit<T, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

/// A folded parallel iterator: per-worker accumulators over the mapped
/// results, executed on `reduce`. Mirrors rayon's
/// `map_init(..).fold(..).reduce(..)` chain for the streaming subset
/// this workspace uses.
pub struct ParFoldInit<T, INIT, F, AI, FOLD> {
    items: Vec<T>,
    init: INIT,
    f: F,
    identity: AI,
    fold: FOLD,
}

/// Conversion into a by-value parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Conversion into a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send;
    /// Borrows into a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The subset of rayon's `ParallelIterator` this workspace needs.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Maps each element through `f` (executed at `collect`).
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> ParMap<Self::Item, F>;

    /// Maps each element through `f` with one `init()`-built mutable
    /// state value per worker thread (executed at `collect`). The number
    /// of `init` calls is unspecified — state must not influence
    /// results, only amortize their computation.
    fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<Self::Item, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) -> R + Sync;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<T, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

impl<T, S, R, INIT, F> ParMapInit<T, INIT, F>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map_init(self.items, self.init, self.f)
            .into_iter()
            .collect()
    }

    /// Folds the mapped results into per-worker accumulators (executed
    /// at `reduce`). Each worker starts from `identity()` and folds every
    /// result it produces; mapped results are never materialized, so a
    /// fold over N items holds O(threads) accumulators. How items are
    /// partitioned across accumulators is unspecified — `fold_op` must
    /// combine commutatively for deterministic results.
    pub fn fold<A, AI, FOLD>(self, identity: AI, fold_op: FOLD) -> ParFoldInit<T, INIT, F, AI, FOLD>
    where
        A: Send,
        AI: Fn() -> A + Sync,
        FOLD: Fn(A, R) -> A + Sync,
    {
        ParFoldInit {
            items: self.items,
            init: self.init,
            f: self.f,
            identity,
            fold: fold_op,
        }
    }
}

impl<T, S, R, A, INIT, F, AI, FOLD> ParFoldInit<T, INIT, F, AI, FOLD>
where
    T: Send,
    R: Send,
    A: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
    AI: Fn() -> A + Sync,
    FOLD: Fn(A, R) -> A + Sync,
{
    /// Executes the fold in parallel and merges the per-worker
    /// accumulators with `op`, starting from `identity()`. The merge
    /// order is unspecified — `op` must be commutative and associative
    /// for deterministic results.
    pub fn reduce<OP>(self, identity: impl Fn() -> A, op: OP) -> A
    where
        OP: Fn(A, A) -> A,
    {
        parallel_fold_init(self.items, self.init, self.f, &self.identity, self.fold)
            .into_iter()
            .fold(identity(), op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let input = vec!["a".to_string(), "bb".into(), "ccc".into()];
        let lens: Vec<usize> = input.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
        drop(input);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn fold_reduce_streams_without_materializing() {
        let input: Vec<u64> = (0..1000).collect();
        let sum = input
            .clone()
            .into_par_iter()
            .map_init(|| 0u64, |_, x| x * 3)
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(sum, input.iter().map(|x| x * 3).sum::<u64>());
        // Empty input reduces to the identity.
        let empty = Vec::<u64>::new()
            .into_par_iter()
            .map_init(|| (), |(), x| x)
            .fold(|| 7u64, |acc, x| acc + x)
            .reduce(|| 7u64, |a, b| a.min(b));
        assert_eq!(empty, 7);
    }

    #[test]
    fn map_init_reuses_worker_state_and_preserves_order() {
        let input: Vec<u64> = (0..257).collect();
        // Each worker counts how many items it has processed in its own
        // state; results stay keyed to the input order regardless.
        let out: Vec<(u64, u64)> = input
            .clone()
            .into_par_iter()
            .map_init(
                || 0u64,
                |seen, x| {
                    *seen += 1;
                    (x * 2, *seen)
                },
            )
            .collect();
        let doubled: Vec<u64> = out.iter().map(|(d, _)| *d).collect();
        assert_eq!(doubled, input.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Every worker's per-state counter advanced from 1 upward, and
        // all items were processed exactly once.
        let total: u64 = out.iter().filter(|(_, seen)| *seen == 1).count() as u64;
        assert!(total >= 1, "at least one worker processed a first item");
    }
}
