//! Offline stand-in for `criterion`, covering the bench API this
//! workspace uses: `criterion_group!`/`criterion_main!`, `Criterion`
//! with `bench_function`/`benchmark_group`, groups with `sample_size`,
//! `bench_function`, `bench_with_input`, and `finish`, and
//! `BenchmarkId`. Each benchmark runs a short warm-up plus a fixed
//! sample count and prints mean wall-clock time per iteration — enough
//! to compare runs locally without the statistical machinery.

use std::fmt;
use std::time::Instant;

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    samples: usize,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Times `f`, recording mean nanoseconds per iteration.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / self.samples as f64);
    }
}

fn run_benchmark(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean_ns: None,
    };
    f(&mut b);
    match b.mean_ns {
        Some(ns) if ns >= 1_000_000.0 => {
            println!("bench {label:<48} {:>12.3} ms/iter", ns / 1_000_000.0);
        }
        Some(ns) if ns >= 1_000.0 => {
            println!("bench {label:<48} {:>12.3} us/iter", ns / 1_000.0);
        }
        Some(ns) => println!("bench {label:<48} {ns:>12.1} ns/iter"),
        None => println!("bench {label:<48} (no measurement)"),
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLES: usize = 10;

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, DEFAULT_SAMPLES, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.samples, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
