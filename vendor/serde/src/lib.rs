//! Offline stand-in for `serde`.
//!
//! The real serde models serialization as a visitor protocol between a
//! data structure and a format. This workspace only ever round-trips its
//! own types through `serde_json`, so the stand-in collapses the protocol
//! into a self-describing [`Content`] tree: [`Serialize`] encodes into it,
//! [`Deserialize`] decodes from it, and `serde_json` renders it. The
//! derive macros (re-exported from the sibling `serde_derive` stub) target
//! these traits directly and honor `#[serde(skip)]`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (array).
    Seq(Vec<Content>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Looks up a struct field in a serialized map.
///
/// # Errors
///
/// Returns [`DeError`] if the field is absent.
pub fn map_field<'a>(entries: &'a [(String, Content)], name: &str) -> Result<&'a Content, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Encodes a value into a [`Content`] tree.
pub trait Serialize {
    /// The serialized form of `self`.
    fn to_content(&self) -> Content;
}

/// Decodes a value from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value from its serialized form.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the content does not match the expected
    /// shape.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let n = i64::from_content(c)?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let n = u64::from_content(c)?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32);

impl Serialize for i64 {
    fn to_content(&self) -> Content {
        Content::I64(*self)
    }
}

impl Deserialize for i64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::I64(n) => Ok(*n),
            Content::U64(n) => i64::try_from(*n).map_err(|_| DeError::custom("u64 overflows i64")),
            Content::F64(x) if x.fract() == 0.0 => Ok(*x as i64),
            _ => Err(DeError::custom("expected integer")),
        }
    }
}

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        Content::U64(*self)
    }
}

impl Deserialize for u64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::U64(n) => Ok(*n),
            Content::I64(n) => u64::try_from(*n).map_err(|_| DeError::custom("negative integer")),
            Content::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as u64),
            _ => Err(DeError::custom("expected unsigned integer")),
        }
    }
}

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let n = u64::from_content(c)?;
        usize::try_from(n).map_err(|_| DeError::custom("integer out of range"))
    }
}

impl Serialize for isize {
    fn to_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let n = i64::from_content(c)?;
        isize::try_from(n).map_err(|_| DeError::custom("integer out of range"))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(x) => Ok(*x),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            _ => Err(DeError::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c.as_seq() {
            Some([a, b]) => Ok((A::from_content(a)?, B::from_content(b)?)),
            _ => Err(DeError::custom("expected 2-tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c.as_seq() {
            Some([a, b, c]) => Ok((
                A::from_content(a)?,
                B::from_content(b)?,
                C::from_content(c)?,
            )),
            _ => Err(DeError::custom("expected 3-tuple")),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(u64::from_content(&7u64.to_content()), Ok(7));
        assert_eq!(i64::from_content(&(-3i64).to_content()), Ok(-3));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(
            String::from_content(&"hi".to_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn integers_cross_decode() {
        assert_eq!(f64::from_content(&Content::I64(4)), Ok(4.0));
        assert_eq!(u64::from_content(&Content::I64(4)), Ok(4));
        assert!(u64::from_content(&Content::I64(-4)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Vec::from_content(&v.to_content()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u64, 2]);
        let back: BTreeMap<String, Vec<u64>> = BTreeMap::from_content(&m.to_content()).unwrap();
        assert_eq!(back, m);

        assert_eq!(Option::<u64>::from_content(&Content::Null), Ok(None));
        assert_eq!(Option::<u64>::from_content(&Content::U64(1)), Ok(Some(1)));
    }
}
