//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the [`Strategy`] trait with `prop_map`, `prop_recursive`, and
//! `boxed`; tuple/range/`Just` strategies; `prop_oneof!`;
//! `collection::vec`; `array::uniform4`; `any::<bool>()`; and the
//! `proptest!` test macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name), and assertion failures panic immediately — there is no
//! shrinking, so a failing case reports exactly the generated inputs.

use std::ops::Range;
use std::rc::Rc;

/// Cases generated per `proptest!` test.
pub const CASES: u32 = 64;

/// The deterministic case generator.
pub mod test_runner {
    /// A splitmix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seeds from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Rng { state: h }
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform index below `n`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot pick from an empty set");
            (self.next_u64() % n as u64) as usize
        }
    }
}

use test_runner::Rng;

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Builds a recursive strategy: `self` is the leaf case and `expand`
    /// wraps an inner strategy into composite cases. Recursion is bounded
    /// by `depth`; the node-count and branching hints of real proptest are
    /// accepted but unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let expanded = expand(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy(Rc::new(move |rng: &mut Rng| {
                // Favor composite nodes; the chain bottoms out at `leaf`.
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    expanded.generate(rng)
                }
            }));
        }
        current
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut Rng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (self.0)(rng)
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;
    fn generate(&self, rng: &mut Rng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = self.end.checked_sub(self.start).expect("non-empty range");
                assert!(span > 0, "cannot sample an empty range");
                self.start + (rng.next_u64() % (span as u64)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut Rng) -> i64 {
        let span = (self.end - self.start) as u64;
        assert!(span > 0, "cannot sample an empty range");
        self.start + (rng.next_u64() % span) as i64
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut Rng) -> i32 {
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        assert!(span > 0, "cannot sample an empty range");
        self.start + (rng.next_u64() % span) as i32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut Rng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical `any()` strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy};
    use std::ops::Range;

    /// Length specifications accepted by [`vec()`]: a range or an exact
    /// size.
    pub trait IntoSizeRange {
        /// The `(min, max_exclusive)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// A `Vec` strategy with a length range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.min + rng.below(self.max - self.min);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Rng, Strategy};

    /// A `[T; 4]` strategy.
    pub struct Uniform4<S> {
        element: S,
    }

    /// Generates arrays of four `element` values.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4 { element }
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut Rng) -> [S::Value; 4] {
            [
                self.element.generate(rng),
                self.element.generate(rng),
                self.element.generate(rng),
                self.element.generate(rng),
            ]
        }
    }
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// Property assertion (stub: panics like `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion (stub: panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::Rng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    let ( $($arg,)+ ) =
                        ( $( $crate::Strategy::generate(&($strat), &mut __rng), )+ );
                    $body
                }
            }
        )*
    };
}

/// The proptest-style glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_expr() -> impl Strategy<Value = u64> {
        let leaf = prop_oneof![Just(1u64), (2u64..5).prop_map(|x| x)];
        leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        })
    }

    proptest! {
        #[test]
        fn generated_values_in_domain(x in 3u64..9, flag in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            let _ = flag;
        }

        #[test]
        fn recursive_strategies_terminate(v in small_expr()) {
            prop_assert!(v >= 1);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(any::<bool>(), 2..6),
            a in crate::array::uniform4(any::<bool>()),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(a.len(), 4);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::Rng::from_name("t");
        let mut b = crate::test_runner::Rng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
