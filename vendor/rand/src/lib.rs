//! Offline stand-in for `rand`, covering the API this workspace uses:
//! `StdRng::seed_from_u64`, `gen_bool`, and `gen_range` over half-open
//! integer ranges. The generator is splitmix64, so sequences are
//! deterministic per seed and stable across platforms — which the
//! elevator substrate's reproducibility tests rely on.

use std::ops::Range;

/// Seedable random-number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be uniformly sampled from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[lo, hi)` from the generator's next output.
    fn sample(raw: u64, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(raw: u64, range: &Range<Self>) -> Self {
                let span = range.end.wrapping_sub(range.start) as u64;
                assert!(span > 0, "cannot sample an empty range");
                range.start + (raw % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Random-value convenience methods over a raw 64-bit source.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits → a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform value in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), &range)
    }
}

/// The standard generators.
pub mod rngs {
    /// A deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
